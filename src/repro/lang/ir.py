"""The register IR the analyzer consumes (the LLVM-IR substitute).

Each function becomes a list of basic blocks holding three-address
instructions.  Struct traffic is explicit — :class:`LoadField` /
:class:`StoreField` name the struct tag and field — because shared
metadata fields are how the paper's analyzer bridges components.
Constants remember the ``#define`` macro they came from, so feature-bit
masks stay recognizable after expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Value:
    """Base class for IR operands."""


@dataclass(frozen=True)
class Temp(Value):
    """A compiler temporary."""

    id: int

    def __str__(self) -> str:
        return f"%t{self.id}"


@dataclass(frozen=True)
class Var(Value):
    """A named local, parameter, or global."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Value):
    """An integer constant; ``macro`` is the #define it expanded from."""

    value: int
    macro: Optional[str] = None

    def __str__(self) -> str:
        if self.macro:
            return f"{self.macro}({self.value})"
        return str(self.value)


@dataclass(frozen=True)
class StrConst(Value):
    """A string literal."""

    text: str

    def __str__(self) -> str:
        return repr(self.text)


Register = Union[Temp, Var]


# ---------------------------------------------------------------------------
# instructions
# ---------------------------------------------------------------------------


@dataclass
class Instr:
    """Base instruction; subclasses define defs()/uses().

    ``flow_dst``/``flow_srcs`` describe the *taint dataflow* surface of
    the instruction — the one value its transfer function may taint,
    and the operand values whose taint feeds that transfer.  They
    differ from ``defs``/``uses`` where taint semantics differ from
    SSA-style def/use: a ``StoreIndex`` defines nothing but taints its
    base aggregate, and a ``LoadField``'s output taint is independent
    of its base operand.  The sparse worklist solver builds its
    def-use edges from these.
    """

    line: int = 0

    def defs(self) -> Tuple[Register, ...]:
        return ()

    def uses(self) -> Tuple[Value, ...]:
        return ()

    def flow_dst(self) -> Optional[Value]:
        """The value this instruction's taint transfer may taint."""
        return None

    def flow_srcs(self) -> Tuple[Value, ...]:
        """Operands whose taint feeds this instruction's transfer."""
        return ()


@dataclass
class Move(Instr):
    """Copy a value into a register."""
    dst: Register = None
    src: Value = None

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.src,)

    def flow_dst(self):
        return self.dst

    def flow_srcs(self):
        return (self.src,)

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class BinOp(Instr):
    """dst = left <op> right."""
    dst: Temp = None
    op: str = ""
    left: Value = None
    right: Value = None

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.left, self.right)

    def flow_dst(self):
        return self.dst

    def flow_srcs(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.dst} = {self.left} {self.op} {self.right}"


@dataclass
class UnOp(Instr):
    """dst = <op>operand."""
    dst: Temp = None
    op: str = ""
    operand: Value = None

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.operand,)

    def flow_dst(self):
        return self.dst

    def flow_srcs(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.dst} = {self.op}{self.operand}"


@dataclass
class LoadField(Instr):
    """dst = base->field (struct load)."""
    dst: Temp = None
    base: Value = None
    struct: str = ""
    field: str = ""

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.base,)

    def flow_dst(self):
        # Output taint is the field label (+ unit-wide injections),
        # independent of the base operand's own taint.
        return self.dst

    def __str__(self) -> str:
        return f"{self.dst} = load {self.base}->{self.field} [{self.struct}]"


@dataclass
class StoreField(Instr):
    """base->field = src (struct store)."""
    base: Value = None
    struct: str = ""
    field: str = ""
    src: Value = None

    def uses(self):
        return (self.base, self.src)

    def __str__(self) -> str:
        return f"store {self.base}->{self.field} [{self.struct}] = {self.src}"


@dataclass
class LoadIndex(Instr):
    """dst = base[index]."""
    dst: Temp = None
    base: Value = None
    index: Value = None

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.base, self.index)

    def flow_dst(self):
        return self.dst

    def flow_srcs(self):
        return (self.base,)

    def __str__(self) -> str:
        return f"{self.dst} = {self.base}[{self.index}]"


@dataclass
class StoreIndex(Instr):
    """base[index] = src."""
    base: Value = None
    index: Value = None
    src: Value = None

    def uses(self):
        return (self.base, self.index, self.src)

    def flow_dst(self):
        # Writing through an array cell taints the base aggregate.
        return self.base

    def flow_srcs(self):
        return (self.src,)

    def __str__(self) -> str:
        return f"{self.base}[{self.index}] = {self.src}"


@dataclass
class CallInstr(Instr):
    """dst = call func(args...)."""
    dst: Optional[Temp] = None
    func: str = ""
    args: List[Value] = dc_field(default_factory=list)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    def uses(self):
        return tuple(self.args)

    def flow_dst(self):
        return self.dst

    def flow_srcs(self):
        # Arguments only matter for taint-preserving callees; the
        # engine filters, the edge set just has to be a superset.
        return tuple(self.args)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}call {self.func}({args})"


@dataclass
class Branch(Instr):
    """Conditional two-way transfer."""
    cond: Value = None
    true_label: str = ""
    false_label: str = ""

    def uses(self):
        return (self.cond,)

    def __str__(self) -> str:
        return f"br {self.cond} ? {self.true_label} : {self.false_label}"


@dataclass
class Jump(Instr):
    """Unconditional transfer."""
    label: str = ""

    def __str__(self) -> str:
        return f"jmp {self.label}"


@dataclass
class Ret(Instr):
    """Return from the function."""
    value: Optional[Value] = None

    def uses(self):
        return (self.value,) if self.value is not None else ()

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


TERMINATORS = (Branch, Jump, Ret)


# ---------------------------------------------------------------------------
# containers
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A labelled straight-line instruction sequence."""
    label: str
    instrs: List[Instr] = dc_field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        """The block's final control-flow instruction, if any."""
        if self.instrs and isinstance(self.instrs[-1], TERMINATORS):
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple[str, ...]:
        """Labels this block can transfer to."""
        term = self.terminator
        if isinstance(term, Branch):
            return (term.true_label, term.false_label)
        if isinstance(term, Jump):
            return (term.label,)
        return ()

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        return "\n".join(lines)


@dataclass
class Function:
    """One lowered function: parameters plus basic blocks."""
    name: str
    params: List[str] = dc_field(default_factory=list)
    param_types: Dict[str, str] = dc_field(default_factory=dict)  # name -> spelled type
    blocks: Dict[str, BasicBlock] = dc_field(default_factory=dict)
    entry: str = "entry"
    line: int = 0

    def instructions(self) -> Iterator[Instr]:
        """All instructions in block order."""
        for block in self.blocks.values():
            yield from block.instrs

    def block_of(self, instr: Instr) -> Optional[BasicBlock]:
        """The block containing ``instr``, or None."""
        for block in self.blocks.values():
            if instr in block.instrs:
                return block
        return None

    def __str__(self) -> str:
        head = f"func {self.name}({', '.join(self.params)})"
        return "\n".join([head] + [str(b) for b in self.blocks.values()])


@dataclass
class Module:
    """One translation unit's functions and struct layouts."""
    filename: str
    functions: Dict[str, Function] = dc_field(default_factory=dict)
    structs: Dict[str, List[str]] = dc_field(default_factory=dict)  # tag -> field names
    component: str = ""  # set by the corpus loader
    fingerprint: str = ""  # content hash (cache key), set by the corpus loader

    def function(self, name: str) -> Function:
        """Look up one function; KeyError when absent."""
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in module {self.filename}") from None

    def __str__(self) -> str:
        return "\n\n".join(str(fn) for fn in self.functions.values())
