"""Control-flow-graph utilities over the IR.

Small and purpose-built: successors/predecessors, reachability, and the
"does this path reach an error exit" query the constraint extractor
asks when classifying a guard as a configuration dependency.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import perf
from repro.lang.ir import BasicBlock, Branch, CallInstr, Const, Function, Ret

#: Calls that mean "reject the configuration and bail", mirroring the
#: error exits the paper's analyzer keys on (usage();exit(1); com_err).
ERROR_CALLS = {
    "usage", "exit", "abort", "fatal_error", "com_err", "ext2fs_fatal",
    "bb_error_msg_and_die", "log_err",
}


class CFG:
    """Successor/predecessor view of one function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.succ: Dict[str, Tuple[str, ...]] = {}
        self.pred: Dict[str, List[str]] = {label: [] for label in func.blocks}
        for label, block in func.blocks.items():
            succs = block.successors()
            self.succ[label] = succs
            for s in succs:
                if s in self.pred:
                    self.pred[s].append(label)
        self._rpo: Optional[Tuple[str, ...]] = None
        # Error-exit queries are pure functions of the (immutable)
        # blocks, and the constraint extractor asks them repeatedly for
        # the same labels — cache per CFG.
        self._error_exit: Dict[str, bool] = {}
        self._error_path: Dict[Tuple[str, int], bool] = {}
        self._branches: Optional[List[Branch]] = None

    def reverse_postorder(self) -> Tuple[str, ...]:
        """Block labels in reverse postorder from the entry (cached).

        Unreachable blocks are appended afterwards in declaration
        order: the taint analysis is flow-insensitive, so their
        instructions still participate in the fixpoint.
        """
        if self._rpo is not None:
            return self._rpo
        blocks = self.func.blocks
        order: List[str] = []
        seen: Set[str] = set()
        entry = self.func.entry
        if entry in blocks:
            # Iterative DFS with an explicit successor cursor so deep
            # graphs cannot overflow the Python stack.
            seen.add(entry)
            stack: List[Tuple[str, int]] = [(entry, 0)]
            while stack:
                label, cursor = stack[-1]
                succs = self.succ.get(label, ())
                while cursor < len(succs) and (
                    succs[cursor] in seen or succs[cursor] not in blocks
                ):
                    cursor += 1
                if cursor < len(succs):
                    stack[-1] = (label, cursor + 1)
                    succ = succs[cursor]
                    seen.add(succ)
                    stack.append((succ, 0))
                else:
                    stack.pop()
                    order.append(label)
            order.reverse()
        order.extend(label for label in blocks if label not in seen)
        self._rpo = tuple(order)
        return self._rpo

    def reachable_from(self, label: str) -> Set[str]:
        """Labels reachable from ``label`` (inclusive)."""
        seen: Set[str] = set()
        stack = [label]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.func.blocks:
                continue
            seen.add(current)
            stack.extend(self.succ.get(current, ()))
        return seen

    def block(self, label: str) -> BasicBlock:
        """The basic block with the given label."""
        return self.func.blocks[label]

    def branches(self) -> List[Branch]:
        """Branch instructions in declaration order (cached)."""
        if self._branches is None:
            self._branches = [
                instr
                for block in self.func.blocks.values()
                for instr in block.instrs
                if type(instr) is Branch
            ]
        return self._branches

    # ------------------------------------------------------------------
    # error-exit queries
    # ------------------------------------------------------------------

    def block_is_error_exit(self, label: str) -> bool:
        """True when the block itself errors out (error call or ret < 0)."""
        cached = self._error_exit.get(label)
        if cached is not None:
            return cached
        result = self._block_is_error_exit(label)
        self._error_exit[label] = result
        return result

    def _block_is_error_exit(self, label: str) -> bool:
        block = self.func.blocks.get(label)
        if block is None:
            return False
        for instr in block.instrs:
            if isinstance(instr, CallInstr) and instr.func in ERROR_CALLS:
                return True
            if isinstance(instr, Ret) and instr.value is not None:
                value = _resolve_const(block, instr.value)
                if value is not None and (value >= 0x80000000 or _as_signed(value) < 0):
                    return True
        return False

    def leads_to_error(self, label: str, max_depth: int = 3) -> bool:
        """True when an error exit is reachable within ``max_depth`` blocks
        without passing through a branch (i.e. unconditionally)."""
        key = (label, max_depth)
        cached = self._error_path.get(key)
        if cached is not None:
            return cached
        result = self._leads_to_error(label, max_depth)
        self._error_path[key] = result
        return result

    def _leads_to_error(self, label: str, max_depth: int) -> bool:
        current: Optional[str] = label
        for _ in range(max_depth + 1):
            if current is None:
                return False
            if self.block_is_error_exit(current):
                return True
            block = self.func.blocks.get(current)
            if block is None:
                return False
            term = block.terminator
            if isinstance(term, Branch):
                return False  # a further condition decides; not this guard
            succs = self.succ.get(current, ())
            current = succs[0] if succs else None
        return False

    def branch_error_sides(self, branch: Branch) -> Tuple[bool, bool]:
        """(true_side_errors, false_side_errors) for one branch."""
        return (
            self.leads_to_error(branch.true_label),
            self.leads_to_error(branch.false_label),
        )


def _resolve_const(block: BasicBlock, value) -> Optional[int]:
    """Constant value of ``value`` using in-block definitions only."""
    from repro.lang.ir import Move, Temp, UnOp, Var

    if isinstance(value, Const):
        return value.value
    if not isinstance(value, (Temp, Var)):
        return None
    for instr in reversed(block.instrs):
        if value in instr.defs():
            if isinstance(instr, Move):
                return _resolve_const(block, instr.src)
            if isinstance(instr, UnOp) and instr.op == "-":
                inner = _resolve_const(block, instr.operand)
                return -inner if inner is not None else None
            return None
    return None


def _as_signed(value: int, bits: int = 32) -> int:
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


#: id(func) -> (weakref to func, CFG).  A CFG is immutable once built
#: but was being rebuilt for every scenario that pre-selects the same
#: function.  Keys are object ids with an identity check on hit (the
#: weakref must still resolve to the *same* object), so a recycled id
#: can never serve a stale graph.  Entries pin their function alive via
#: the CFG's back-reference; :func:`repro.corpus.loader.clear_cache`
#: clears the table through the perf memo registry.
_CFG_MEMO: Dict[int, Tuple["weakref.ref[Function]", "CFG"]] = {}


def _clear_cfg_memo() -> None:
    _CFG_MEMO.clear()


perf.register_memo("cfg.build", _clear_cfg_memo)


def build_cfg(func: Function) -> CFG:
    """Construct (or fetch the memoized) CFG for one function."""
    entry = _CFG_MEMO.get(id(func))
    if entry is not None and entry[0]() is func:
        perf.bump("memo.cfg.hit")
        return entry[1]
    with perf.timed("analysis.cfg"):
        cfg = CFG(func)
    _CFG_MEMO[id(func)] = (weakref.ref(func), cfg)
    return cfg
