"""Recursive-descent parser for the mini-C subset.

Produces the AST of :mod:`repro.lang.ast_nodes`.  The accepted grammar
covers everything the modelled corpus uses: struct/enum/typedef
declarations, functions, the full statement set (including ``switch``
and ``do``/``while``), and C expressions with standard precedence.

Binary expressions parse through one of two equivalent engines:

- ``climb`` (default) — precedence climbing with a single operator →
  precedence table: one recursion level per *operand*, not one per
  grammar level, so ``a + b`` costs 2 calls instead of 11;
- ``ladder`` — the original 10-level recursive ladder, kept as the
  reference implementation.

Ladder level ``L`` corresponds to climbing with minimum precedence
``L + 1`` and both build left-associative trees, so the ASTs are
identical node for node.  Select with ``REPRO_PARSER=climb|ladder``.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import ParseError
from repro.lang import ast_nodes as A
from repro.perf import modes as engine_modes
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.types import CType

_TYPE_KEYWORDS = {"void", "char", "short", "int", "long", "float", "double",
                  "unsigned", "signed", "struct", "union", "const", "static",
                  "extern", "enum"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: Tokens that continue a postfix expression (or start a call).
_POSTFIX_START = {".", "->", "[", "++", "--", "("}

#: Environment knob selecting the binary-expression engine.
PARSER_ENV = engine_modes.knob("parser").env

#: Recognized engine names (first is the default).
PARSER_MODES = engine_modes.knob("parser").modes


def resolve_parser_mode(explicit: Optional[str] = None) -> str:
    """The engine to use: ``explicit`` arg, else $REPRO_PARSER, else climb."""
    return engine_modes.resolve_mode("parser", explicit)


#: Binary operator -> precedence (higher binds tighter); all left-assoc.
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """Parse one translation unit."""

    def __init__(self, tokens: List[Token], filename: str = "<input>",
                 mode: Optional[str] = None) -> None:
        self.tokens = tokens
        self.filename = filename
        self.mode = resolve_parser_mode(mode)
        self._climb = self.mode == "climb"
        self.pos = 0
        self.typedef_names: Set[str] = set()
        self.enum_constants: Set[str] = set()

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        tokens = self.tokens
        idx = self.pos + offset
        return tokens[idx] if idx < len(tokens) else tokens[-1]

    def _next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, text: str) -> bool:
        token = self.tokens[self.pos]
        return token.text == text and (token.kind is TokenKind.OP
                                       or token.kind is TokenKind.KEYWORD)

    def _accept(self, text: str) -> bool:
        token = self.tokens[self.pos]
        if token.text == text and (token.kind is TokenKind.OP
                                   or token.kind is TokenKind.KEYWORD):
            self.pos += 1
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self.tokens[self.pos]
        if token.text == text and (token.kind is TokenKind.OP
                                   or token.kind is TokenKind.KEYWORD):
            self.pos += 1
            return token
        raise ParseError(
            f"expected {text!r}, found {token.text!r}",
            self.filename, token.line, token.col,
        )

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {token.text!r}",
                self.filename, token.line, token.col,
            )
        return self._next()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, self.filename, token.line, token.col)

    # ------------------------------------------------------------------
    # translation unit
    # ------------------------------------------------------------------

    def parse_unit(self) -> A.TranslationUnit:
        """Parse the token stream into a TranslationUnit."""
        unit = A.TranslationUnit(self.filename)
        while self._peek().kind is not TokenKind.EOF:
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit: A.TranslationUnit) -> None:
        token = self._peek()
        if self._check("typedef"):
            unit.typedefs.append(self._parse_typedef())
            return
        if self._check("enum") and self._peek_is_decl_of("enum"):
            unit.enums.append(self._parse_enum_decl())
            return
        if self._check("struct") and self._peek_is_decl_of("struct"):
            unit.structs.append(self._parse_struct_decl())
            return
        # function or global variable
        static = False
        while self._check("static") or self._check("extern") or self._check("const"):
            if self._peek().text == "static":
                static = True
            self._next()
        ctype = self._parse_type_spec()
        while self._accept("*"):
            ctype = ctype.pointer_to()
        name_token = self._expect_ident()
        if self._check("("):
            unit.functions.append(self._parse_function(ctype, name_token, static))
            return
        array = None
        if self._accept("["):
            size_token = self._peek()
            if size_token.kind is TokenKind.INT:
                self._next()
                array = size_token.value
            self._expect("]")
        init = None
        if self._accept("="):
            init = self._parse_assignment()
        self._expect(";")
        gtype = CType(ctype.base, ctype.unsigned, ctype.struct_name, ctype.pointer,
                      array, ctype.typedef_name)
        unit.globals.append(A.GlobalVar(name_token.text, gtype, init, name_token.line))

    def _peek_is_decl_of(self, keyword: str) -> bool:
        """True when 'struct X { ... } ;' style declaration (not a variable)."""
        offset = 1
        if self._peek(offset).kind is TokenKind.IDENT:
            offset += 1
        return self._peek(offset).text == "{"

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def _parse_typedef(self) -> A.Typedef:
        start = self._expect("typedef")
        ctype = self._parse_type_spec()
        while self._accept("*"):
            ctype = ctype.pointer_to()
        name = self._expect_ident()
        self._expect(";")
        self.typedef_names.add(name.text)
        td = A.Typedef(name.text, ctype, start.line)
        self._typedefs = getattr(self, "_typedefs", {})
        self._typedefs[name.text] = ctype
        return td

    def _parse_struct_decl(self) -> A.StructDecl:
        start = self._expect("struct")
        name = self._expect_ident()
        self._expect("{")
        fields: List[A.StructField] = []
        while not self._check("}"):
            base = self._parse_type_spec()
            while True:
                ftype = base
                while self._accept("*"):
                    ftype = ftype.pointer_to()
                fname = self._expect_ident()
                if self._accept("["):
                    size_token = self._next()
                    if size_token.kind is not TokenKind.INT:
                        raise self._error("array size must be an integer literal")
                    ftype = CType(ftype.base, ftype.unsigned, ftype.struct_name,
                                  ftype.pointer, size_token.value, ftype.typedef_name)
                    self._expect("]")
                fields.append(A.StructField(fname.text, ftype, fname.line))
                if not self._accept(","):
                    break
            self._expect(";")
        self._expect("}")
        self._expect(";")
        return A.StructDecl(name.text, fields, start.line)

    def _parse_enum_decl(self) -> A.EnumDecl:
        start = self._expect("enum")
        name = None
        if self._peek().kind is TokenKind.IDENT:
            name = self._next().text
        self._expect("{")
        members: List[Tuple[str, int]] = []
        next_value = 0
        while not self._check("}"):
            member = self._expect_ident()
            if self._accept("="):
                value_token = self._next()
                if value_token.kind is not TokenKind.INT:
                    raise self._error("enum value must be an integer literal")
                next_value = value_token.value
            members.append((member.text, next_value))
            self.enum_constants.add(member.text)
            next_value += 1
            if not self._accept(","):
                break
        self._expect("}")
        self._expect(";")
        return A.EnumDecl(name, members, start.line)

    def _parse_function(self, return_type: CType, name_token: Token, static: bool) -> A.FunctionDef:
        self._expect("(")
        params: List[A.Param] = []
        if not self._check(")"):
            if self._check("void") and self._peek(1).text == ")":
                self._next()
            else:
                while True:
                    ptype = self._parse_type_spec()
                    while self._accept("*"):
                        ptype = ptype.pointer_to()
                    pname = self._expect_ident()
                    if self._accept("["):
                        self._expect("]")
                        ptype = ptype.pointer_to()
                    params.append(A.Param(pname.text, ptype))
                    if not self._accept(","):
                        break
        self._expect(")")
        if self._accept(";"):
            return A.FunctionDef(name_token.text, return_type, params, None,
                                 name_token.line, static)
        body = self._parse_block()
        return A.FunctionDef(name_token.text, return_type, params, body,
                             name_token.line, static)

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def _starts_type(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        return token.kind is TokenKind.IDENT and token.text in self.typedef_names

    def _parse_type_spec(self) -> CType:
        tokens = self.tokens
        while True:
            token = tokens[self.pos]
            if (token.kind is TokenKind.KEYWORD
                    and token.text in ("const", "static", "extern")):
                self.pos += 1
            else:
                break
        unsigned = False
        if self._accept("unsigned"):
            unsigned = True
        elif self._accept("signed"):
            pass
        token = self._peek()
        if token.text == "struct" or token.text == "union":
            self._next()
            name = self._expect_ident()
            return CType("struct", struct_name=name.text)
        if token.text == "enum":
            self._next()
            self._expect_ident()
            return CType("int")
        if token.kind is TokenKind.KEYWORD and token.text in (
            "void", "char", "short", "int", "long", "float", "double"
        ):
            base = self._next().text
            if base == "long" and self._accept("long"):
                pass
            if base in ("short", "long") and self._accept("int"):
                pass
            if base == "short":
                base = "short"
            return CType(base if base != "signed" else "int", unsigned)
        if token.kind is TokenKind.IDENT and token.text in self.typedef_names:
            self._next()
            resolved = getattr(self, "_typedefs", {}).get(token.text)
            if resolved is not None:
                return CType(resolved.base, resolved.unsigned or unsigned,
                             resolved.struct_name, resolved.pointer,
                             resolved.array, token.text)
            return CType("int", unsigned, typedef_name=token.text)
        if unsigned:
            return CType("int", True)
        raise self._error(f"expected a type, found {token.text!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> A.Block:
        start = self._expect("{")
        statements: List[A.Stmt] = []
        while not self._check("}"):
            statements.append(self._parse_statement())
        self._expect("}")
        return A.Block(start.line, statements)

    def _parse_statement(self) -> A.Stmt:
        token = self.tokens[self.pos]
        kind = token.kind
        # Single dispatch on the already-fetched token: keywords and
        # ``{``/``;`` can only arrive as KEYWORD/OP tokens, so one text
        # comparison replaces the old chain of _check calls.
        if kind is TokenKind.KEYWORD or kind is TokenKind.OP:
            text = token.text
            if text == "{":
                return self._parse_block()
            if text == "if":
                return self._parse_if()
            if text == "while":
                return self._parse_while()
            if text == "do":
                return self._parse_do_while()
            if text == "for":
                return self._parse_for()
            if text == "switch":
                return self._parse_switch()
            if text == "return":
                self.pos += 1
                value = None
                if not self._check(";"):
                    value = self._parse_expression()
                self._expect(";")
                return A.Return(token.line, value)
            if text == "break":
                self.pos += 1
                self._expect(";")
                return A.Break(token.line)
            if text == "continue":
                self.pos += 1
                self._expect(";")
                return A.Continue(token.line)
            if text == "goto":
                self.pos += 1
                label = self._expect_ident()
                self._expect(";")
                return A.Goto(token.line, label.text)
            if text == ";":
                self.pos += 1
                return A.Block(token.line, [])
            # Remaining keywords: either a declaration type or an
            # expression keyword (sizeof) — same split _starts_type
            # makes, without re-fetching the token.
            if kind is TokenKind.KEYWORD and text in _TYPE_KEYWORDS:
                return self._parse_var_decl()
        elif kind is TokenKind.IDENT:
            # Labels: ``name :`` not followed by another ``:``.  The
            # stream always ends in EOF (text ""), so pos+1 is safe,
            # and pos+2 exists whenever pos+1 is not the EOF.
            tokens = self.tokens
            if (tokens[self.pos + 1].text == ":"
                    and tokens[self.pos + 2].text != ":"):
                self.pos += 2
                return A.Label(token.line, token.text)
            if token.text in self.typedef_names:
                return self._parse_var_decl()
        expr = self._parse_expression()
        self._expect(";")
        return A.ExprStmt(token.line, expr)

    def _parse_var_decl(self) -> A.Stmt:
        token = self._peek()
        base = self._parse_type_spec()
        decls: List[A.Stmt] = []
        while True:
            ctype = base
            while self._accept("*"):
                ctype = ctype.pointer_to()
            name = self._expect_ident()
            if self._accept("["):
                size_token = self._peek()
                array = None
                if size_token.kind is TokenKind.INT:
                    self._next()
                    array = size_token.value
                self._expect("]")
                ctype = CType(ctype.base, ctype.unsigned, ctype.struct_name,
                              ctype.pointer, array, ctype.typedef_name)
            init = None
            if self._accept("="):
                init = self._parse_assignment()
            decls.append(A.VarDecl(name.line, name.text, ctype, init))
            if not self._accept(","):
                break
        self._expect(";")
        if len(decls) == 1:
            return decls[0]
        return A.Block(token.line, decls)

    def _parse_if(self) -> A.If:
        start = self._expect("if")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept("else"):
            otherwise = self._parse_statement()
        return A.If(start.line, cond, then, otherwise)

    def _parse_while(self) -> A.While:
        start = self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return A.While(start.line, cond, body, do_while=False)

    def _parse_do_while(self) -> A.While:
        start = self._expect("do")
        body = self._parse_statement()
        self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        self._expect(";")
        return A.While(start.line, cond, body, do_while=True)

    def _parse_for(self) -> A.For:
        start = self._expect("for")
        self._expect("(")
        init: Optional[A.Stmt] = None
        if not self._check(";"):
            if self._starts_type():
                init = self._parse_var_decl()
            else:
                expr = self._parse_expression()
                self._expect(";")
                init = A.ExprStmt(start.line, expr)
        else:
            self._expect(";")
        if isinstance(init, A.VarDecl) or isinstance(init, A.Block):
            pass  # _parse_var_decl consumed the ';'
        cond = None
        if not self._check(";"):
            cond = self._parse_expression()
        self._expect(";")
        step = None
        if not self._check(")"):
            step = self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return A.For(start.line, init, cond, step, body)

    def _parse_switch(self) -> A.Switch:
        start = self._expect("switch")
        self._expect("(")
        subject = self._parse_expression()
        self._expect(")")
        self._expect("{")
        cases: List[A.SwitchCase] = []
        while not self._check("}"):
            token = self._peek()
            if self._accept("case"):
                value = self._parse_ternary()
                self._expect(":")
                cases.append(A.SwitchCase(value, [], token.line))
            elif self._accept("default"):
                self._expect(":")
                cases.append(A.SwitchCase(None, [], token.line))
            else:
                if not cases:
                    raise self._error("statement before first case label")
                cases[-1].body.append(self._parse_statement())
        self._expect("}")
        return A.Switch(start.line, subject, cases)

    # ------------------------------------------------------------------
    # expressions (precedence climbing, C order)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> A.Expr:
        expr = self._parse_assignment()
        while self._accept(","):
            right = self._parse_assignment()
            expr = A.Binary(expr.line, ",", expr, right)
        return expr

    def _parse_assignment(self) -> A.Expr:
        left = self._parse_ternary()
        token = self.tokens[self.pos]
        if token.kind is TokenKind.OP and token.text in _ASSIGN_OPS:
            self.pos += 1
            value = self._parse_assignment()
            return A.Assign(left.line, token.text, left, value)
        return left

    def _parse_ternary(self) -> A.Expr:
        if self._climb:
            cond = self._parse_binary_climb(1)
        else:
            cond = self._parse_binary(0)
        if self._accept("?"):
            then = self._parse_assignment()
            self._expect(":")
            otherwise = self._parse_assignment()
            return A.Ternary(cond.line, cond, then, otherwise)
        return cond

    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> A.Expr:
        """Reference engine: one recursion level per grammar level."""
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        expr = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            if token.kind is TokenKind.OP and token.text in ops:
                self._next()
                right = self._parse_binary(level + 1)
                expr = A.Binary(expr.line, token.text, expr, right)
            else:
                return expr

    def _parse_binary_climb(self, min_prec: int) -> A.Expr:
        """Precedence climbing over :data:`_PRECEDENCE`.

        Recursing with ``prec + 1`` for the right operand makes every
        operator left-associative — the same trees the ladder builds.
        """
        expr = self._parse_unary()
        tokens = self.tokens
        get_prec = _PRECEDENCE.get
        while True:
            token = tokens[self.pos]
            if token.kind is not TokenKind.OP:
                return expr
            prec = get_prec(token.text)
            if prec is None or prec < min_prec:
                return expr
            self.pos += 1
            right = self._parse_binary_climb(prec + 1)
            expr = A.Binary(expr.line, token.text, expr, right)

    def _parse_unary(self) -> A.Expr:
        tokens = self.tokens
        token = tokens[self.pos]
        kind = token.kind
        # Plain atoms (an identifier or literal with no postfix
        # continuation) are the bulk of all expressions; build them
        # here instead of descending through postfix and primary.
        if kind is TokenKind.IDENT:
            if tokens[self.pos + 1].text not in _POSTFIX_START:
                self.pos += 1
                return A.Ident(token.line, token.text)
        elif kind is TokenKind.INT or kind is TokenKind.CHAR:
            if tokens[self.pos + 1].text not in _POSTFIX_START:
                self.pos += 1
                return A.IntLit(token.line, token.value, token.macro)
        elif kind is TokenKind.OP:
            text = token.text
            if text in ("!", "~", "-", "+"):
                self.pos += 1
                operand = self._parse_unary()
                if text == "+":
                    return operand
                return A.Unary(token.line, text, operand)
            if text in ("++", "--"):
                self.pos += 1
                operand = self._parse_unary()
                return A.Unary(token.line, text, operand, prefix=True)
            if text == "&":
                self.pos += 1
                operand = self._parse_unary()
                return A.AddressOf(token.line, operand)
            if text == "*":
                self.pos += 1
                operand = self._parse_unary()
                return A.Deref(token.line, operand)
            if text == "(" and self._is_cast():
                self.pos += 1
                ctype = self._parse_type_spec()
                while self._accept("*"):
                    ctype = ctype.pointer_to()
                self._expect(")")
                operand = self._parse_unary()
                return A.Cast(token.line, ctype, operand)
        elif kind is TokenKind.KEYWORD and token.text == "sizeof":
            self.pos += 1
            self._expect("(")
            if self._starts_type():
                ctype = self._parse_type_spec()
                while self._accept("*"):
                    ctype = ctype.pointer_to()
                self._expect(")")
                return A.SizeOf(token.line, ctype, None)
            operand = self._parse_expression()
            self._expect(")")
            return A.SizeOf(token.line, None, operand)
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        """Lookahead: '(' type-spec '*'* ')' followed by a unary start."""
        if self._peek().text != "(":
            return False
        nxt = self._peek(1)
        if nxt.kind is TokenKind.KEYWORD and nxt.text in _TYPE_KEYWORDS - {"const", "static", "extern"}:
            return True
        return nxt.kind is TokenKind.IDENT and nxt.text in self.typedef_names

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        tokens = self.tokens
        while True:
            token = tokens[self.pos]
            # Every postfix continuation is an operator token.
            if token.kind is not TokenKind.OP:
                return expr
            text = token.text
            if text == ".":
                self.pos += 1
                name = self._expect_ident()
                expr = A.Member(token.line, expr, name.text, arrow=False)
            elif text == "->":
                self.pos += 1
                name = self._expect_ident()
                expr = A.Member(token.line, expr, name.text, arrow=True)
            elif text == "[":
                self.pos += 1
                index = self._parse_expression()
                self._expect("]")
                expr = A.Index(token.line, expr, index)
            elif text == "++" or text == "--":
                self.pos += 1
                expr = A.Unary(token.line, text, expr, prefix=False)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tokens = self.tokens
        token = tokens[self.pos]
        kind = token.kind
        if kind is TokenKind.IDENT:
            self.pos += 1
            nxt = tokens[self.pos]
            if nxt.kind is TokenKind.OP and nxt.text == "(":
                self.pos += 1
                args: List[A.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept(","):
                            break
                self._expect(")")
                return A.Call(token.line, token.text, args)
            return A.Ident(token.line, token.text)
        if kind is TokenKind.INT or kind is TokenKind.CHAR:
            self.pos += 1
            return A.IntLit(token.line, token.value, token.macro)
        if kind is TokenKind.STRING:
            self.pos += 1
            return A.StrLit(token.line, token.text)
        if kind is TokenKind.OP and token.text == "(":
            self.pos += 1
            expr = self._parse_expression()
            self._expect(")")
            return expr
        raise self._error(f"unexpected token {token.text!r} in expression")


def parse(source: str, filename: str = "<input>",
          lex_mode: Optional[str] = None,
          parser_mode: Optional[str] = None) -> A.TranslationUnit:
    """Tokenize and parse ``source`` into a translation unit.

    ``lex_mode``/``parser_mode`` pick the scanner and binary-expression
    engines (``None`` defers to ``$REPRO_LEX``/``$REPRO_PARSER``).
    """
    tokens = tokenize(source, filename, mode=lex_mode)
    return Parser(tokens, filename, mode=parser_mode).parse_unit()
