"""A mini-C frontend: lexer, parser, semantic checks, IR, and CFGs.

This package substitutes for LLVM/Clang in the paper's pipeline.  It
accepts the C subset used by the modelled corpus in
:mod:`repro.corpus` — structs, enums, typedefs, ``#define`` object
macros, functions, the usual statements and expressions (including
``switch``), pointers and ``->`` member access — and lowers it to a
small register IR with explicit loads/stores of struct fields, which is
exactly the level the taint analysis needs.

Typical use::

    from repro.lang import compile_c
    module = compile_c(source_text, filename="mke2fs.c")
    for function in module.functions.values():
        ...  # function.blocks, function.instructions
"""

#: Version of the frontend's *semantics* (lexer, parser, sema, lowering,
#: IR shape).  Part of the persistent IR-cache key
#: (:mod:`repro.corpus.cache`): bump it whenever a change makes
#: previously compiled modules stale, and every old cache entry is
#: orphaned at once.
FRONTEND_VERSION = "1"

from repro.lang.lexer import Lexer, Token, TokenKind, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.sema import analyze
from repro.lang.lower import lower
from repro.lang.ir import Module as IRModule

__all__ = [
    "FRONTEND_VERSION",
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse",
    "analyze",
    "lower",
    "IRModule",
    "compile_c",
]


def compile_c(source: str, filename: str = "<input>") -> IRModule:
    """Front-to-back compilation: source text to an IR module."""
    tree = parse(source, filename)
    analyze(tree)
    return lower(tree)
