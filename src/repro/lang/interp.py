"""A concrete interpreter for the mini-C IR.

Executes corpus functions with real values, which enables *differential
validation* of the static analyzer: an extracted constraint (say,
``blocksize in [1024, 65536]``) can be checked against the corpus by
actually running the guard with in-range and out-of-range values and
observing whether the error path fires.

Semantics are the C subset's, over Python ints:

- variables live in an environment; globals are zero-initialized,
- structs are :class:`StructVal` instances; pointers to structs and the
  structs themselves behave alike (field access goes to the same dict),
- calls dispatch to (a) user-provided stubs, (b) other functions in the
  module, or (c) default library models (``parse_int`` = ``int``, ...),
- ``usage()`` / ``exit()`` raise :class:`ErrorExit`, recorded on the
  result the way the analyzer's error-exit detection models it.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Dict, List, Optional

from repro.lang.ir import (
    BinOp,
    Branch,
    CallInstr,
    Const,
    Function,
    Jump,
    LoadField,
    LoadIndex,
    Module,
    Move,
    Ret,
    StoreField,
    StoreIndex,
    StrConst,
    Temp,
    UnOp,
    Value,
    Var,
)


class InterpError(Exception):
    """The interpreter met something it cannot execute."""


class ErrorExit(Exception):
    """Raised when the program takes an error exit (usage/exit/abort)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class StructVal:
    """A struct instance; unknown fields read as zero."""

    def __init__(self, tag: str = "?") -> None:
        self.tag = tag
        self.fields: Dict[str, Any] = {}

    def get(self, name: str) -> Any:
        """Field value; unknown fields read as zero."""
        return self.fields.get(name, 0)

    def set(self, name: str, value: Any) -> None:
        """Set one field."""
        self.fields[name] = value

    def __repr__(self) -> str:
        return f"StructVal({self.tag}, {self.fields})"


@dataclass
class ExecResult:
    """Outcome of executing one function."""

    return_value: Any = None
    error_exit: bool = False
    error_reason: str = ""
    messages: List[str] = dc_field(default_factory=list)
    globals: Dict[str, Any] = dc_field(default_factory=dict)
    steps: int = 0


def _default_stubs() -> Dict[str, Callable[..., Any]]:
    def com_err(whoami, code, fmt, *rest):
        return 0

    return {
        "parse_int": lambda s: int(s),
        "parse_uint": lambda s: int(s),
        "parse_ulong": lambda s: int(s),
        "parse_num_blocks": lambda s, log_bs: int(s),
        "atoi": lambda s: int(s),
        "atol": lambda s: int(s),
        "strtoul": lambda s, *a: int(s),
        "match_int": lambda s: int(s),
        "abs": abs,
        "strcmp": lambda a, b: 0 if a == b else (1 if str(a) > str(b) else -1),
        "strlen": lambda s: len(str(s)),
        "com_err": com_err,
        "ext4_msg": lambda sbi, level, fmt: 0,
        "printf": lambda *a: 0,
        "fprintf": lambda *a: 0,
    }


class Interpreter:
    """Execute functions of one IR module."""

    def __init__(self, module: Module,
                 stubs: Optional[Dict[str, Callable[..., Any]]] = None,
                 globals_init: Optional[Dict[str, Any]] = None,
                 max_steps: int = 100_000) -> None:
        self.module = module
        self.stubs = dict(_default_stubs())
        if stubs:
            self.stubs.update(stubs)
        self.globals: Dict[str, Any] = dict(globals_init or {})
        self.max_steps = max_steps
        self._messages: List[str] = []
        self._steps = 0

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def run(self, function: str, *args: Any) -> ExecResult:
        """Execute ``function`` with ``args``; never raises ErrorExit."""
        self._messages = []
        self._steps = 0
        result = ExecResult()
        try:
            result.return_value = self._call(function, list(args))
        except ErrorExit as exc:
            result.error_exit = True
            result.error_reason = exc.reason
        result.messages = list(self._messages)
        result.globals = dict(self.globals)
        result.steps = self._steps
        return result

    # ------------------------------------------------------------------
    # function execution
    # ------------------------------------------------------------------

    def _call(self, name: str, args: List[Any]) -> Any:
        if name in ("usage", "exit", "abort", "fatal_error"):
            raise ErrorExit(name)
        func = self.module.functions.get(name)
        if func is not None:
            return self._exec_function(func, args)
        if name in self.stubs:
            return self.stubs[name](*args)
        raise InterpError(f"no body or stub for function {name!r}")

    def _exec_function(self, func: Function, args: List[Any]) -> Any:
        env: Dict[Value, Any] = {}
        for param, arg in zip(func.params, args):
            env[Var(param)] = arg
        label = func.entry
        while True:
            block = func.blocks[label]
            next_label: Optional[str] = None
            for instr in block.instrs:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise InterpError(f"step limit exceeded in {func.name}")
                outcome = self._exec_instr(instr, env)
                if isinstance(outcome, _Return):
                    return outcome.value
                if isinstance(outcome, str):
                    next_label = outcome
                    break
            if next_label is None:
                return None  # fell off a block with no terminator effect
            label = next_label

    # ------------------------------------------------------------------
    # instruction execution
    # ------------------------------------------------------------------

    def _exec_instr(self, instr, env):
        if isinstance(instr, Move):
            self._write(instr.dst, self._read(instr.src, env), env)
            return None
        if isinstance(instr, BinOp):
            left = self._read(instr.left, env)
            right = self._read(instr.right, env)
            env[instr.dst] = _binop(instr.op, left, right)
            return None
        if isinstance(instr, UnOp):
            env[instr.dst] = self._unop(instr, env)
            return None
        if isinstance(instr, LoadField):
            base = self._struct_of(self._read(instr.base, env), instr)
            env[instr.dst] = base.get(instr.field)
            return None
        if isinstance(instr, StoreField):
            base = self._struct_of(self._read(instr.base, env), instr)
            base.set(instr.field, self._read(instr.src, env))
            return None
        if isinstance(instr, LoadIndex):
            container = self._read(instr.base, env)
            index = self._read(instr.index, env)
            env[instr.dst] = _index_get(container, index)
            return None
        if isinstance(instr, StoreIndex):
            container = self._read(instr.base, env)
            index = self._read(instr.index, env)
            _index_set(container, index, self._read(instr.src, env))
            return None
        if isinstance(instr, CallInstr):
            args = [self._read(a, env) for a in instr.args]
            value = self._call(instr.func, args)
            if instr.dst is not None:
                env[instr.dst] = value
            return None
        if isinstance(instr, Branch):
            cond = self._read(instr.cond, env)
            return instr.true_label if _truthy(cond) else instr.false_label
        if isinstance(instr, Jump):
            return instr.label
        if isinstance(instr, Ret):
            value = self._read(instr.value, env) if instr.value is not None else None
            return _Return(value)
        raise InterpError(f"cannot execute {type(instr).__name__}")

    def _unop(self, instr: UnOp, env) -> Any:
        operand = self._read(instr.operand, env)
        if instr.op == "!":
            return 0 if _truthy(operand) else 1
        if instr.op == "-":
            return -operand
        if instr.op == "~":
            return ~operand
        if instr.op in ("&", "*"):
            # address-of / deref: structs and pointers coincide here
            return operand
        raise InterpError(f"unknown unary operator {instr.op!r}")

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------

    def _read(self, value: Value, env: Dict[Value, Any]) -> Any:
        if isinstance(value, Const):
            return value.value
        if isinstance(value, StrConst):
            return value.text
        if isinstance(value, Temp):
            return env.get(value, 0)
        if isinstance(value, Var):
            if value in env:
                return env[value]
            if value.name in self.globals:
                return self.globals[value.name]
            if self._is_global(value.name):
                self.globals[value.name] = 0
                return 0
            return env.setdefault(value, 0)
        raise InterpError(f"cannot read {value!r}")

    def _write(self, dst: Value, value: Any, env: Dict[Value, Any]) -> None:
        if isinstance(dst, Var) and (dst.name in self.globals
                                     or self._is_global(dst.name)):
            self.globals[dst.name] = value
            return
        env[dst] = value

    def _is_global(self, name: str) -> bool:
        # Anything not a parameter/local of some function and known at
        # module scope is treated as a global; the corpus declares its
        # globals, and locals shadow via env-first reads.
        return name in self._global_names()

    def _global_names(self):
        cached = getattr(self, "_globals_cache", None)
        if cached is None:
            cached = set()
            for func in self.module.functions.values():
                local = set(func.params)
                for instr in func.instructions():
                    for v in list(instr.defs()) + list(instr.uses()):
                        if isinstance(v, Var) and v.name not in local:
                            cached.add(v.name)
            self._globals_cache = cached
        return cached

    def _struct_of(self, value: Any, instr) -> StructVal:
        if isinstance(value, StructVal):
            return value
        if value == 0 or value is None:
            # lazily materialize globals like `fs_param`
            fresh = StructVal(getattr(instr, "struct", "?"))
            base = instr.base
            if isinstance(base, Var):
                self.globals[base.name] = fresh
            return fresh
        raise InterpError(f"field access on non-struct {value!r}")


@dataclass
class _Return:
    value: Any


def _truthy(value: Any) -> bool:
    if isinstance(value, StructVal):
        return True
    return bool(value)


def _binop(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise InterpError("division by zero")
        return int(left / right) if (left < 0) != (right < 0) else left // right
    if op == "%":
        if right == 0:
            raise InterpError("modulo by zero")
        return left - right * int(left / right)
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "&&":
        return 1 if _truthy(left) and _truthy(right) else 0
    if op == "||":
        return 1 if _truthy(left) or _truthy(right) else 0
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    raise InterpError(f"unknown binary operator {op!r}")


def _index_get(container: Any, index: Any) -> Any:
    if isinstance(container, list):
        return container[index] if 0 <= index < len(container) else 0
    if isinstance(container, str):
        return ord(container[index]) if 0 <= index < len(container) else 0
    if container == 0 or container is None:
        return 0
    raise InterpError(f"indexing non-container {container!r}")


def _index_set(container: Any, index: Any, value: Any) -> None:
    if isinstance(container, list):
        while len(container) <= index:
            container.append(0)
        container[index] = value
        return
    if container == 0 or container is None:
        return  # writes through an unmaterialized array are dropped
    raise InterpError(f"index-store into non-container {container!r}")
