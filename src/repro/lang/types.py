"""C type representations for the mini-C frontend.

Types stay simple: base types (possibly unsigned / sized), struct
references, pointers, and arrays.  The analyzer only needs to know (a)
whether an expression is integral, (b) which struct a pointer/value
refers to so member accesses resolve, and (c) declared signedness/width
for SD *data type* constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CType:
    """One C type.

    ``base`` is one of 'int', 'char', 'long', 'short', 'void', 'float',
    'double', or 'struct'.  For struct types, ``struct_name`` holds the
    tag.  ``pointer`` counts levels of indirection; ``array`` holds an
    optional element count when declared as an array.
    """

    base: str = "int"
    unsigned: bool = False
    struct_name: Optional[str] = None
    pointer: int = 0
    array: Optional[int] = None
    typedef_name: Optional[str] = None  # the typedef this came through

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------

    @property
    def is_struct(self) -> bool:
        """A struct value (no indirection)."""
        return self.base == "struct" and self.pointer == 0

    @property
    def is_struct_pointer(self) -> bool:
        """A pointer to a struct."""
        return self.base == "struct" and self.pointer > 0

    @property
    def is_pointer(self) -> bool:
        """Any pointer or array type."""
        return self.pointer > 0 or self.array is not None

    @property
    def is_integral(self) -> bool:
        """An integer-like scalar type."""
        return self.pointer == 0 and self.base in ("int", "char", "long", "short")

    @property
    def is_void(self) -> bool:
        """The void type."""
        return self.base == "void" and self.pointer == 0

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def pointer_to(self) -> "CType":
        """The type 'pointer to self'."""
        return CType(self.base, self.unsigned, self.struct_name,
                     self.pointer + 1, None, self.typedef_name)

    def deref(self) -> "CType":
        """The pointee type; ValueError when not a pointer."""
        if self.pointer > 0:
            return CType(self.base, self.unsigned, self.struct_name,
                         self.pointer - 1, None, self.typedef_name)
        if self.array is not None:
            return CType(self.base, self.unsigned, self.struct_name,
                         self.pointer, None, self.typedef_name)
        raise ValueError(f"cannot dereference non-pointer type {self}")

    def spelled(self) -> str:
        """A C-ish spelling, e.g. 'unsigned int', 'struct foo *'."""
        parts = []
        if self.unsigned:
            parts.append("unsigned")
        if self.base == "struct":
            parts.append(f"struct {self.struct_name}")
        else:
            parts.append(self.base)
        spelling = " ".join(parts) + " *" * self.pointer
        if self.array is not None:
            spelling += f"[{self.array}]"
        return spelling

    def __str__(self) -> str:
        return self.spelled()


#: Common types, built once.
INT = CType("int")
UNSIGNED = CType("int", unsigned=True)
LONG = CType("long")
UNSIGNED_LONG = CType("long", unsigned=True)
CHAR = CType("char")
CHAR_PTR = CType("char", pointer=1)
VOID = CType("void")


def struct_type(name: str, pointer: int = 0) -> CType:
    """The type 'struct name' with ``pointer`` levels of indirection."""
    return CType("struct", struct_name=name, pointer=pointer)
