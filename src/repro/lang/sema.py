"""Semantic analysis for the mini-C subset.

Builds symbol tables, resolves struct member accesses, and performs
the light type checking the analyzer relies on:

- every identifier resolves to a declaration (local, parameter, global,
  enum constant, or known function),
- member accesses name a field that exists on the resolved struct,
- ``->`` is applied to struct pointers and ``.`` to struct values.

The checker annotates expressions in place: ``expr.ctype`` holds the
resolved :class:`~repro.lang.types.CType` where one is known.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.lang import ast_nodes as A
from repro.lang.types import CType, INT, CHAR_PTR

#: Library functions the corpus may call without declaring; maps name to
#: (return type, variadic marker ignored).  Mirrors what a compiler gets
#: from headers.
BUILTIN_FUNCTIONS: Dict[str, CType] = {
    "abs": INT,
    "atoi": INT,
    "atol": CType("long"),
    "strtol": CType("long"),
    "strtoul": CType("long", unsigned=True),
    "strcmp": INT,
    "strncmp": INT,
    "strlen": CType("long", unsigned=True),
    "strchr": CHAR_PTR,
    "strcpy": CHAR_PTR,
    "printf": INT,
    "fprintf": INT,
    "sprintf": INT,
    "exit": CType("void"),
    "abort": CType("void"),
    "usage": CType("void"),
    "com_err": CType("void"),
    "fatal_error": CType("void"),
    "ext2fs_blocks_count": CType("long", unsigned=True),
    "malloc": CType("void", pointer=1),
    "free": CType("void"),
    "memset": CType("void", pointer=1),
    "memcpy": CType("void", pointer=1),
    "getopt": INT,
    "optarg_value": CHAR_PTR,
    "parse_num_blocks": CType("long", unsigned=True),
    "parse_uint": CType("int", unsigned=True),
    "parse_ulong": CType("long", unsigned=True),
}


class Scope:
    """One lexical scope of variable declarations."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, CType] = {}

    def declare(self, name: str, ctype: CType) -> None:
        """Bind a name to a type in this scope."""
        self.names[name] = ctype

    def lookup(self, name: str) -> Optional[CType]:
        """Resolve a name through enclosing scopes; None when unbound."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Check one translation unit and annotate expression types."""

    def __init__(self, unit: A.TranslationUnit) -> None:
        self.unit = unit
        self.structs: Dict[str, A.StructDecl] = {}
        self.functions: Dict[str, A.FunctionDef] = {}
        self.enum_constants: Dict[str, int] = {}
        self.globals = Scope()
        # struct name -> {field name -> type}; built lazily per struct so
        # member resolution is one dict probe instead of a field scan.
        self._field_maps: Dict[str, Dict[str, CType]] = {}

    def run(self) -> None:
        """Check the whole unit; raises SemanticError on the first fault."""
        for struct in self.unit.structs:
            if struct.name in self.structs:
                raise SemanticError(f"struct {struct.name!r} redefined",
                                    self.unit.filename, struct.line)
            self.structs[struct.name] = struct
        for enum in self.unit.enums:
            for name, value in enum.members:
                self.enum_constants[name] = value
        for gvar in self.unit.globals:
            self.globals.declare(gvar.name, gvar.ctype)
        for fn in self.unit.functions:
            self.functions[fn.name] = fn
        for fn in self.unit.functions:
            if fn.body is not None:
                self._check_function(fn)

    # ------------------------------------------------------------------
    # functions and statements
    # ------------------------------------------------------------------

    def _check_function(self, fn: A.FunctionDef) -> None:
        scope = Scope(self.globals)
        for param in fn.params:
            scope.declare(param.name, param.ctype)
        self._check_stmt(fn.body, scope, fn)

    def _check_stmt(self, stmt: A.Stmt, scope: Scope, fn: A.FunctionDef) -> None:
        # Exact-type dispatch (the AST hierarchy is flat), most common
        # statement kinds first.
        t = type(stmt)
        if t is A.ExprStmt:
            self._check_expr(stmt.expr, scope, fn)
        elif t is A.If:
            self._check_expr(stmt.cond, scope, fn)
            self._check_stmt(stmt.then, scope, fn)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope, fn)
        elif t is A.Block:
            inner = Scope(scope)
            for child in stmt.statements:
                self._check_stmt(child, inner, fn)
        elif t is A.VarDecl:
            if stmt.init is not None:
                self._check_expr(stmt.init, scope, fn)
            scope.declare(stmt.name, stmt.ctype)
        elif t is A.Return:
            if stmt.value is not None:
                self._check_expr(stmt.value, scope, fn)
        elif t is A.While:
            self._check_expr(stmt.cond, scope, fn)
            self._check_stmt(stmt.body, scope, fn)
        elif t is A.For:
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, fn)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner, fn)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner, fn)
            self._check_stmt(stmt.body, inner, fn)
        elif t is A.Switch:
            self._check_expr(stmt.subject, scope, fn)
            for case in stmt.cases:
                if case.value is not None:
                    self._check_expr(case.value, scope, fn)
                inner = Scope(scope)
                for child in case.body:
                    self._check_stmt(child, inner, fn)
        elif t in (A.Break, A.Continue, A.Goto, A.Label):
            pass
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}",
                                self.unit.filename, stmt.line)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _check_expr(self, expr: A.Expr, scope: Scope, fn: A.FunctionDef) -> CType:
        ctype = self._infer(expr, scope, fn)
        expr.ctype = ctype  # type: ignore[attr-defined]
        return ctype

    def _field_type(self, struct: A.StructDecl, field_name: str) -> Optional[CType]:
        """Field type on ``struct``, via a lazily built per-struct map."""
        table = self._field_maps.get(struct.name)
        if table is None:
            table = {field.name: field.ctype for field in struct.fields}
            self._field_maps[struct.name] = table
        return table.get(field_name)

    def _infer(self, expr: A.Expr, scope: Scope, fn: A.FunctionDef) -> CType:
        # Exact-type dispatch (the AST hierarchy is flat), most common
        # expression kinds first.
        t = type(expr)
        if t is A.Ident:
            found = scope.lookup(expr.name)
            if found is not None:
                return found
            if expr.name in self.enum_constants:
                return INT
            if expr.name in self.functions or expr.name in BUILTIN_FUNCTIONS:
                return INT  # function designator used as value
            raise SemanticError(f"undeclared identifier {expr.name!r}",
                                self.unit.filename, expr.line)
        if t is A.Binary:
            self._check_expr(expr.left, scope, fn)
            right = self._check_expr(expr.right, scope, fn)
            if expr.op == ",":
                return right
            return INT
        if t is A.Member:
            base = self._check_expr(expr.base, scope, fn)
            if expr.arrow and not base.is_struct_pointer:
                raise SemanticError(
                    f"'->' applied to non-struct-pointer {base}",
                    self.unit.filename, expr.line)
            if not expr.arrow and not base.is_struct:
                raise SemanticError(
                    f"'.' applied to non-struct {base}",
                    self.unit.filename, expr.line)
            struct = self.structs.get(base.struct_name or "")
            if struct is None:
                raise SemanticError(f"unknown struct {base.struct_name!r}",
                                    self.unit.filename, expr.line)
            ctype = self._field_type(struct, expr.field_name)
            if ctype is not None:
                return ctype
            raise SemanticError(
                f"struct {struct.name!r} has no field {expr.field_name!r}",
                self.unit.filename, expr.line)
        if t is A.IntLit:
            return INT
        if t is A.Call:
            for arg in expr.args:
                self._check_expr(arg, scope, fn)
            if expr.func in self.functions:
                return self.functions[expr.func].return_type
            if expr.func in BUILTIN_FUNCTIONS:
                return BUILTIN_FUNCTIONS[expr.func]
            raise SemanticError(f"call to undeclared function {expr.func!r}",
                                self.unit.filename, expr.line)
        if t is A.Assign:
            self._check_expr(expr.target, scope, fn)
            self._check_expr(expr.value, scope, fn)
            return getattr(expr.target, "ctype", INT)
        if t is A.Unary:
            self._check_expr(expr.operand, scope, fn)
            return INT
        if t is A.StrLit:
            return CHAR_PTR
        if t is A.Index:
            base = self._check_expr(expr.base, scope, fn)
            self._check_expr(expr.index, scope, fn)
            try:
                return base.deref()
            except ValueError:
                return INT
        if t is A.Ternary:
            self._check_expr(expr.cond, scope, fn)
            then = self._check_expr(expr.then, scope, fn)
            self._check_expr(expr.otherwise, scope, fn)
            return then
        if t is A.Cast:
            self._check_expr(expr.operand, scope, fn)
            return expr.ctype
        if t is A.SizeOf:
            if expr.operand is not None:
                self._check_expr(expr.operand, scope, fn)
            return CType("long", unsigned=True)
        if t is A.AddressOf:
            inner = self._check_expr(expr.operand, scope, fn)
            return inner.pointer_to()
        if t is A.Deref:
            inner = self._check_expr(expr.operand, scope, fn)
            try:
                return inner.deref()
            except ValueError:
                return INT
        raise SemanticError(f"unhandled expression {type(expr).__name__}",
                            self.unit.filename, expr.line)


def analyze(unit: A.TranslationUnit) -> SemanticAnalyzer:
    """Run semantic analysis; returns the analyzer (symbol tables)."""
    checker = SemanticAnalyzer(unit)
    checker.run()
    return checker
