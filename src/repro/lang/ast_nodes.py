"""AST node classes for the mini-C subset.

Plain dataclasses; every node carries a source line for diagnostics.
The tree is deliberately close to the grammar — the IR lowering pass
(:mod:`repro.lang.lower`) does the real normalization work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.types import CType


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all expressions."""
    line: int = 0


@dataclass
class IntLit(Expr):
    """Integer (or character) literal."""
    value: int = 0
    macro: Optional[str] = None  # #define name the literal came from


@dataclass
class StrLit(Expr):
    """String literal."""
    value: str = ""


@dataclass
class Ident(Expr):
    """Name reference."""
    name: str = ""


@dataclass
class Unary(Expr):
    """Prefix/postfix unary operation."""
    op: str = ""
    operand: Expr = None
    prefix: bool = True  # ++x vs x++


@dataclass
class Binary(Expr):
    """Binary operation."""
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """Simple or compound assignment."""
    op: str = "="  # '=', '+=', '|=', ...
    target: Expr = None
    value: Expr = None


@dataclass
class Call(Expr):
    """Function call."""
    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Member(Expr):
    """Struct member access ('.' or '->')."""
    base: Expr = None
    field_name: str = ""
    arrow: bool = False  # True for '->'


@dataclass
class Index(Expr):
    """Array subscript."""
    base: Expr = None
    index: Expr = None


@dataclass
class Ternary(Expr):
    """Conditional expression c ? a : b."""
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Cast(Expr):
    """Type cast."""
    ctype: CType = None
    operand: Expr = None


@dataclass
class SizeOf(Expr):
    """sizeof(type) or sizeof(expr)."""
    ctype: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class AddressOf(Expr):
    """&operand."""
    operand: Expr = None


@dataclass
class Deref(Expr):
    """*operand."""
    operand: Expr = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of all statements."""
    line: int = 0


@dataclass
class VarDecl(Stmt):
    """Local variable declaration."""
    name: str = ""
    ctype: CType = None
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for effect."""
    expr: Expr = None


@dataclass
class Block(Stmt):
    """Brace-enclosed statement list."""
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    """if / else."""
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """while or do-while loop."""
    cond: Expr = None
    body: Stmt = None
    do_while: bool = False


@dataclass
class For(Stmt):
    """for loop."""
    init: Optional[Stmt] = None  # VarDecl or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    """return statement."""
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """break statement."""
    pass


@dataclass
class Continue(Stmt):
    """continue statement."""
    pass


@dataclass
class SwitchCase:
    """One ``case`` (value is None for ``default``)."""

    value: Optional[Expr]
    body: List[Stmt]
    line: int = 0


@dataclass
class Switch(Stmt):
    """switch with its cases."""
    subject: Expr = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Goto(Stmt):
    """goto label."""
    label: str = ""


@dataclass
class Label(Stmt):
    """Statement label."""
    name: str = ""


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class StructField:
    """One field of a struct declaration."""
    name: str
    ctype: CType
    line: int = 0


@dataclass
class StructDecl:
    """struct definition."""
    name: str
    fields: List[StructField]
    line: int = 0


@dataclass
class EnumDecl:
    """enum definition."""
    name: Optional[str]
    members: List[Tuple[str, int]]
    line: int = 0


@dataclass
class Typedef:
    """typedef declaration."""
    name: str
    ctype: CType
    line: int = 0


@dataclass
class Param:
    """One function parameter."""
    name: str
    ctype: CType


@dataclass
class FunctionDef:
    """Function definition or prototype (body None)."""
    name: str
    return_type: CType
    params: List[Param]
    body: Optional[Block]  # None for a prototype
    line: int = 0
    static: bool = False


@dataclass
class GlobalVar:
    """File-scope variable."""
    name: str
    ctype: CType
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class TranslationUnit:
    """One parsed source file."""
    filename: str
    structs: List[StructDecl] = field(default_factory=list)
    enums: List[EnumDecl] = field(default_factory=list)
    typedefs: List[Typedef] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        """Find a function definition by name; KeyError when absent."""
        for fn in self.functions:
            if fn.name == name and fn.body is not None:
                return fn
        raise KeyError(f"no function {name!r} in {self.filename}")
