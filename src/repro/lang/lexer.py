"""Tokenizer for the mini-C subset, with object-like ``#define`` macros.

Macros are expanded at the token level: ``#define NAME tokens...``
records the replacement tokens, and later uses of ``NAME`` splice them
in.  Expanded tokens remember the macro name in ``Token.macro`` — the
analyzer uses this to recognize feature-bit constants like
``EXT2_FEATURE_COMPAT_SPARSE_SUPER2`` even after substitution.
``#include`` lines are skipped (the corpus is self-contained).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional

from repro.errors import LexError

KEYWORDS = {
    "int", "unsigned", "long", "short", "char", "void", "float", "double",
    "struct", "union", "enum", "typedef", "static", "const", "extern",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "switch", "case", "default", "sizeof", "goto",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ",", ";", ".", "(", ")", "{", "}", "[", "]",
]


class TokenKind(enum.Enum):
    """Lexical token categories."""
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    STRING = "string"
    CHAR = "char"
    OP = "op"
    EOF = "eof"


@dataclass
class Token:
    """One lexical token with position and macro origin."""
    kind: TokenKind
    text: str
    line: int
    col: int
    value: Optional[int] = None  # numeric value for INT tokens
    macro: Optional[str] = None  # macro this token came from, if any

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.col})"


@dataclass
class MacroDef:
    """One object-like #define and its replacement tokens."""
    name: str
    tokens: List[Token]
    line: int


class Lexer:
    """Tokenize one translation unit."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self.macros: Dict[str, MacroDef] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Return all tokens with macros expanded, ending in EOF."""
        raw = self._raw_tokens()
        expanded = self._expand(raw)
        expanded.append(Token(TokenKind.EOF, "", self.line, self.col))
        return expanded

    # ------------------------------------------------------------------
    # raw scanning
    # ------------------------------------------------------------------

    def _raw_tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            self._skip_space_and_comments()
            if self.pos >= len(self.source):
                return out
            ch = self.source[self.pos]
            if ch == "#":
                self._directive(out)
                continue
            token = self._next_token()
            out.append(token)

    def _skip_space_and_comments(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r":
                self._advance(1)
            elif ch == "\n":
                self._advance(1)
            elif src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance(1)
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end == -1:
                    raise LexError("unterminated block comment", self.filename, self.line, self.col)
                self._advance_to(end + 2)
            else:
                return

    def _directive(self, out: List[Token]) -> None:
        """Handle one preprocessor line (#define, #include, #if 0 ... )."""
        line_start = self.line
        text = self._take_logical_line()
        body = text[1:].strip()
        if body.startswith("include"):
            return  # corpus is self-contained
        if body.startswith("define"):
            rest = body[len("define"):].strip()
            if not rest:
                raise LexError("empty #define", self.filename, line_start, 1)
            name_end = 0
            while name_end < len(rest) and (rest[name_end].isalnum() or rest[name_end] == "_"):
                name_end += 1
            name = rest[:name_end]
            if name_end < len(rest) and rest[name_end] == "(":
                raise LexError(
                    f"function-like macro {name!r} not supported",
                    self.filename, line_start, 1,
                )
            replacement = rest[name_end:].strip()
            sub = Lexer(replacement, self.filename)
            sub.line = line_start
            tokens = sub._raw_tokens()
            for t in tokens:
                t.macro = name
            self.macros[name] = MacroDef(name, tokens, line_start)
            return
        if body.startswith(("ifdef", "ifndef", "endif", "undef", "pragma", "if", "else", "elif")):
            return  # tolerated and ignored (corpus avoids conditional code)
        raise LexError(f"unsupported directive {text.split()[0]!r}", self.filename, line_start, 1)

    def _take_logical_line(self) -> str:
        """Consume to end of line, honouring backslash continuations."""
        start = self.pos
        src = self.source
        while self.pos < len(src):
            if src[self.pos] == "\\" and self.pos + 1 < len(src) and src[self.pos + 1] == "\n":
                self._advance(2)
                continue
            if src[self.pos] == "\n":
                break
            self._advance(1)
        text = src[start:self.pos].replace("\\\n", " ")
        return text

    def _next_token(self) -> Token:
        src = self.source
        ch = src[self.pos]
        line, col = self.line, self.col
        if ch.isalpha() or ch == "_":
            start = self.pos
            while self.pos < len(src) and (src[self.pos].isalnum() or src[self.pos] == "_"):
                self._advance(1)
            text = src[start:self.pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, line, col)
        if ch.isdigit():
            return self._number(line, col)
        if ch == '"':
            return self._string(line, col)
        if ch == "'":
            return self._char(line, col)
        for op in _OPERATORS:
            if src.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line, col)
        raise LexError(f"unexpected character {ch!r}", self.filename, line, col)

    def _number(self, line: int, col: int) -> Token:
        src = self.source
        start = self.pos
        if src.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                self._advance(1)
            text = src[start:self.pos]
            value = int(text, 16)
        else:
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance(1)
            text = src[start:self.pos]
            value = int(text)
        # integer suffixes (UL, LL, ...) are accepted and ignored
        while self.pos < len(src) and src[self.pos] in "uUlL":
            text += src[self.pos]
            self._advance(1)
        return Token(TokenKind.INT, text, line, col, value=value)

    def _string(self, line: int, col: int) -> Token:
        src = self.source
        self._advance(1)
        start = self.pos
        out = []
        while self.pos < len(src) and src[self.pos] != '"':
            if src[self.pos] == "\\" and self.pos + 1 < len(src):
                out.append(src[self.pos:self.pos + 2])
                self._advance(2)
            else:
                out.append(src[self.pos])
                self._advance(1)
        if self.pos >= len(src):
            raise LexError("unterminated string literal", self.filename, line, col)
        self._advance(1)
        return Token(TokenKind.STRING, "".join(out), line, col)

    def _char(self, line: int, col: int) -> Token:
        src = self.source
        self._advance(1)
        if self.pos >= len(src):
            raise LexError("unterminated character literal", self.filename, line, col)
        if src[self.pos] == "\\":
            escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39, "r": 13}
            esc = src[self.pos + 1]
            if esc not in escapes:
                raise LexError(f"unknown escape \\{esc}", self.filename, line, col)
            value = escapes[esc]
            text = "\\" + esc
            self._advance(2)
        else:
            value = ord(src[self.pos])
            text = src[self.pos]
            self._advance(1)
        if self.pos >= len(src) or src[self.pos] != "'":
            raise LexError("unterminated character literal", self.filename, line, col)
        self._advance(1)
        return Token(TokenKind.CHAR, text, line, col, value=value)

    # ------------------------------------------------------------------
    # macro expansion
    # ------------------------------------------------------------------

    def _expand(self, tokens: List[Token], active: Optional[frozenset] = None) -> List[Token]:
        """Recursively expand macros; re-expansion of an active macro stops."""
        active = active or frozenset()
        out: List[Token] = []
        for token in tokens:
            name = token.text
            if token.kind is TokenKind.IDENT and name in self.macros and name not in active:
                macro = self.macros[name]
                inner = self._expand(macro.tokens, active | {name})
                for repl in inner:
                    out.append(Token(repl.kind, repl.text, token.line, token.col,
                                     value=repl.value, macro=repl.macro or name))
            else:
                out.append(token)
        return out

    # ------------------------------------------------------------------
    # position tracking
    # ------------------------------------------------------------------

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _advance_to(self, pos: int) -> None:
        self._advance(pos - self.pos)


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Convenience wrapper: tokenize ``source`` with macro expansion."""
    return Lexer(source, filename).tokenize()
