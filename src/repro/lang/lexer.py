"""Tokenizer for the mini-C subset, with object-like ``#define`` macros.

Macros are expanded at the token level: ``#define NAME tokens...``
records the replacement tokens, and later uses of ``NAME`` splice them
in.  Expanded tokens remember the macro name in ``Token.macro`` — the
analyzer uses this to recognize feature-bit constants like
``EXT2_FEATURE_COMPAT_SPARSE_SUPER2`` even after substitution.
``#include`` lines are skipped (the corpus is self-contained).

Two scanners produce identical token streams:

- ``regex`` (default) — one compiled master pattern consumes a whole
  token (or whitespace/comment run) per match, tracking line/column
  from the matched text;
- ``scan`` — the original per-character scanner, kept as the reference
  and the error path: whenever the master pattern cannot match (an
  unterminated literal, an unknown character, a malformed hex prefix),
  the regex scanner hands that position to the per-character scanner
  so diagnostics stay byte-identical.

Select with ``REPRO_LEX=regex|scan``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional

from repro.errors import LexError
from repro.perf import modes as engine_modes

#: Environment knob selecting the scanner implementation.
LEX_ENV = engine_modes.knob("lex").env

#: Recognized scanner names (first is the default).
LEX_MODES = engine_modes.knob("lex").modes


def resolve_lex_mode(explicit: Optional[str] = None) -> str:
    """The scanner to use: ``explicit`` arg, else $REPRO_LEX, else regex."""
    return engine_modes.resolve_mode("lex", explicit)


KEYWORDS = {
    "int", "unsigned", "long", "short", "char", "void", "float", "double",
    "struct", "union", "enum", "typedef", "static", "const", "extern",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "switch", "case", "default", "sizeof", "goto",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ",", ";", ".", "(", ")", "{", "}", "[", "]",
]

#: Character-literal escapes (shared by both scanners).
_CHAR_ESCAPES = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39, "r": 13}

#: One master pattern, one token per match.  The leading non-capturing
#: part swallows the whitespace/comment run in front of the token, so
#: the scanner pays one regex call per *token* rather than one per
#: lexeme-or-gap.  Alternation order matters: the skip part runs first
#: (so ``//`` and ``/*`` never lex as division), hex before decimal,
#: and the operator branch reuses ``_OPERATORS``'s longest-first order
#: for maximal munch.  The token part is optional: a match with no
#: group is a pure gap (trailing space, or space in front of a ``#``
#: directive or an error), and a zero-width match hands the position
#: to the per-character scanner, which owns all error diagnostics.
#: Inside the operator branch, punctuation that is no prefix of any
#: longer operator leads as one charset (a single test for the most
#: common tokens); the rest keeps ``_OPERATORS``'s longest-first
#: order so maximal munch is unchanged.
_MASTER = re.compile(
    r"""
    (?: [ \t\r\n]+ | //[^\n]* | /\*.*?\*/ )*
    (?:
      (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<hex>0[xX][0-9a-fA-F]+[uUlL]*)
    | (?P<int>[0-9]+[uUlL]*)
    | (?P<string>"(?:\\.|[^"\\])*")
    | (?P<char>'(?:\\.|[^'\\])')
    | (?P<op>[;,()\[\]{}~?:]
             |""" + "|".join(re.escape(op) for op in _OPERATORS
                             if op not in ";,()[]{}~?:") + r""")
    )?
    """,
    re.VERBOSE | re.DOTALL,
)

#: Group numbers for integer dispatch on ``match.lastindex``.
_G_IDENT = _MASTER.groupindex["ident"]
_G_HEX = _MASTER.groupindex["hex"]
_G_INT = _MASTER.groupindex["int"]
_G_STRING = _MASTER.groupindex["string"]
_G_CHAR = _MASTER.groupindex["char"]
_G_OP = _MASTER.groupindex["op"]


class TokenKind(enum.Enum):
    """Lexical token categories."""
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    STRING = "string"
    CHAR = "char"
    OP = "op"
    EOF = "eof"


@dataclass(slots=True)
class Token:
    """One lexical token with position and macro origin."""
    kind: TokenKind
    text: str
    line: int
    col: int
    value: Optional[int] = None  # numeric value for INT tokens
    macro: Optional[str] = None  # macro this token came from, if any

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.col})"


@dataclass
class MacroDef:
    """One object-like #define and its replacement tokens."""
    name: str
    tokens: List[Token]
    line: int


class Lexer:
    """Tokenize one translation unit."""

    def __init__(self, source: str, filename: str = "<input>",
                 mode: Optional[str] = None) -> None:
        self.source = source
        self.filename = filename
        self.mode = resolve_lex_mode(mode)
        self.pos = 0
        self.line = 1
        self.col = 1
        self.macros: Dict[str, MacroDef] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Return all tokens with macros expanded, ending in EOF."""
        raw = self._raw_tokens()
        expanded = self._expand(raw)
        expanded.append(Token(TokenKind.EOF, "", self.line, self.col))
        return expanded

    # ------------------------------------------------------------------
    # raw scanning
    # ------------------------------------------------------------------

    def _raw_tokens(self) -> List[Token]:
        if self.mode == "regex":
            return self._raw_tokens_regex()
        return self._raw_tokens_scan()

    def _raw_tokens_scan(self) -> List[Token]:
        out: List[Token] = []
        while True:
            self._skip_space_and_comments()
            if self.pos >= len(self.source):
                return out
            ch = self.source[self.pos]
            if ch == "#":
                self._directive(out)
                continue
            token = self._next_token()
            out.append(token)

    def _raw_tokens_regex(self) -> List[Token]:
        """Master-pattern scanner; see the module docstring.

        Position tracking lives in locals (the per-character
        ``_advance`` is the old scanner's hot spot) and syncs with the
        instance fields around the two slow paths: directives and
        anything the pattern cannot match.
        """
        out: List[Token] = []
        append = out.append
        src = self.source
        n = len(src)
        match_at = _MASTER.match
        keywords = KEYWORDS
        tok = Token
        keyword, ident = TokenKind.KEYWORD, TokenKind.IDENT
        op_kind, int_kind = TokenKind.OP, TokenKind.INT
        pos, line, col = self.pos, self.line, self.col
        while pos < n:
            if src[pos] == "#":
                self.pos, self.line, self.col = pos, line, col
                self._directive(out)
                pos, line, col = self.pos, self.line, self.col
                continue
            m = match_at(src, pos)
            idx = m.lastindex
            if idx is None:
                # Pure gap: whitespace/comments up to EOF, a ``#``, or
                # something the pattern cannot lex.  Zero width means
                # no progress — the reference scanner owns the error.
                end = m.end()
                if end == pos:
                    self.pos, self.line, self.col = pos, line, col
                    out.append(self._next_token())
                    pos, line, col = self.pos, self.line, self.col
                    continue
                gap = src[pos:end]
                newlines = gap.count("\n")
                if newlines:
                    line += newlines
                    col = len(gap) - gap.rfind("\n")
                else:
                    col += len(gap)
                pos = end
                continue
            start, end = m.span(idx)
            if start != pos:
                # Skip prefix in front of the token.
                gap = src[pos:start]
                newlines = gap.count("\n")
                if newlines:
                    line += newlines
                    col = len(gap) - gap.rfind("\n")
                else:
                    col += len(gap)
                pos = start
            text = src[start:end]
            if idx == _G_IDENT:
                append(tok(
                    keyword if text in keywords else ident,
                    text, line, col,
                ))
                pos = end
                col += end - start  # identifiers never span lines
                continue
            if idx == _G_OP:
                if text == "/" and src.startswith("/*", pos):
                    # ``bcomment`` only loses to ``op`` when unclosed.
                    raise LexError("unterminated block comment",
                                   self.filename, line, col)
                append(tok(op_kind, text, line, col))
                pos = end
                col += end - start
                continue
            if idx == _G_INT:
                if end < n and text == "0" and src[end] in "xX":
                    # '0' then 'x': a hex prefix with no digits; the
                    # reference scanner owns the (mis)handling.
                    self.pos, self.line, self.col = pos, line, col
                    out.append(self._next_token())
                    pos, line, col = self.pos, self.line, self.col
                    continue
                append(tok(int_kind, text, line, col,
                           value=int(text.rstrip("uUlL"))))
                pos = end
                col += end - start
                continue
            if idx == _G_HEX:
                append(tok(int_kind, text, line, col,
                           value=int(text.rstrip("uUlL"), 16)))
                pos = end
                col += end - start
                continue
            if idx == _G_STRING:
                append(tok(TokenKind.STRING, text[1:-1], line, col))
            else:  # char literal
                if text[1] == "\\" and text[2] not in _CHAR_ESCAPES:
                    # an escape the reference scanner rejects
                    self.pos, self.line, self.col = pos, line, col
                    out.append(self._next_token())
                    pos, line, col = self.pos, self.line, self.col
                    continue
                body = text[1:-1]
                value = (_CHAR_ESCAPES[body[1]] if body[0] == "\\"
                         else ord(body))
                append(tok(TokenKind.CHAR, body, line, col, value=value))
            # Only string literals can span lines, so the newline count
            # lives on this shared tail.
            pos = end
            newlines = text.count("\n")
            if newlines:
                line += newlines
                col = len(text) - text.rfind("\n")
            else:
                col += len(text)
        self.pos, self.line, self.col = pos, line, col
        return out

    def _skip_space_and_comments(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r":
                self._advance(1)
            elif ch == "\n":
                self._advance(1)
            elif src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance(1)
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end == -1:
                    raise LexError("unterminated block comment", self.filename, self.line, self.col)
                self._advance_to(end + 2)
            else:
                return

    def _directive(self, out: List[Token]) -> None:
        """Handle one preprocessor line (#define, #include, #if 0 ... )."""
        line_start = self.line
        text = self._take_logical_line()
        body = text[1:].strip()
        if body.startswith("include"):
            return  # corpus is self-contained
        if body.startswith("define"):
            rest = body[len("define"):].strip()
            if not rest:
                raise LexError("empty #define", self.filename, line_start, 1)
            name_end = 0
            while name_end < len(rest) and (rest[name_end].isalnum() or rest[name_end] == "_"):
                name_end += 1
            name = rest[:name_end]
            if name_end < len(rest) and rest[name_end] == "(":
                raise LexError(
                    f"function-like macro {name!r} not supported",
                    self.filename, line_start, 1,
                )
            replacement = rest[name_end:].strip()
            sub = Lexer(replacement, self.filename, mode=self.mode)
            sub.line = line_start
            tokens = sub._raw_tokens()
            for t in tokens:
                t.macro = name
            self.macros[name] = MacroDef(name, tokens, line_start)
            return
        if body.startswith(("ifdef", "ifndef", "endif", "undef", "pragma", "if", "else", "elif")):
            return  # tolerated and ignored (corpus avoids conditional code)
        raise LexError(f"unsupported directive {text.split()[0]!r}", self.filename, line_start, 1)

    def _take_logical_line(self) -> str:
        """Consume to end of line, honouring backslash continuations."""
        src = self.source
        n = len(src)
        start = pos = self.pos
        line, col = self.line, self.col
        while pos < n:
            ch = src[pos]
            if ch == "\\" and pos + 1 < n and src[pos + 1] == "\n":
                pos += 2
                line += 1
                col = 1
                continue
            if ch == "\n":
                break
            pos += 1
            col += 1
        self.pos, self.line, self.col = pos, line, col
        return src[start:pos].replace("\\\n", " ")

    def _next_token(self) -> Token:
        src = self.source
        ch = src[self.pos]
        line, col = self.line, self.col
        if ch.isalpha() or ch == "_":
            start = self.pos
            while self.pos < len(src) and (src[self.pos].isalnum() or src[self.pos] == "_"):
                self._advance(1)
            text = src[start:self.pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, line, col)
        if ch.isdigit():
            return self._number(line, col)
        if ch == '"':
            return self._string(line, col)
        if ch == "'":
            return self._char(line, col)
        for op in _OPERATORS:
            if src.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line, col)
        raise LexError(f"unexpected character {ch!r}", self.filename, line, col)

    def _number(self, line: int, col: int) -> Token:
        src = self.source
        start = self.pos
        if src.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                self._advance(1)
            text = src[start:self.pos]
            value = int(text, 16)
        else:
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance(1)
            text = src[start:self.pos]
            value = int(text)
        # integer suffixes (UL, LL, ...) are accepted and ignored
        while self.pos < len(src) and src[self.pos] in "uUlL":
            text += src[self.pos]
            self._advance(1)
        return Token(TokenKind.INT, text, line, col, value=value)

    def _string(self, line: int, col: int) -> Token:
        src = self.source
        self._advance(1)
        start = self.pos
        out = []
        while self.pos < len(src) and src[self.pos] != '"':
            if src[self.pos] == "\\" and self.pos + 1 < len(src):
                out.append(src[self.pos:self.pos + 2])
                self._advance(2)
            else:
                out.append(src[self.pos])
                self._advance(1)
        if self.pos >= len(src):
            raise LexError("unterminated string literal", self.filename, line, col)
        self._advance(1)
        return Token(TokenKind.STRING, "".join(out), line, col)

    def _char(self, line: int, col: int) -> Token:
        src = self.source
        self._advance(1)
        if self.pos >= len(src):
            raise LexError("unterminated character literal", self.filename, line, col)
        if src[self.pos] == "\\":
            esc = src[self.pos + 1]
            if esc not in _CHAR_ESCAPES:
                raise LexError(f"unknown escape \\{esc}", self.filename, line, col)
            value = _CHAR_ESCAPES[esc]
            text = "\\" + esc
            self._advance(2)
        else:
            value = ord(src[self.pos])
            text = src[self.pos]
            self._advance(1)
        if self.pos >= len(src) or src[self.pos] != "'":
            raise LexError("unterminated character literal", self.filename, line, col)
        self._advance(1)
        return Token(TokenKind.CHAR, text, line, col, value=value)

    # ------------------------------------------------------------------
    # macro expansion
    # ------------------------------------------------------------------

    def _expand(self, tokens: List[Token], active: Optional[frozenset] = None) -> List[Token]:
        """Recursively expand macros; re-expansion of an active macro stops."""
        macros = self.macros
        if not macros:
            return tokens
        active = active or frozenset()
        out: List[Token] = []
        append = out.append
        ident = TokenKind.IDENT
        for token in tokens:
            name = token.text
            # The dict probe rejects almost every token; check it first.
            if name in macros and token.kind is ident and name not in active:
                macro = macros[name]
                inner = self._expand(macro.tokens, active | {name})
                for repl in inner:
                    append(Token(repl.kind, repl.text, token.line, token.col,
                                 value=repl.value, macro=repl.macro or name))
            else:
                append(token)
        return out

    # ------------------------------------------------------------------
    # position tracking
    # ------------------------------------------------------------------

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _advance_to(self, pos: int) -> None:
        self._advance(pos - self.pos)


def tokenize(source: str, filename: str = "<input>",
             mode: Optional[str] = None) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` with macro expansion."""
    return Lexer(source, filename, mode=mode).tokenize()
