"""AST-to-IR lowering.

Structured control flow becomes labelled basic blocks; expressions
become three-address instructions.  ``switch`` lowers to a comparison
chain with C fallthrough semantics; ternaries lower to real control
flow with a select variable, so taint follows both arms and the
condition.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import LoweringError
from repro.lang import ast_nodes as A
from repro.lang.ir import (
    BasicBlock,
    BinOp,
    Branch,
    CallInstr,
    Const,
    Function,
    Instr,
    Jump,
    LoadField,
    LoadIndex,
    Module,
    Move,
    Ret,
    StoreField,
    StoreIndex,
    StrConst,
    Temp,
    UnOp,
    Value,
    Var,
)


class FunctionLowering:
    """Lower one function definition."""

    def __init__(self, fn: A.FunctionDef, filename: str) -> None:
        self.fn = fn
        self.filename = filename
        self.func = Function(
            name=fn.name,
            params=[p.name for p in fn.params],
            param_types={p.name: p.ctype.spelled() for p in fn.params},
            line=fn.line,
        )
        self._temp_counter = 0
        self._label_counter = 0
        self._select_counter = 0
        self.current = self._new_block("entry")
        self.func.entry = "entry"
        #: Whether ``current`` already has a terminator.  Mirrors
        #: ``current.terminator is not None`` so the per-instruction
        #: emit check is one flag read instead of a property scan.
        self._sealed = False
        self._break_stack: List[str] = []
        self._continue_stack: List[str] = []
        self._goto_labels: Dict[str, BasicBlock] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _new_temp(self) -> Temp:
        self._temp_counter += 1
        return Temp(self._temp_counter)

    def _new_block(self, hint: str) -> BasicBlock:
        self._label_counter += 1
        label = f"{hint}" if hint == "entry" else f"{hint}.{self._label_counter}"
        block = BasicBlock(label)
        self.func.blocks[label] = block
        return block

    def _emit(self, instr: Instr) -> None:
        """Append a non-terminator to the current block (if still open)."""
        if not self._sealed:
            self.current.instrs.append(instr)

    def _emit_term(self, instr: Instr) -> None:
        """Append a terminator (Branch/Ret) and seal the block."""
        if not self._sealed:
            self.current.instrs.append(instr)
            self._sealed = True

    def _switch_to(self, block: BasicBlock) -> None:
        self.current = block
        self._sealed = block.terminator is not None

    def _terminate_with_jump(self, target: str) -> None:
        if not self._sealed:
            self.current.instrs.append(Jump(0, target))
            self._sealed = True

    # ------------------------------------------------------------------
    # entry
    # ------------------------------------------------------------------

    def lower(self) -> Function:
        """Lower the function body; returns the finished Function."""
        self._lower_stmt(self.fn.body)
        if self.current.terminator is None:
            self.current.instrs.append(Ret(0, None))
        # Guarantee every block terminates (empty merge blocks get rets).
        for block in self.func.blocks.values():
            if block.terminator is None:
                block.instrs.append(Ret(0, None))
        return self.func

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _lower_stmt(self, stmt: A.Stmt) -> None:
        # Exact-type dispatch (the AST hierarchy is flat), most common
        # statement kinds first.
        t = type(stmt)
        if t is A.ExprStmt:
            self._lower_expr(stmt.expr)
        elif t is A.If:
            self._lower_if(stmt)
        elif t is A.Block:
            for child in stmt.statements:
                self._lower_stmt(child)
        elif t is A.VarDecl:
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                self._emit(Move(stmt.line, Var(stmt.name), value))
        elif t is A.Return:
            value = self._lower_expr(stmt.value) if stmt.value is not None else None
            self._emit_term(Ret(stmt.line, value))
        elif t is A.While:
            self._lower_while(stmt)
        elif t is A.For:
            self._lower_for(stmt)
        elif t is A.Break:
            if not self._break_stack:
                raise LoweringError(f"{self.filename}:{stmt.line}: break outside loop/switch")
            self._terminate_with_jump(self._break_stack[-1])
        elif t is A.Continue:
            if not self._continue_stack:
                raise LoweringError(f"{self.filename}:{stmt.line}: continue outside loop")
            self._terminate_with_jump(self._continue_stack[-1])
        elif t is A.Switch:
            self._lower_switch(stmt)
        elif t is A.Goto:
            target = self._goto_block(stmt.label)
            self._terminate_with_jump(target.label)
        elif t is A.Label:
            target = self._goto_block(stmt.name)
            self._terminate_with_jump(target.label)
            self._switch_to(target)
        else:
            raise LoweringError(f"{self.filename}:{stmt.line}: cannot lower "
                                f"{type(stmt).__name__}")

    def _goto_block(self, name: str) -> BasicBlock:
        if name not in self._goto_labels:
            self._goto_labels[name] = self._new_block(f"label_{name}")
        return self._goto_labels[name]

    def _lower_if(self, stmt: A.If) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self._new_block("if.then")
        else_block = self._new_block("if.else") if stmt.otherwise else None
        merge = self._new_block("if.end")
        self._emit_term(Branch(stmt.line, cond, then_block.label,
                          (else_block or merge).label))
        self._switch_to(then_block)
        self._lower_stmt(stmt.then)
        self._terminate_with_jump(merge.label)
        if else_block is not None:
            self._switch_to(else_block)
            self._lower_stmt(stmt.otherwise)
            self._terminate_with_jump(merge.label)
        self._switch_to(merge)

    def _lower_while(self, stmt: A.While) -> None:
        head = self._new_block("while.cond")
        body = self._new_block("while.body")
        end = self._new_block("while.end")
        if stmt.do_while:
            self._terminate_with_jump(body.label)
        else:
            self._terminate_with_jump(head.label)
        self._switch_to(head)
        cond = self._lower_expr(stmt.cond)
        self._emit_term(Branch(stmt.line, cond, body.label, end.label))
        self._switch_to(body)
        self._break_stack.append(end.label)
        self._continue_stack.append(head.label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._terminate_with_jump(head.label)
        self._switch_to(end)

    def _lower_for(self, stmt: A.For) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._new_block("for.cond")
        body = self._new_block("for.body")
        step = self._new_block("for.step")
        end = self._new_block("for.end")
        self._terminate_with_jump(head.label)
        self._switch_to(head)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            self._emit_term(Branch(stmt.line, cond, body.label, end.label))
        else:
            self._terminate_with_jump(body.label)
        self._switch_to(body)
        self._break_stack.append(end.label)
        self._continue_stack.append(step.label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._terminate_with_jump(step.label)
        self._switch_to(step)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._terminate_with_jump(head.label)
        self._switch_to(end)

    def _lower_switch(self, stmt: A.Switch) -> None:
        subject = self._lower_expr(stmt.subject)
        end = self._new_block("switch.end")
        body_blocks = [self._new_block(f"case.{i}") for i in range(len(stmt.cases))]
        default_index: Optional[int] = None
        # Comparison chain.
        for i, case in enumerate(stmt.cases):
            if case.value is None:
                default_index = i
                continue
            value = self._lower_expr(case.value)
            cmp = self._new_temp()
            self._emit(BinOp(case.line, cmp, "==", subject, value))
            next_test = self._new_block(f"switch.test.{i}")
            self._emit_term(Branch(case.line, cmp, body_blocks[i].label, next_test.label))
            self._switch_to(next_test)
        self._terminate_with_jump(
            body_blocks[default_index].label if default_index is not None else end.label
        )
        # Case bodies, with C fallthrough.
        self._break_stack.append(end.label)
        for i, case in enumerate(stmt.cases):
            self._switch_to(body_blocks[i])
            for child in case.body:
                self._lower_stmt(child)
            fallthrough = body_blocks[i + 1].label if i + 1 < len(body_blocks) else end.label
            self._terminate_with_jump(fallthrough)
        self._break_stack.pop()
        self._switch_to(end)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: A.Expr) -> Value:
        # Exact-type dispatch (the AST hierarchy is flat), most common
        # expression kinds first.
        t = type(expr)
        if t is A.Ident:
            return Var(expr.name)
        if t is A.IntLit:
            return Const(expr.value, expr.macro)
        if t is A.Binary:
            if expr.op == ",":
                self._lower_expr(expr.left)
                return self._lower_expr(expr.right)
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            dst = self._new_temp()
            self._emit(BinOp(expr.line, dst, expr.op, left, right))
            return dst
        if t is A.Member:
            base = self._lower_expr(expr.base)
            struct = self._struct_of(expr.base)
            dst = self._new_temp()
            self._emit(LoadField(expr.line, dst, base, struct, expr.field_name))
            return dst
        if t is A.Call:
            args = [self._lower_expr(a) for a in expr.args]
            dst = self._new_temp()
            self._emit(CallInstr(expr.line, dst, expr.func, args))
            return dst
        if t is A.Assign:
            return self._lower_assign(expr)
        if t is A.Unary:
            return self._lower_unary(expr)
        if t is A.StrLit:
            return StrConst(expr.value)
        if t is A.Index:
            base = self._lower_expr(expr.base)
            index = self._lower_expr(expr.index)
            dst = self._new_temp()
            self._emit(LoadIndex(expr.line, dst, base, index))
            return dst
        if t is A.Ternary:
            return self._lower_ternary(expr)
        if t is A.Cast:
            return self._lower_expr(expr.operand)
        if t is A.SizeOf:
            return Const(8)
        if t is A.AddressOf:
            operand = self._lower_expr(expr.operand)
            dst = self._new_temp()
            self._emit(UnOp(expr.line, dst, "&", operand))
            return dst
        if t is A.Deref:
            operand = self._lower_expr(expr.operand)
            dst = self._new_temp()
            self._emit(UnOp(expr.line, dst, "*", operand))
            return dst
        raise LoweringError(f"{self.filename}:{expr.line}: cannot lower "
                            f"{type(expr).__name__}")

    def _lower_unary(self, expr: A.Unary) -> Value:
        if expr.op in ("++", "--"):
            # Rewrite as load/add/store against the lvalue.
            current = self._lower_expr(expr.operand)
            updated = self._new_temp()
            arith = "+" if expr.op == "++" else "-"
            self._emit(BinOp(expr.line, updated, arith, current, Const(1)))
            self._store_into(expr.operand, updated, expr.line)
            return updated if expr.prefix else current
        operand = self._lower_expr(expr.operand)
        dst = self._new_temp()
        self._emit(UnOp(expr.line, dst, expr.op, operand))
        return dst

    def _lower_ternary(self, expr: A.Ternary) -> Value:
        """Lower ``c ? a : b`` to real control flow with a select variable."""
        cond = self._lower_expr(expr.cond)
        self._select_counter += 1
        select = Var(f".sel{self._select_counter}")
        then_block = self._new_block("sel.then")
        else_block = self._new_block("sel.else")
        merge = self._new_block("sel.end")
        self._emit_term(Branch(expr.line, cond, then_block.label, else_block.label))
        self._switch_to(then_block)
        then_value = self._lower_expr(expr.then)
        self._emit(Move(expr.line, select, then_value))
        self._terminate_with_jump(merge.label)
        self._switch_to(else_block)
        else_value = self._lower_expr(expr.otherwise)
        self._emit(Move(expr.line, select, else_value))
        self._terminate_with_jump(merge.label)
        self._switch_to(merge)
        return select

    def _lower_assign(self, expr: A.Assign) -> Value:
        value = self._lower_expr(expr.value)
        if expr.op != "=":
            # Compound assignment: load current, combine, store.
            current = self._lower_expr(expr.target)
            combined = self._new_temp()
            self._emit(BinOp(expr.line, combined, expr.op[:-1], current, value))
            value = combined
        self._store_into(expr.target, value, expr.line)
        return value

    def _store_into(self, target: A.Expr, value: Value, line: int) -> None:
        if isinstance(target, A.Ident):
            self._emit(Move(line, Var(target.name), value))
        elif isinstance(target, A.Member):
            base = self._lower_expr(target.base)
            struct = self._struct_of(target.base)
            self._emit(StoreField(line, base, struct, target.field_name, value))
        elif isinstance(target, A.Index):
            base = self._lower_expr(target.base)
            index = self._lower_expr(target.index)
            self._emit(StoreIndex(line, base, index, value))
        elif isinstance(target, A.Deref):
            base = self._lower_expr(target.operand)
            self._emit(StoreIndex(line, base, Const(0), value))
        else:
            raise LoweringError(
                f"{self.filename}:{line}: invalid assignment target "
                f"{type(target).__name__}"
            )

    @staticmethod
    def _struct_of(base: A.Expr) -> str:
        ctype = getattr(base, "ctype", None)
        if ctype is not None and ctype.struct_name:
            return ctype.struct_name
        return "?"


def lower(unit: A.TranslationUnit) -> Module:
    """Lower a (semantically checked) translation unit to an IR module."""
    module = Module(unit.filename)
    for struct in unit.structs:
        module.structs[struct.name] = [f.name for f in struct.fields]
    for fn in unit.functions:
        if fn.body is None:
            continue
        module.functions[fn.name] = FunctionLowering(fn, unit.filename).lower()
    return module
