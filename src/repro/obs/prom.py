"""Prometheus text exposition: render and parse, no client library.

``GET /v1/metrics`` speaks the Prometheus text format (version 0.0.4)
because it is the lingua franca of fleet monitoring — any scraper,
``curl``, or the bundled ``repro-top`` dashboard can consume it — and
because the format is simple enough that depending on a client library
would buy nothing.  This module is the single place that knows the
wire shape:

- :func:`render` turns counters / gauges / :class:`~repro.obs.metrics.
  Histogram` snapshots into exposition text, expanding each histogram
  into the canonical ``_bucket{le=...}`` / ``_sum`` / ``_count``
  triplet with a cumulative ``+Inf`` bucket;
- :func:`parse` reads exposition text back into sample dicts — used by
  ``repro-top``, the service-smoke CI job, and the tests, so the
  round-trip is exercised on every run;
- :func:`histogram_quantile` estimates quantiles from parsed
  ``_bucket`` samples, mirroring PromQL's function of the same name.

Metric names are sanitised the way Prometheus requires
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names
(``serve.http.requests``) become underscored (``serve_http_requests``).
Everything here is pure data-in/data-out; the HTTP layer in
:mod:`repro.serve.api` just calls :func:`render` and ships bytes.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .metrics import Histogram

#: Content type a conforming scraper expects for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")

#: A parsed sample: ((name, ((label, value), ...)) -> float).
SampleKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def metric_name(raw: str) -> str:
    """Sanitise a dotted registry name into a legal metric name."""
    name = _NAME_FIX.sub("_", raw)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _fmt_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (metric_name(k),
                     str(v).replace("\\", r"\\").replace('"', r'\"')
                     .replace("\n", r"\n"))
        for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Exposition:
    """Accumulates metric families and renders the exposition text."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._seen: Dict[str, str] = {}

    def _header(self, name: str, kind: str, help_text: str) -> None:
        prior = self._seen.get(name)
        if prior is None:
            escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
            self._lines.append(f"# HELP {name} {escaped}")
            self._lines.append(f"# TYPE {name} {kind}")
            self._seen[name] = kind
        elif prior != kind:
            raise ValueError(
                f"metric {name} declared as both {prior} and {kind}")

    def add(self, name: str, kind: str, value: float,
            labels: Optional[Mapping[str, str]] = None,
            help_text: str = "") -> None:
        """Add one counter/gauge sample (header emitted once per family)."""
        name = metric_name(name)
        self._header(name, kind, help_text or name)
        self._lines.append(
            f"{name}{_fmt_labels(labels)} {_fmt_value(float(value))}")

    def add_histogram(self, name: str, hist: Histogram,
                      labels: Optional[Mapping[str, str]] = None,
                      help_text: str = "") -> None:
        """Expand a histogram into ``_bucket``/``_sum``/``_count``."""
        name = metric_name(name)
        self._header(name, "histogram", help_text or name)
        base = dict(labels or {})
        for bound, cumulative in hist.cumulative():
            bucket_labels = dict(base)
            bucket_labels["le"] = _fmt_value(bound)
            self._lines.append(
                f"{name}_bucket{_fmt_labels(bucket_labels)} {cumulative}")
        self._lines.append(
            f"{name}_sum{_fmt_labels(base)} {_fmt_value(hist.sum)}")
        self._lines.append(
            f"{name}_count{_fmt_labels(base)} {hist.count}")

    def render(self) -> str:
        """The exposition text (trailing newline included, as required)."""
        return "\n".join(self._lines) + ("\n" if self._lines else "")


def render(counters: Optional[Mapping[str, Union[int, float]]] = None,
           gauges: Optional[Mapping[str, Union[int, float]]] = None,
           histograms: Optional[Mapping[str, Histogram]] = None,
           prefix: str = "repro") -> str:
    """One-call rendering of registry-shaped snapshots.

    ``counters`` and ``gauges`` map dotted names to values;
    ``histograms`` maps dotted names to :class:`Histogram` snapshots.
    Every family is prefixed (``repro_``) so scrapes of mixed fleets
    stay collision-free.
    """
    exp = Exposition()
    for raw, value in sorted((counters or {}).items()):
        exp.add(f"{prefix}_{raw}_total", "counter", value,
                help_text=f"Monotonic counter {raw!r}.")
    for raw, value in sorted((gauges or {}).items()):
        exp.add(f"{prefix}_{raw}", "gauge", value,
                help_text=f"Gauge {raw!r}.")
    for raw, hist in sorted((histograms or {}).items()):
        exp.add_histogram(f"{prefix}_{raw}_seconds", hist,
                          help_text=f"Latency histogram {raw!r}.")
    return exp.render()


_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return float("inf")
    if lowered == "-inf":
        return float("-inf")
    if lowered == "nan":
        return float("nan")
    return float(text)


def parse(text: str) -> Dict[SampleKey, float]:
    """Parse exposition text into ``{(name, labels): value}``.

    Strict on sample lines (a malformed one raises ``ValueError`` with
    the offending line) and tolerant of comments/blank lines, which is
    what a smoke test wants: any scrape that this cannot parse is a
    scrape Prometheus could not parse either.
    """
    samples: Dict[SampleKey, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _LINE.match(stripped)
        if not match:
            raise ValueError(
                f"unparseable exposition line {lineno}: {line!r}")
        raw_labels = match.group("labels")
        labels: List[Tuple[str, str]] = []
        if raw_labels:
            consumed = 0
            for lmatch in _LABEL.finditer(raw_labels):
                value = (lmatch.group(2)
                         .replace(r"\"", '"')
                         .replace(r"\n", "\n")
                         .replace(r"\\", "\\"))
                labels.append((lmatch.group(1), value))
                consumed = lmatch.end()
            leftover = raw_labels[consumed:].strip().strip(",").strip()
            if leftover:
                raise ValueError(
                    f"unparseable labels on line {lineno}: {line!r}")
        key = (match.group("name"), tuple(sorted(labels)))
        samples[key] = _parse_value(match.group("value"))
    return samples


def samples_named(samples: Mapping[SampleKey, float],
                  name: str) -> List[Tuple[Dict[str, str], float]]:
    """All samples of one family, as ``(labels dict, value)`` pairs."""
    return [(dict(labels), value)
            for (sample_name, labels), value in samples.items()
            if sample_name == name]


def histogram_quantile(samples: Mapping[SampleKey, float],
                       name: str, q: float) -> float:
    """PromQL-style quantile from parsed ``<name>_bucket`` samples.

    Returns the upper bound of the first bucket whose cumulative count
    covers rank ``q * count`` (0.0 when the histogram is empty) —
    matching :meth:`Histogram.quantile` so dashboard and in-process
    views agree.
    """
    buckets: List[Tuple[float, float]] = []
    for labels, value in samples_named(samples, f"{name}_bucket"):
        if "le" in labels:
            buckets.append((_parse_value(labels["le"]), value))
    if not buckets:
        raise KeyError(f"no {name}_bucket samples in scrape")
    buckets.sort()
    total = buckets[-1][1]
    if not total:
        return 0.0
    rank = q * total
    finite_max = 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if bound != float("inf"):
                return bound
            break
        if bound != float("inf"):
            finite_max = bound
    return finite_max


def counter_value(samples: Mapping[SampleKey, float], name: str,
                  labels: Optional[Mapping[str, str]] = None) -> float:
    """Value of one exact sample; KeyError names the missing sample."""
    key = (name, tuple(sorted((labels or {}).items())))
    if key not in samples:
        raise KeyError(f"sample {name}{dict(labels or {})} not in scrape")
    return samples[key]
