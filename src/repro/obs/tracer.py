"""Hierarchical tracing with thread-aware context propagation.

Every instrumented phase of the pipeline opens a *span* — a named,
timed interval carrying structured attributes — and spans nest into a
tree via a :mod:`contextvars` context variable.  Worker threads do not
inherit context variables, so :func:`repro.perf.parallel.run_ordered`
performs an explicit handoff (:func:`capture` in the submitting thread,
:func:`adopt` in the worker), which makes a ``--jobs N`` run produce
the *same single rooted tree* as a sequential run — only timings and
sibling completion order differ.

Cost model
----------

Tracing is off unless a :class:`Tracer` has been installed with
:func:`enable`.  The disabled path of :func:`span` is one module-global
load, one ``is None`` test, and returning a shared no-op context
manager — well under a microsecond, and the instrumentation sites are
per-function/per-phase (never per-instruction), so a full-corpus
extraction executes a few hundred to a few thousand of them.
``benchmarks/bench_obs.py`` enforces the resulting overhead stays
below 5% of the extraction wall time.

Typical use::

    from repro.obs import tracer

    t = tracer.Tracer("repro-extract")
    with tracer.enabled(t):
        with tracer.span("extract.scenario", scenario=spec.name):
            ...
    tree = t.roots()
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: The span the current logical context is inside of (per thread *and*
#: per context — worker threads receive it via capture()/adopt()).
_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span",
                                                    default=None)

#: The installed tracer, or None when tracing is off.  A plain module
#: global (not a contextvar): one trace session per process is the
#: model, and the disabled fast path must be a single load.
_ACTIVE: Optional["Tracer"] = None


class Span:
    """One named, timed interval in the trace tree.

    ``span_id`` is unique within the owning tracer; ``parent_id`` is
    ``None`` for roots.  ``start_wall`` is an epoch timestamp (for
    humans and exporters); ``start``/``duration`` come from the
    monotonic clock (for arithmetic).  ``attrs`` values must be
    JSON-serializable — they flow into the JSONL sink verbatim.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_wall", "start",
                 "duration", "attrs", "thread", "error")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.start = time.perf_counter()
        self.duration = 0.0
        self.attrs = attrs
        self.thread = threading.current_thread().name
        self.error: Optional[str] = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute to an open (or finished) span."""
        self.attrs[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, dur={self.duration:.6f})")


class Tracer:
    """Collects finished spans for one run.

    Thread-safe: span ids are allocated and finished spans appended
    under a lock.  Spans are recorded in *finish* order; use
    :meth:`roots`/:meth:`children` to reconstruct the tree.
    """

    def __init__(self, name: str = "repro",
                 traceparent: Optional[str] = None) -> None:
        self.name = name
        self.created_wall = time.time()
        #: W3C-style trace context this tracer belongs to, or None.
        #: Set when the run was initiated elsewhere (a service submit)
        #: so trace files from different processes can be matched up.
        self.traceparent = traceparent
        self._lock = threading.Lock()
        self._next_id = 0
        self.spans: List[Span] = []

    # -- recording ------------------------------------------------------

    def _open(self, name: str, attrs: Dict[str, Any],
              parent: Optional[Span]) -> Span:
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        return Span(name, span_id,
                    parent.span_id if parent is not None else None, attrs)

    def _close(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        with self._lock:
            self.spans.append(span)

    @contextmanager
    def span(self, name: str, attrs: Dict[str, Any]) -> Iterator[Span]:
        """Open a child of the context's current span; record on exit."""
        parent = _CURRENT.get()
        span = self._open(name, attrs, parent)
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as exc:
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _CURRENT.reset(token)
            self._close(span)

    # -- tree queries ---------------------------------------------------

    def roots(self) -> List[Span]:
        """Spans with no parent, in start order."""
        with self._lock:
            spans = list(self.spans)
        return sorted((s for s in spans if s.parent_id is None),
                      key=lambda s: s.span_id)

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in span-id (start) order."""
        with self._lock:
            spans = list(self.spans)
        return sorted((s for s in spans if s.parent_id == span.span_id),
                      key=lambda s: s.span_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


class _NoopSpan:
    """Shared, stateless no-op context manager for the disabled path.

    Reentrant and thread-safe by construction: ``__enter__`` and
    ``__exit__`` touch no state, so one instance serves every call
    site concurrently.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        """Attribute writes on the disabled path are dropped."""


_NOOP = _NoopSpan()


# ---------------------------------------------------------------------------
# module-level API (what call sites use)
# ---------------------------------------------------------------------------


def span(name: str, **attrs: Any):
    """A span context manager, or a shared no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, attrs)


def active() -> Optional[Tracer]:
    """The installed tracer, or None."""
    return _ACTIVE


def is_enabled() -> bool:
    """Whether a tracer is installed."""
    return _ACTIVE is not None


def enable(tracer: Tracer) -> None:
    """Install ``tracer`` as the process-wide span sink."""
    global _ACTIVE
    _ACTIVE = tracer


def disable() -> None:
    """Remove the installed tracer (span() reverts to the no-op)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def enabled(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the ``with`` body."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def current() -> Optional[Span]:
    """The span the calling context is inside of, if any."""
    return _CURRENT.get()


# ---------------------------------------------------------------------------
# explicit cross-thread handoff (used by repro.perf.parallel)
# ---------------------------------------------------------------------------


def capture() -> Optional[Span]:
    """The span a fan-out should hand to its workers.

    Called in the *submitting* thread.  Returns ``None`` when tracing
    is disabled (the cheap common case) or no span is open, in which
    case workers need no handoff at all.
    """
    if _ACTIVE is None:
        return None
    return _CURRENT.get()


# ---------------------------------------------------------------------------
# cross-process handoff (used by repro.perf.procpool)
# ---------------------------------------------------------------------------


def export_spans(tracer: Tracer) -> List[Dict[str, Any]]:
    """Every recorded span as a plain dict (for a queue/pipe crossing).

    Span ids are only meaningful within ``tracer``; :func:`graft`
    remaps them into the receiving tracer's id space.
    """
    with tracer._lock:
        spans = list(tracer.spans)
    return [{
        "name": s.name,
        "span_id": s.span_id,
        "parent_id": s.parent_id,
        "start_wall": s.start_wall,
        "start": s.start,
        "duration": s.duration,
        "attrs": s.attrs,
        "thread": s.thread,
        "error": s.error,
    } for s in spans]


def graft(exported: List[Dict[str, Any]], tracer: Tracer,
          parent: Optional[Span] = None) -> int:
    """Splice spans exported from another process into ``tracer``.

    Fresh span ids are allocated under the receiving tracer's lock so
    referential integrity holds alongside locally recorded spans;
    worker-side roots re-parent to ``parent`` (the span that was open
    at fan-out time), which keeps a ``--backend process --trace`` run
    a *single* rooted tree.  Returns the number of spans grafted.
    """
    if not exported:
        return 0
    with tracer._lock:
        # Allocate new ids in the worker's *start* order (ids were
        # handed out at open time) so sort-by-span_id keeps meaning
        # "start order" after the graft.
        remap: Dict[int, int] = {}
        for record in sorted(exported, key=lambda r: r["span_id"]):
            tracer._next_id += 1
            remap[record["span_id"]] = tracer._next_id
        for record in exported:
            span = Span.__new__(Span)
            span.name = record["name"]
            span.span_id = remap[record["span_id"]]
            old_parent = record["parent_id"]
            if old_parent is not None and old_parent in remap:
                span.parent_id = remap[old_parent]
            else:
                span.parent_id = parent.span_id if parent is not None else None
            span.start_wall = record["start_wall"]
            span.start = record["start"]
            span.duration = record["duration"]
            span.attrs = dict(record["attrs"])
            span.thread = record["thread"]
            span.error = record["error"]
            tracer.spans.append(span)
    return len(exported)


# ---------------------------------------------------------------------------
# trace context (traceparent) — identifies a trace ACROSS processes
# ---------------------------------------------------------------------------
#
# Span ids stitch a tree together *within* one trace file; they say
# nothing about which distributed operation the file belongs to.  The
# serving layer needs that second identity: a run submitted over HTTP
# is executed by a worker (separate process) which fans out to procpool
# children (more processes), and `repro-runs trace` must find and trust
# that all those fragments describe the same run.  We borrow the W3C
# Trace Context wire shape — `00-<32hex trace-id>-<16hex span-id>-01` —
# because it is compact, greppable, and lets any OTel-literate reader
# interpret our ids, without importing any of the surrounding spec.
#
# The trace id is DERIVED (sha256) from the request key rather than
# random: the queue dedups runs by content, so identical submissions
# share a run AND a trace id by construction, and re-deriving it
# anywhere in the fleet needs no coordination.
#
# The environment variable is the un-prefixed `TRACEPARENT` (the
# convention emerging around OTel CLI tooling), NOT `REPRO_TRACEPARENT`:
# `repro.perf.modes.env_signature()` snapshots every `REPRO_*` variable
# to key persistent process pools, and a per-run-unique value there
# would retire the warm pool on every service run.

#: ``version-traceid-spanid-flags`` per W3C Trace Context level 1.
_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

#: Environment variable carrying trace context across exec boundaries.
TRACEPARENT_ENV = "TRACEPARENT"


def make_traceparent(seed: str, span_seed: str = "root") -> str:
    """A deterministic traceparent derived from ``seed``.

    ``seed`` is typically a request key: every process that knows the
    key derives the same trace id with no coordination.  ``span_seed``
    varies the parent-span-id half (e.g. per attempt) while keeping
    the trace id stable.
    """
    trace_id = hashlib.sha256(f"trace:{seed}".encode()).hexdigest()[:32]
    span_id = hashlib.sha256(
        f"span:{seed}:{span_seed}".encode()).hexdigest()[:16]
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(text: str) -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` when ``text`` is well-formed, else None."""
    match = _TRACEPARENT_RE.match(text.strip().lower())
    if not match:
        return None
    return match.group(1), match.group(2)


#: Thread-scoped traceparent override (see :func:`traceparent_scope`).
_SCOPED_TRACEPARENT: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_traceparent", default=None)


@contextmanager
def traceparent_scope(traceparent: Optional[str]) -> Iterator[None]:
    """Hand trace context to the ``with`` body without touching env.

    ``os.environ`` is process-global: a service worker running several
    jobs concurrently cannot export each job's traceparent there
    without the jobs clobbering each other.  This scope carries the
    value in a :class:`~contextvars.ContextVar` instead, which
    :func:`traceparent_from_env` consults before the environment — so
    in-process callers (the service worker's exec slots) get per-job
    context while exec'd children still inherit via the variable.
    """
    token = _SCOPED_TRACEPARENT.set(traceparent)
    try:
        yield
    finally:
        _SCOPED_TRACEPARENT.reset(token)


def traceparent_from_env() -> Optional[str]:
    """The (validated) trace context handed to this process, if any.

    A :func:`traceparent_scope` override wins over the environment —
    it is more specific (per thread/job, not per process).
    """
    raw = _SCOPED_TRACEPARENT.get() or os.environ.get(TRACEPARENT_ENV)
    if not raw:
        return None
    parsed = parse_traceparent(raw)
    if parsed is None:
        return None
    return raw.strip().lower()


@contextmanager
def adopt(parent: Span) -> Iterator[None]:
    """Run the ``with`` body as a logical child of ``parent``.

    Called in a *worker* thread with the span :func:`capture` returned
    on the submitting side.  Spans opened inside parent to ``parent``,
    which is what stitches a ``--jobs N`` run into one rooted tree.
    """
    token = _CURRENT.set(parent)
    try:
        yield
    finally:
        _CURRENT.reset(token)
