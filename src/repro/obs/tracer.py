"""Hierarchical tracing with thread-aware context propagation.

Every instrumented phase of the pipeline opens a *span* — a named,
timed interval carrying structured attributes — and spans nest into a
tree via a :mod:`contextvars` context variable.  Worker threads do not
inherit context variables, so :func:`repro.perf.parallel.run_ordered`
performs an explicit handoff (:func:`capture` in the submitting thread,
:func:`adopt` in the worker), which makes a ``--jobs N`` run produce
the *same single rooted tree* as a sequential run — only timings and
sibling completion order differ.

Cost model
----------

Tracing is off unless a :class:`Tracer` has been installed with
:func:`enable`.  The disabled path of :func:`span` is one module-global
load, one ``is None`` test, and returning a shared no-op context
manager — well under a microsecond, and the instrumentation sites are
per-function/per-phase (never per-instruction), so a full-corpus
extraction executes a few hundred to a few thousand of them.
``benchmarks/bench_obs.py`` enforces the resulting overhead stays
below 5% of the extraction wall time.

Typical use::

    from repro.obs import tracer

    t = tracer.Tracer("repro-extract")
    with tracer.enabled(t):
        with tracer.span("extract.scenario", scenario=spec.name):
            ...
    tree = t.roots()
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

#: The span the current logical context is inside of (per thread *and*
#: per context — worker threads receive it via capture()/adopt()).
_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span",
                                                    default=None)

#: The installed tracer, or None when tracing is off.  A plain module
#: global (not a contextvar): one trace session per process is the
#: model, and the disabled fast path must be a single load.
_ACTIVE: Optional["Tracer"] = None


class Span:
    """One named, timed interval in the trace tree.

    ``span_id`` is unique within the owning tracer; ``parent_id`` is
    ``None`` for roots.  ``start_wall`` is an epoch timestamp (for
    humans and exporters); ``start``/``duration`` come from the
    monotonic clock (for arithmetic).  ``attrs`` values must be
    JSON-serializable — they flow into the JSONL sink verbatim.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_wall", "start",
                 "duration", "attrs", "thread", "error")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.start = time.perf_counter()
        self.duration = 0.0
        self.attrs = attrs
        self.thread = threading.current_thread().name
        self.error: Optional[str] = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute to an open (or finished) span."""
        self.attrs[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, dur={self.duration:.6f})")


class Tracer:
    """Collects finished spans for one run.

    Thread-safe: span ids are allocated and finished spans appended
    under a lock.  Spans are recorded in *finish* order; use
    :meth:`roots`/:meth:`children` to reconstruct the tree.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self.created_wall = time.time()
        self._lock = threading.Lock()
        self._next_id = 0
        self.spans: List[Span] = []

    # -- recording ------------------------------------------------------

    def _open(self, name: str, attrs: Dict[str, Any],
              parent: Optional[Span]) -> Span:
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        return Span(name, span_id,
                    parent.span_id if parent is not None else None, attrs)

    def _close(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        with self._lock:
            self.spans.append(span)

    @contextmanager
    def span(self, name: str, attrs: Dict[str, Any]) -> Iterator[Span]:
        """Open a child of the context's current span; record on exit."""
        parent = _CURRENT.get()
        span = self._open(name, attrs, parent)
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as exc:
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _CURRENT.reset(token)
            self._close(span)

    # -- tree queries ---------------------------------------------------

    def roots(self) -> List[Span]:
        """Spans with no parent, in start order."""
        with self._lock:
            spans = list(self.spans)
        return sorted((s for s in spans if s.parent_id is None),
                      key=lambda s: s.span_id)

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in span-id (start) order."""
        with self._lock:
            spans = list(self.spans)
        return sorted((s for s in spans if s.parent_id == span.span_id),
                      key=lambda s: s.span_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


class _NoopSpan:
    """Shared, stateless no-op context manager for the disabled path.

    Reentrant and thread-safe by construction: ``__enter__`` and
    ``__exit__`` touch no state, so one instance serves every call
    site concurrently.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        """Attribute writes on the disabled path are dropped."""


_NOOP = _NoopSpan()


# ---------------------------------------------------------------------------
# module-level API (what call sites use)
# ---------------------------------------------------------------------------


def span(name: str, **attrs: Any):
    """A span context manager, or a shared no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, attrs)


def active() -> Optional[Tracer]:
    """The installed tracer, or None."""
    return _ACTIVE


def is_enabled() -> bool:
    """Whether a tracer is installed."""
    return _ACTIVE is not None


def enable(tracer: Tracer) -> None:
    """Install ``tracer`` as the process-wide span sink."""
    global _ACTIVE
    _ACTIVE = tracer


def disable() -> None:
    """Remove the installed tracer (span() reverts to the no-op)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def enabled(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the ``with`` body."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def current() -> Optional[Span]:
    """The span the calling context is inside of, if any."""
    return _CURRENT.get()


# ---------------------------------------------------------------------------
# explicit cross-thread handoff (used by repro.perf.parallel)
# ---------------------------------------------------------------------------


def capture() -> Optional[Span]:
    """The span a fan-out should hand to its workers.

    Called in the *submitting* thread.  Returns ``None`` when tracing
    is disabled (the cheap common case) or no span is open, in which
    case workers need no handoff at all.
    """
    if _ACTIVE is None:
        return None
    return _CURRENT.get()


# ---------------------------------------------------------------------------
# cross-process handoff (used by repro.perf.procpool)
# ---------------------------------------------------------------------------


def export_spans(tracer: Tracer) -> List[Dict[str, Any]]:
    """Every recorded span as a plain dict (for a queue/pipe crossing).

    Span ids are only meaningful within ``tracer``; :func:`graft`
    remaps them into the receiving tracer's id space.
    """
    with tracer._lock:
        spans = list(tracer.spans)
    return [{
        "name": s.name,
        "span_id": s.span_id,
        "parent_id": s.parent_id,
        "start_wall": s.start_wall,
        "start": s.start,
        "duration": s.duration,
        "attrs": s.attrs,
        "thread": s.thread,
        "error": s.error,
    } for s in spans]


def graft(exported: List[Dict[str, Any]], tracer: Tracer,
          parent: Optional[Span] = None) -> int:
    """Splice spans exported from another process into ``tracer``.

    Fresh span ids are allocated under the receiving tracer's lock so
    referential integrity holds alongside locally recorded spans;
    worker-side roots re-parent to ``parent`` (the span that was open
    at fan-out time), which keeps a ``--backend process --trace`` run
    a *single* rooted tree.  Returns the number of spans grafted.
    """
    if not exported:
        return 0
    with tracer._lock:
        # Allocate new ids in the worker's *start* order (ids were
        # handed out at open time) so sort-by-span_id keeps meaning
        # "start order" after the graft.
        remap: Dict[int, int] = {}
        for record in sorted(exported, key=lambda r: r["span_id"]):
            tracer._next_id += 1
            remap[record["span_id"]] = tracer._next_id
        for record in exported:
            span = Span.__new__(Span)
            span.name = record["name"]
            span.span_id = remap[record["span_id"]]
            old_parent = record["parent_id"]
            if old_parent is not None and old_parent in remap:
                span.parent_id = remap[old_parent]
            else:
                span.parent_id = parent.span_id if parent is not None else None
            span.start_wall = record["start_wall"]
            span.start = record["start"]
            span.duration = record["duration"]
            span.attrs = dict(record["attrs"])
            span.thread = record["thread"]
            span.error = record["error"]
            tracer.spans.append(span)
    return len(exported)


@contextmanager
def adopt(parent: Span) -> Iterator[None]:
    """Run the ``with`` body as a logical child of ``parent``.

    Called in a *worker* thread with the span :func:`capture` returned
    on the submitting side.  Spans opened inside parent to ``parent``,
    which is what stitches a ``--jobs N`` run into one rooted tree.
    """
    token = _CURRENT.set(parent)
    try:
        yield
    finally:
        _CURRENT.reset(token)
