"""Dependency provenance: *why* the analyzer emitted what it emitted.

The extractor's output is a flat dependency list; the reasoning behind
each entry lives in the :class:`~repro.analysis.taint.TaintState` the
pipeline otherwise throws away — which parameter tainted which values,
which stores pushed that taint into shared FS metadata fields, and
which later-stage branch loaded it back and guarded an error path.
This module re-derives those facts (the per-function analyses are
memoized, so it costs microseconds after an extraction) and assembles
them into per-parameter provenance records:

    source param → tainted values → field stores → cross-component
    field loads → branch sinks

Surfaced as ``repro-extract --explain <param>`` and, behind
``--provenance``, embedded per dependency in the ``--json`` report.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.constraints import BranchUse, derive_constraints
from repro.analysis.model import Dependency, ParamRef
from repro.analysis.sources import SOURCES_BY_UNIT
from repro.analysis.taint import FieldTaint, analyze_function
from repro.corpus.loader import load_unit
from repro.lang.cfg import build_cfg

#: Cap on trace instructions reproduced per tainted value — provenance
#: is an explanation, not an IR dump.
MAX_TRACE_INSTRS = 6

#: Cap on tainted-value trace entries per parameter.
MAX_TRACE_VALUES = 8


@dataclass
class ParamProvenance:
    """Everything the analyzer knows about one parameter's taint path."""

    param: str
    entry_points: List[Dict[str, Any]] = dc_field(default_factory=list)
    stores: List[Dict[str, Any]] = dc_field(default_factory=list)
    loads: List[Dict[str, Any]] = dc_field(default_factory=list)
    sinks: List[Dict[str, Any]] = dc_field(default_factory=list)
    shared_fields: List[str] = dc_field(default_factory=list)
    trace: List[Dict[str, Any]] = dc_field(default_factory=list)
    dependencies: List[str] = dc_field(default_factory=list)

    def to_dict(self, compact: bool = False) -> Dict[str, Any]:
        """JSON-ready dict; ``compact`` drops the instruction traces."""
        out: Dict[str, Any] = {
            "param": self.param,
            "entry_points": self.entry_points,
            "stores": self.stores,
            "loads": self.loads,
            "sinks": self.sinks,
            "shared_fields": self.shared_fields,
            "dependencies": self.dependencies,
        }
        if not compact:
            out["trace"] = self.trace
        return out

    def render(self) -> str:
        """The human-readable ``--explain`` report."""
        lines = [f"provenance for {self.param}"]
        if not (self.entry_points or self.stores or self.sinks):
            lines.append("  (parameter never observed by the analyzer)")
            return "\n".join(lines)
        if self.entry_points:
            lines.append("  enters the analysis at:")
            for ep in self.entry_points:
                lines.append(f"    {ep['unit']}:{ep['function']} "
                             f"as variable {ep['variable']!r}")
        if self.trace:
            lines.append("  taints (trace excerpt):")
            for entry in self.trace:
                instrs = ", ".join(
                    f"line {i['line']}" for i in entry["instrs"])
                lines.append(f"    {entry['value']} in {entry['function']} "
                             f"({instrs})")
        if self.stores:
            lines.append("  stored into shared metadata:")
            for st in self.stores:
                lines.append(f"    {st['struct']}.{st['field']} by "
                             f"{st['component']}:{st['function']} "
                             f"(line {st['line']})")
        if self.loads:
            lines.append("  loaded back by later components:")
            for ld in self.loads:
                lines.append(f"    {ld['struct']}.{ld['field']} in "
                             f"{ld['component']}:{ld['function']} "
                             f"(line {ld['line']})")
        if self.sinks:
            lines.append("  reaches branch sinks:")
            for sk in self.sinks:
                guard = "error guard" if sk["error_guard"] else "branch"
                lines.append(f"    {sk['component']}:{sk['function']} "
                             f"line {sk['line']} ({guard}, via {sk['via']})")
        if self.shared_fields:
            lines.append("  shared-struct fields on the path: "
                         + ", ".join(self.shared_fields))
        if self.dependencies:
            lines.append("  appears in extracted dependencies:")
            for key in self.dependencies:
                lines.append(f"    {key}")
        return "\n".join(lines)


class ProvenanceIndex:
    """Provenance facts for every pre-selected function of a run.

    Build once (cheap after an extraction — every per-function analysis
    is served from the memo tables), then :meth:`explain` any
    parameter.  ``report`` links parameters to the dependencies they
    appear in; without it the records still carry the full taint path.
    """

    def __init__(self) -> None:
        #: (unit, function) -> (component, TaintState, FunctionFindings)
        self._functions: Dict[Tuple[str, str], Tuple[str, Any, Any]] = {}
        self._dep_keys_by_param: Dict[str, List[str]] = {}
        self._explained: Dict[str, ParamProvenance] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, scenarios: Optional[Sequence[Any]] = None,
              report: Optional[Any] = None,
              solver: Optional[str] = None) -> "ProvenanceIndex":
        """Analyze every pre-selected function of ``scenarios``.

        ``scenarios`` defaults to the Table-5 set; ``report`` is an
        :class:`~repro.analysis.extractor.ExtractionReport` whose union
        is used to cross-link dependencies.
        """
        from repro.analysis.extractor import SCENARIOS

        index = cls()
        for spec in (scenarios if scenarios is not None else SCENARIOS):
            for filename, functions in spec.selected:
                for fn_name in functions:
                    index._add_function(filename, fn_name, solver)
        if report is not None:
            index.link_report(report)
        return index

    def _add_function(self, filename: str, fn_name: str,
                      solver: Optional[str]) -> None:
        key = (filename, fn_name)
        if key in self._functions:
            return
        unit = load_unit(filename)
        sources = SOURCES_BY_UNIT[filename]
        func = unit.module.function(fn_name)
        state = analyze_function(func, sources, unit.component, solver=solver)
        findings = derive_constraints(func, build_cfg(func), state, sources,
                                      unit.component, filename)
        self._functions[key] = (unit.component, state, findings)

    def link_report(self, report: Any) -> None:
        """Index ``report.union`` dependencies by parameter."""
        self._dep_keys_by_param.clear()
        self._explained.clear()
        for dep in report.union:
            for param in dep.params:
                self._dep_keys_by_param.setdefault(
                    str(param), []).append(dep.key())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def known_params(self) -> List[str]:
        """Every parameter name the analyzed sources can introduce."""
        seen: Set[str] = set()
        for (filename, fn_name), (component, state, findings) in \
                self._functions.items():
            sources = SOURCES_BY_UNIT[filename]
            for param in sources.sources_for(fn_name).values():
                seen.add(str(param))
        return sorted(seen)

    def resolve(self, text: str) -> str:
        """Resolve ``name`` or ``component.name`` to a known parameter."""
        known = self.known_params()
        if text in known:
            return text
        matches = [p for p in known if p.split(".", 1)[1] == text]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ValueError(
                f"parameter {text!r} is ambiguous: {', '.join(matches)}")
        # Unknown parameters still get a (mostly empty) record when
        # fully qualified — the caller may be asking about a bridge
        # wildcard like 'mount.*'.
        if "." in text:
            return text
        raise ValueError(
            f"unknown parameter {text!r}; known: {', '.join(known[:10])}...")

    def explain(self, param_text: str) -> ParamProvenance:
        """The provenance record for one parameter (cached)."""
        param = self.resolve(param_text)
        cached = self._explained.get(param)
        if cached is not None:
            return cached
        record = self._build_record(param)
        self._explained[param] = record
        return record

    # ------------------------------------------------------------------
    # record assembly
    # ------------------------------------------------------------------

    def _build_record(self, param: str) -> ParamProvenance:
        component, _, name = param.partition(".")
        ref = ParamRef(component, name)
        record = ParamProvenance(param=param)
        stored_fields: Set[Tuple[str, str]] = set()

        for (filename, fn_name), (comp, state, findings) in \
                self._functions.items():
            sources = SOURCES_BY_UNIT[filename]
            for var, source_ref in sorted(sources.sources_for(fn_name).items()):
                if source_ref == ref:
                    record.entry_points.append({
                        "unit": filename, "function": fn_name,
                        "variable": var,
                    })
            for write in state.field_writes:
                if any(isinstance(l, ParamRef) and l == ref
                       for l in write.labels):
                    stored_fields.add((write.struct, write.field))
                    record.stores.append({
                        "unit": filename, "component": comp,
                        "function": write.function,
                        "struct": write.struct, "field": write.field,
                        "line": write.instr.line,
                        "labels": sorted(str(l) for l in write.labels),
                    })

        # Cross-component loads and branch sinks of the stored fields,
        # plus direct sinks in the parameter's own component.
        for (filename, fn_name), (comp, state, findings) in \
                self._functions.items():
            if comp != component:
                for read in state.field_reads:
                    if (read.struct, read.field) in stored_fields:
                        record.loads.append({
                            "unit": filename, "component": comp,
                            "function": read.function,
                            "struct": read.struct, "field": read.field,
                            "line": read.instr.line,
                        })
            for use in findings.branch_uses:
                self._add_sinks(record, use, comp, filename, ref,
                                stored_fields)

        record.trace = self._taint_trace(ref)
        record.shared_fields = sorted(
            f"{struct}.{field}" for struct, field in stored_fields
            if any(ld["struct"] == struct and ld["field"] == field
                   for ld in record.loads)
            or any(sk["via"] == f"{struct}.{field}" for sk in record.sinks)
        )
        record.dependencies = sorted(
            set(self._dep_keys_by_param.get(param, [])))
        _sort_records(record)
        return record

    def _add_sinks(self, record: ParamProvenance, use: BranchUse,
                   comp: str, filename: str, ref: ParamRef,
                   stored_fields: Set[Tuple[str, str]]) -> None:
        if ref in use.params:
            record.sinks.append({
                "unit": filename, "component": comp,
                "function": use.function, "line": use.line,
                "error_guard": use.error_guard, "via": "direct",
            })
            return
        if comp == ref.component:
            return
        for ft in use.fields:
            if (ft.struct, ft.field) not in stored_fields:
                continue
            if ft.feature is not None and ft.feature != ref.name:
                continue
            record.sinks.append({
                "unit": filename, "component": comp,
                "function": use.function, "line": use.line,
                "error_guard": use.error_guard,
                "via": f"{ft.struct}.{ft.field}",
            })

    def _taint_trace(self, ref: ParamRef) -> List[Dict[str, Any]]:
        """Excerpts of the TaintState traces carrying ``ref``."""
        out: List[Dict[str, Any]] = []
        for (filename, fn_name), (comp, state, _findings) in \
                self._functions.items():
            if comp != ref.component:
                continue
            for value, labels in state.taint.items():
                if ref not in labels:
                    continue
                instrs = state.trace.get(value, [])
                if not instrs:
                    continue
                out.append({
                    "function": fn_name,
                    "value": str(value),
                    "instrs": [
                        {"line": instr.line, "text": str(instr)}
                        for instr in instrs[:MAX_TRACE_INSTRS]
                    ],
                })
                if len(out) >= MAX_TRACE_VALUES:
                    return out
        return out


def _sort_records(record: ParamProvenance) -> None:
    """Deterministic ordering for every list the record carries."""
    record.entry_points.sort(key=lambda e: (e["unit"], e["function"],
                                            e["variable"]))
    record.stores.sort(key=lambda s: (s["unit"], s["function"], s["line"],
                                      s["struct"], s["field"]))
    record.loads.sort(key=lambda l: (l["unit"], l["function"], l["line"],
                                     l["struct"], l["field"]))
    record.sinks.sort(key=lambda s: (s["unit"], s["function"], s["line"],
                                     s["via"]))
    record.trace.sort(key=lambda t: (t["function"], t["value"]))


def dependency_provenance(index: ProvenanceIndex,
                          dep: Dependency,
                          compact: bool = True) -> Dict[str, Any]:
    """Per-parameter provenance records for one dependency."""
    out: Dict[str, Any] = {}
    for param in dep.params:
        try:
            out[str(param)] = index.explain(str(param)).to_dict(
                compact=compact)
        except ValueError:
            out[str(param)] = {"param": str(param), "unresolved": True}
    return out
