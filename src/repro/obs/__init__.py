"""Observability for the reproduction pipeline (``repro.obs``).

Four pieces, layered bottom-up:

- :mod:`repro.obs.metrics` — the metrics registry: phase timings and
  counters; :mod:`repro.perf.timers` is now a thin view over it, so
  ``--profile`` renders the same store the manifests snapshot;
- :mod:`repro.obs.tracer` — hierarchical spans with contextvar
  propagation and an explicit cross-thread handoff, near-zero cost
  when disabled;
- :mod:`repro.obs.events` — the JSONL event sink (``--trace``) and
  Chrome-trace-format exporter (``--chrome-trace``), both validated
  against checked-in schemas;
- :mod:`repro.obs.manifest` — atomic per-run manifests plus the
  ``repro-runs diff`` engine.

:mod:`repro.obs.provenance` (per-dependency taint-path records,
``--explain``) is imported lazily: it sits *above* the analysis layer,
and importing it here would cycle through :mod:`repro.perf`, which
imports the tracer and metrics submodules directly.
"""

from __future__ import annotations

from repro.obs import events, manifest, metrics, tracer
from repro.obs.metrics import REGISTRY, MetricsRegistry, PhaseStat
from repro.obs.tracer import Span, Tracer, span

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "PhaseStat",
    "Span",
    "Tracer",
    "events",
    "manifest",
    "metrics",
    "provenance",
    "span",
    "tracer",
]


def __getattr__(name: str):
    if name == "provenance":
        import repro.obs.provenance as module

        return module
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
