"""A minimal JSON-Schema-subset validator (no third-party deps).

The observability artifacts — JSONL span events, Chrome traces, run
manifests — ship with checked-in schemas (``event_schema.json``,
``manifest_schema.json``) that tests and ``make verify`` validate
against.  The container has no ``jsonschema`` package, so this module
interprets the subset those schemas actually use:

``type`` (string or list), ``properties``, ``required``,
``additionalProperties`` (boolean), ``items``, ``enum``, ``const``,
``minimum``, ``minItems``.

Unknown schema keywords raise instead of silently passing — a schema
typo should fail loudly in CI, not validate everything.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

#: JSON type name -> python types.  bool must be checked before int
#: (bool subclasses int in Python).
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}

_HANDLED = {
    "type", "properties", "required", "additionalProperties", "items",
    "enum", "const", "minimum", "minItems",
    # descriptive keywords, no validation semantics
    "title", "description", "$schema", "$id",
}


class SchemaError(ValueError):
    """An instance does not conform to its schema."""


def _type_ok(value: Any, name: str) -> bool:
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    expected = _TYPES.get(name)
    if expected is None:
        raise SchemaError(f"unknown schema type {name!r}")
    if expected is dict or expected is list or expected is str:
        return isinstance(value, expected)
    if expected is bool:
        return isinstance(value, bool)
    return value is None


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> None:
    """Raise :class:`SchemaError` when ``instance`` violates ``schema``."""
    unknown = set(schema) - _HANDLED
    if unknown:
        raise SchemaError(
            f"{path}: schema uses unsupported keywords {sorted(unknown)}")

    if "const" in schema and instance != schema["const"]:
        raise SchemaError(
            f"{path}: expected constant {schema['const']!r}, got {instance!r}")

    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} not one of {schema['enum']}")

    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(_type_ok(instance, name) for name in names):
            raise SchemaError(
                f"{path}: expected type {'/'.join(names)}, "
                f"got {type(instance).__name__}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance} below minimum {schema['minimum']}")

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            sub = properties.get(key)
            if sub is not None:
                validate(value, sub, f"{path}.{key}")
            elif schema.get("additionalProperties", True) is False:
                raise SchemaError(f"{path}: unexpected key {key!r}")

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            raise SchemaError(
                f"{path}: {len(instance)} items below minItems "
                f"{schema['minItems']}")
        items = schema.get("items")
        if items is not None:
            for index, value in enumerate(instance):
                validate(value, items, f"{path}[{index}]")


def load_schema(basename: str) -> Dict[str, Any]:
    """Load a checked-in schema shipped next to this module."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), basename)
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
