"""Structured event sinks for span trees: JSONL and Chrome trace.

Two export formats over the same :class:`~repro.obs.tracer.Tracer`:

- **JSONL** (``--trace out.jsonl``) — one JSON object per line; the
  first line is a trace header, every following line one finished
  span.  Machine-diffable, streamable, and round-trippable via
  :func:`read_jsonl`.  Every line validates against the checked-in
  ``event_schema.json``.
- **Chrome trace format** (``--chrome-trace out.json``) — the
  ``traceEvents`` JSON that ``chrome://tracing`` and Perfetto load
  directly: complete (``"ph": "X"``) events with microsecond
  timestamps, one ``tid`` per worker thread plus thread-name metadata
  records.

Both writers are atomic (temp file + ``os.replace``), matching the
repo's other on-disk artifacts.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Tuple

from repro.obs.schema import load_schema, validate
from repro.obs.tracer import Span, Tracer

#: Bump when the JSONL line layout changes.
EVENT_SCHEMA_VERSION = 1

_EVENT_SCHEMA: Dict[str, Any] = load_schema("event_schema.json")


def span_to_event(span: Span) -> Dict[str, Any]:
    """One finished span as its JSONL event dict."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "ts": span.start_wall,
        "dur": span.duration,
        "thread": span.thread,
        "error": span.error,
        "attrs": dict(span.attrs),
    }


def trace_header(tracer: Tracer) -> Dict[str, Any]:
    """The header event leading a JSONL trace file."""
    header = {
        "type": "trace",
        "schema": EVENT_SCHEMA_VERSION,
        "trace": tracer.name,
        "created": tracer.created_wall,
        "spans": len(tracer),
    }
    # Distributed identity: present when the run carries cross-process
    # trace context (service submits), absent for plain CLI runs.
    if tracer.traceparent is not None:
        header["traceparent"] = tracer.traceparent
    return header


def validate_event(event: Dict[str, Any]) -> None:
    """Raise when one event line violates the checked-in schema."""
    validate(event, _EVENT_SCHEMA)


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-obs-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace as JSONL; returns the number of span lines."""
    events = [trace_header(tracer)]
    events.extend(span_to_event(span) for span in tracer.spans)
    lines = [json.dumps(event, sort_keys=True) for event in events]
    _atomic_write(path, "\n".join(lines) + "\n")
    return len(events) - 1


def read_jsonl(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a JSONL trace back; returns (header, span events)."""
    with open(path, encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("type") != "trace":
        raise ValueError(f"{path}: first line is not a trace header")
    return header, [json.loads(line) for line in lines[1:]]


def validate_events_file(path: str) -> int:
    """Validate every line of a JSONL trace; returns the span count.

    Beyond per-line schema conformance this checks referential
    integrity: every ``parent`` id must name another span in the file.
    """
    header, events = read_jsonl(path)
    validate_event(header)
    ids = {event["id"] for event in events}
    for event in events:
        validate_event(event)
        parent = event["parent"]
        if parent is not None and parent not in ids:
            raise ValueError(
                f"{path}: span {event['id']} references missing parent "
                f"{parent}")
    if header.get("spans") != len(events):
        raise ValueError(
            f"{path}: header counts {header.get('spans')} spans, "
            f"file has {len(events)}")
    return len(events)


# ---------------------------------------------------------------------------
# Chrome trace format (chrome://tracing, Perfetto)
# ---------------------------------------------------------------------------


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The span tree as a Chrome-trace-format dict.

    Timestamps are microseconds relative to the earliest span so the
    viewer opens at t=0; threads map to stable ``tid``\\ s in order of
    first appearance, each announced with a ``thread_name`` metadata
    event.
    """
    spans = sorted(tracer.spans, key=lambda s: s.span_id)
    origin = min((s.start_wall for s in spans), default=0.0)
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        tid = tids.setdefault(span.thread, len(tids) + 1)
        args: Dict[str, Any] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.error is not None:
            args["error"] = span.error
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start_wall - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    metadata = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": tracer.name}},
    ]
    for thread, tid in tids.items():
        metadata.append({"name": "thread_name", "ph": "M", "pid": 1,
                         "tid": tid, "args": {"name": thread}})
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome trace JSON; returns the duration-event count."""
    payload = to_chrome_trace(tracer)
    _atomic_write(path, json.dumps(payload, sort_keys=True, indent=1))
    return sum(1 for e in payload["traceEvents"] if e["ph"] == "X")


def validate_chrome_trace(payload: Dict[str, Any]) -> int:
    """Structural check of a Chrome trace dict; returns the X count."""
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("chrome trace must be an object with traceEvents")
    count = 0
    for event in payload["traceEvents"]:
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"chrome trace event missing {key!r}: {event}")
        if event["ph"] == "X":
            count += 1
            for key in ("ts", "dur", "tid"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(
                        f"chrome trace X event needs numeric {key!r}: {event}")
    return count


def validate_chrome_trace_file(path: str) -> int:
    """Validate a Chrome trace file; returns the duration-event count."""
    with open(path, encoding="utf-8") as handle:
        return validate_chrome_trace(json.load(handle))
