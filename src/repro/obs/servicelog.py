"""The structured service event log: one JSONL stream for the fleet.

Before this module the serving layer narrated itself with ad-hoc
``print(..., file=sys.stderr)`` lines scattered through ``api.py`` and
``worker.py`` — fine for one terminal, useless for a fleet: you cannot
grep a stderr that three processes interleave, and you certainly
cannot ask it "which runs were reclaimed twice last hour".  This log
replaces them with schema-validated JSONL events
(``servicelog_schema.json``) that every service process appends to the
*same* file.

Design points, in the order they bit:

- **Multi-process appends.**  The API, N workers, and the queue all
  emit into one file.  Each emit opens the file with ``O_APPEND`` and
  writes a single ``write()`` of one newline-terminated line — on
  POSIX, small O_APPEND writes from multiple processes do not
  interleave, so the stream stays line-parseable without a lock
  server.  Keeping the fd open across emits would pin a rotated file;
  open-per-emit costs ~10 µs and makes rotation safe.
- **Rotation.**  When the file exceeds ``max_bytes`` the emitter
  shifts ``service.log.jsonl`` to ``.1`` (and ``.1`` to ``.2``, up to
  ``backups``) via ``os.replace``.  Two processes racing the shift can
  at worst rotate twice — a cosmetic short segment, never data loss,
  because O_APPEND writers re-open by path on every emit.
- **Cheap when unconfigured.**  Library code calls :func:`emit`
  unconditionally; until :func:`configure` points the module at a
  path, an emit is one global load and a None-test — the same
  disabled-cost discipline :mod:`repro.obs.tracer` established, priced
  by ``bench_obs``.
- **Never fatal.**  A telemetry failure (disk full, permission)
  must not take the service down: emit errors are swallowed after
  incrementing the ``servicelog.dropped`` counter, which ``/v1/
  metrics`` then surfaces — the log degrades *visibly*, not silently.

Events are flat dicts: ``schema``/``ts``/``event``/``proc``/``pid``
always, plus whichever optional fields the transition carries
(``run_id``, ``method``/``path``/``status``/``duration`` for HTTP,
``queue_latency``/``exec_latency`` for run completion, ...).  The
checked-in schema is closed (``additionalProperties: false``) so a
typo'd field name fails tests instead of polluting the stream.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from . import schema as _schema
from .metrics import REGISTRY

SERVICELOG_SCHEMA_VERSION = 1

#: Default rotation threshold; ~10k events at typical line sizes.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024
DEFAULT_BACKUPS = 3

#: Processes allowed in the ``proc`` field (mirrors the schema enum).
PROCS = ("api", "worker", "queue", "cli")


class ServiceLog:
    """An append-only, rotating JSONL event log bound to one path."""

    def __init__(self, path: str,
                 proc: str = "cli",
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS,
                 validate: bool = False) -> None:
        if proc not in PROCS:
            raise ValueError(f"proc must be one of {PROCS}, got {proc!r}")
        self.path = path
        self.proc = proc
        self.max_bytes = max_bytes
        self.backups = backups
        self.validate = validate
        self._schema: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event line; never raises (drops are counted)."""
        record: Dict[str, Any] = {
            "schema": SERVICELOG_SCHEMA_VERSION,
            "ts": time.time(),
            "event": event,
            "proc": fields.pop("proc", None) or self.proc,
            "pid": os.getpid(),
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        if self.validate:
            # Opt-in (tests, smoke): full schema check per emit.
            if self._schema is None:
                self._schema = _schema.load_schema("servicelog_schema.json")
            _schema.validate(record, self._schema)
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self._maybe_rotate(len(line))
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            REGISTRY.bump("servicelog.dropped")
        return record

    def _maybe_rotate(self, incoming: int) -> None:
        """Shift the log chain when the active file would overflow."""
        if self.max_bytes <= 0:
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        with self._lock:
            # Re-check under the lock: another thread may have rotated.
            try:
                size = os.path.getsize(self.path)
            except OSError:
                return
            if size + incoming <= self.max_bytes:
                return
            for index in range(self.backups - 1, 0, -1):
                older = f"{self.path}.{index}"
                newer = f"{self.path}.{index + 1}"
                if os.path.exists(older):
                    os.replace(older, newer)
            if self.backups > 0:
                os.replace(self.path, f"{self.path}.1")
            else:
                os.unlink(self.path)
            REGISTRY.bump("servicelog.rotations")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def segments(self) -> List[str]:
        """Existing log files, oldest first (rotated chain then active)."""
        chain = [f"{self.path}.{index}"
                 for index in range(self.backups, 0, -1)]
        chain.append(self.path)
        return [path for path in chain if os.path.exists(path)]

    def read(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """All events oldest-first across the rotation chain.

        ``limit`` keeps only the newest N.  Torn or non-JSON lines
        (possible across a rotation race) are skipped, not fatal.
        """
        events: List[Dict[str, Any]] = []
        for path in self.segments():
            try:
                with open(path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            events.append(json.loads(line))
                        except ValueError:
                            continue
            except OSError:
                continue
        if limit is not None and len(events) > limit:
            events = events[-limit:]
        return events

    def follow(self, poll: float = 0.25,
               stop: Optional[threading.Event] = None
               ) -> Iterator[Dict[str, Any]]:
        """Yield events as they are appended (``tail -f`` semantics).

        Starts at the current end of the active file; survives
        rotation by re-opening when the inode shrinks under us.
        """
        position = 0
        try:
            position = os.path.getsize(self.path)
        except OSError:
            position = 0
        while stop is None or not stop.is_set():
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size < position:  # rotated under us
                position = 0
            if size > position:
                with open(self.path, encoding="utf-8") as handle:
                    handle.seek(position)
                    chunk = handle.read()
                    position = handle.tell()
                buffered = io.StringIO(chunk)
                for line in buffered:
                    if not line.endswith("\n"):
                        # Torn tail: rewind so the next poll rereads it.
                        position -= len(line.encode("utf-8"))
                        break
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError:
                        continue
            else:
                time.sleep(poll)


def validate_log_file(path: str) -> int:
    """Validate every line of one segment against the schema.

    Returns the number of events checked; raises
    :class:`~repro.obs.schema.SchemaError` on the first violation.
    """
    loaded = _schema.load_schema("servicelog_schema.json")
    count = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            _schema.validate(record, loaded, path=f"$[line {lineno}]")
            count += 1
    return count


# ----------------------------------------------------------------------
# module-global log, mirroring the tracer's enable/disable discipline
# ----------------------------------------------------------------------

_ACTIVE: Optional[ServiceLog] = None


def configure(path: str, proc: str,
              max_bytes: int = DEFAULT_MAX_BYTES,
              backups: int = DEFAULT_BACKUPS,
              validate: bool = False) -> ServiceLog:
    """Point the process-wide log at ``path``; returns it."""
    global _ACTIVE
    _ACTIVE = ServiceLog(path, proc=proc, max_bytes=max_bytes,
                         backups=backups, validate=validate)
    return _ACTIVE


def unconfigure() -> None:
    """Detach the process-wide log (tests; emit becomes a no-op)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[ServiceLog]:
    """The process-wide log, or None when unconfigured."""
    return _ACTIVE


def emit(event: str, **fields: Any) -> Optional[Dict[str, Any]]:
    """Emit into the process-wide log; no-op when unconfigured.

    This is the call sites' entry point: one global load and a
    None-test when telemetry is off, so sprinkling emits through the
    serving layer costs nothing for library users who never start a
    service.
    """
    log = _ACTIVE
    if log is None:
        return None
    return log.emit(event, **fields)


def default_path(data_dir: str) -> str:
    """Where a service rooted at ``data_dir`` keeps its event log."""
    return os.path.join(data_dir, "service.log.jsonl")
