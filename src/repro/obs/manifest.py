"""Per-run manifests: what ran, over what, in which modes, to what end.

A manifest is the run-level complement of a span trace: one JSON
document capturing everything needed to explain *why two runs differ*
— corpus content hashes, the four engine-mode knobs
(``REPRO_SOLVER``/``REPRO_LEX``/``REPRO_PARSER``/``REPRO_LATTICE``),
the job count, the counter snapshot, wall time, and a digest of the
dependency report.  ``repro-runs diff a.json b.json`` reads two
manifests and prints exactly what differed; the digest comparison is
what turns "the outputs look the same" into a checked fact.

Manifests are written atomically and validate against the checked-in
``manifest_schema.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import REGISTRY
from repro.obs.schema import load_schema, validate

#: Bump when the manifest layout changes.
#: v2: optional ``campaign`` section (sampler identity, shard count and
#: timings, snapshot hit/miss ratio, streaming-campaign digest).
#: v3: optional ``run`` section (service run-record linkage: run id ==
#: content request key, executing worker, claim attempt) written by
#: :mod:`repro.serve.worker` so a manifest can be traced back to the
#: queue row it records.
#: v4: the ``run`` section gains the run timeline (queued/claimed/
#: started/finished epoch stamps, derived queue latency) and the
#: cross-process ``traceparent``; all informational, so v3 manifests
#: keep diffing as equivalent against v4 ones.
MANIFEST_SCHEMA_VERSION = 4

_MANIFEST_SCHEMA: Dict[str, Any] = load_schema("manifest_schema.json")


def report_digest(keys: Iterable[str]) -> str:
    """Order-independent sha256 over a report's dependency keys.

    Sorting first makes the digest a property of the dependency *set*,
    so any two runs extracting the same dependencies — sequential or
    parallel, dense or sparse — produce the same digest.
    """
    digest = hashlib.sha256()
    for key in sorted(keys):
        digest.update(key.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def engine_modes() -> Dict[str, str]:
    """The resolved engine-mode knobs of this process."""
    # Imported lazily: repro.perf imports repro.obs submodules, so the
    # reverse module-level import would cycle.
    from repro.perf import modes

    return modes.resolve_modes()


def corpus_hashes() -> Dict[str, str]:
    """sha256 of every corpus translation unit's source text."""
    from repro.corpus.loader import UNIT_COMPONENTS, corpus_path

    out: Dict[str, str] = {}
    for filename in sorted(UNIT_COMPONENTS):
        with open(corpus_path(filename), "rb") as handle:
            out[filename] = hashlib.sha256(handle.read()).hexdigest()
    return out


def build_manifest(tool: str,
                   wall_seconds: float,
                   jobs: int = 1,
                   argv: Optional[List[str]] = None,
                   report_keys: Optional[Iterable[str]] = None,
                   report_summary: Optional[str] = None,
                   trace: Optional[str] = None,
                   engine_overrides: Optional[Dict[str, str]] = None,
                   campaign: Optional[Dict[str, Any]] = None,
                   ) -> Dict[str, Any]:
    """Assemble the manifest dict for one finished run.

    ``engine_overrides`` records knobs the run pinned explicitly (e.g.
    a ``--solver`` flag) that the environment-based resolution below
    would miss.  ``campaign`` (sampled-campaign runs only) records the
    sampler identity, shard layout and timings, snapshot-cache traffic,
    and the streaming campaign digest — the fields ``repro-runs diff``
    needs to compare two campaign runs.
    """
    keys = list(report_keys) if report_keys is not None else None
    engine = engine_modes()
    for knob, mode in (engine_overrides or {}).items():
        if mode is not None:
            engine[knob] = mode
    created = time.time()
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "tool": tool,
        "created": created,
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S",
                                     time.localtime(created)),
        "wall_seconds": wall_seconds,
        "jobs": jobs,
        "argv": list(argv or []),
        "engine": engine,
        "corpus": corpus_hashes(),
        "counters": {k: v for k, v in sorted(REGISTRY.counters().items())},
        "trace": trace,
        "report": {
            "digest": report_digest(keys) if keys is not None else None,
            "count": len(keys) if keys is not None else None,
            "summary": report_summary,
        },
    }
    if campaign is not None:
        manifest["campaign"] = dict(campaign)
    return manifest


def validate_manifest(manifest: Dict[str, Any]) -> None:
    """Raise when a manifest violates the checked-in schema."""
    validate(manifest, _MANIFEST_SCHEMA)


def write_manifest(manifest: Dict[str, Any], path: str) -> None:
    """Atomically persist a (validated) manifest."""
    validate_manifest(manifest)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-manifest-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def load_manifest(path: str) -> Dict[str, Any]:
    """Read and validate a manifest file."""
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    validate_manifest(manifest)
    return manifest


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------


def diff_manifests(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Human-readable lines explaining how run ``b`` differs from ``a``.

    Returns an empty list only when the two runs are equivalent in
    every way that can change results (tool, engine modes, corpus,
    report digest/count); informational drift (wall time, counters)
    is reported but prefixed with ``~`` so callers can filter it.
    """
    lines: List[str] = []

    if a.get("tool") != b.get("tool"):
        lines.append(f"tool: {a.get('tool')} -> {b.get('tool')}")

    ea, eb = a.get("engine", {}), b.get("engine", {})
    for knob in sorted(set(ea) | set(eb)):
        if ea.get(knob) != eb.get(knob):
            lines.append(f"engine.{knob}: {ea.get(knob)} -> {eb.get(knob)}")

    if a.get("jobs") != b.get("jobs"):
        lines.append(f"jobs: {a.get('jobs')} -> {b.get('jobs')}")

    ca, cb = a.get("corpus", {}), b.get("corpus", {})
    for unit in sorted(set(ca) | set(cb)):
        ha, hb = ca.get(unit), cb.get(unit)
        if ha == hb:
            continue
        if ha is None:
            lines.append(f"corpus.{unit}: added ({hb[:12]})")
        elif hb is None:
            lines.append(f"corpus.{unit}: removed (was {ha[:12]})")
        else:
            lines.append(f"corpus.{unit}: content changed "
                         f"({ha[:12]} -> {hb[:12]})")

    ra, rb = a.get("report", {}), b.get("report", {})
    if ra.get("digest") != rb.get("digest"):
        lines.append(f"report.digest: {_short(ra.get('digest'))} -> "
                     f"{_short(rb.get('digest'))}")
    if ra.get("count") != rb.get("count"):
        lines.append(f"report.count: {ra.get('count')} -> {rb.get('count')}")

    # Campaign identity: sampler/seed/budget/total/digest changes mean
    # the two runs drove different campaigns.  Shard layout, timings,
    # and cache traffic are execution shape, not results — a sharded
    # run is byte-identical to an unsharded one — so they diff as
    # informational (~) drift.
    ga, gb = a.get("campaign") or {}, b.get("campaign") or {}
    if ga or gb:
        for field in ("sampler", "seed", "budget", "total", "digest"):
            if ga.get(field) != gb.get(field):
                va, vb = ga.get(field), gb.get(field)
                if field == "digest":
                    va, vb = _short(va), _short(vb)
                lines.append(f"campaign.{field}: {va} -> {vb}")
        for field in ("shards", "snapshot_hits", "snapshot_misses",
                      "infeasible_skipped"):
            if ga.get(field) != gb.get(field):
                lines.append(f"~campaign.{field}: {ga.get(field)} -> "
                             f"{gb.get(field)}")
        ratio_a, ratio_b = ga.get("snapshot_hit_ratio"), \
            gb.get("snapshot_hit_ratio")
        if ratio_a != ratio_b and (ratio_a is not None
                                   or ratio_b is not None):
            lines.append(f"~campaign.snapshot_hit_ratio: "
                         f"{_ratio(ratio_a)} -> {_ratio(ratio_b)}")
        sa, sb = ga.get("shard_seconds") or [], gb.get("shard_seconds") or []
        if (sa or sb) and sa != sb:
            lines.append(f"~campaign.shard_seconds: {_span(sa)} -> "
                         f"{_span(sb)}")

    # Service run-record linkage: which queue row / worker produced a
    # manifest is execution provenance, not a result — a service run
    # and a direct CLI run of the same request must diff as equivalent
    # (the CI service smoke asserts exactly that), so every ``run``
    # field is informational (~) drift.
    ua, ub = a.get("run") or {}, b.get("run") or {}
    if ua or ub:
        for field in ("id", "request_key", "worker", "attempt",
                      "traceparent"):
            if ua.get(field) != ub.get(field):
                va, vb = ua.get(field), ub.get(field)
                if field in ("id", "request_key"):
                    va, vb = _short(va), _short(vb)
                lines.append(f"~run.{field}: {va} -> {vb}")
        # The run timeline (v4): epoch stamps and derived queue
        # latency.  Two executions always have different clocks, so
        # all of it is informational drift by definition.
        for field in ("queued", "claimed", "started", "finished"):
            if ua.get(field) != ub.get(field):
                lines.append(f"~run.{field}: {_stamp(ua.get(field))} -> "
                             f"{_stamp(ub.get(field))}")
        la, lb = ua.get("queue_latency"), ub.get("queue_latency")
        if la != lb and (la is not None or lb is not None):
            lines.append(f"~run.queue_latency: {_latency(la)} -> "
                         f"{_latency(lb)}")

    # Informational drift: never makes the runs "different", but often
    # explains a perf question at a glance.
    wa, wb = a.get("wall_seconds"), b.get("wall_seconds")
    if isinstance(wa, (int, float)) and isinstance(wb, (int, float)) and wa:
        lines.append(f"~wall_seconds: {wa:.4f} -> {wb:.4f} "
                     f"({wb / wa:.2f}x)")
    ka, kb = a.get("counters", {}), b.get("counters", {})
    for counter in sorted(set(ka) | set(kb)):
        va, vb = ka.get(counter, 0), kb.get(counter, 0)
        if va != vb:
            lines.append(f"~counters.{counter}: {va} -> {vb}")

    return lines


def manifests_equivalent(diff: List[str]) -> bool:
    """Whether a diff contains only informational (``~``) drift."""
    return all(line.startswith("~") for line in diff)


def render_diff(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """The full diff report ``repro-runs diff`` prints."""
    diff = diff_manifests(a, b)
    if manifests_equivalent(diff):
        ra = a.get("report", {})
        head = ("runs are equivalent: same engine modes, corpus, and "
                f"report ({ra.get('count')} dependencies, digest "
                f"{_short(ra.get('digest'))})")
    else:
        head = "runs differ:"
    body = "\n".join(f"  {line}" for line in diff)
    return head + ("\n" + body if body else "")


def _short(digest: Optional[str]) -> str:
    return digest[:12] if isinstance(digest, str) else str(digest)


def _ratio(value: Optional[float]) -> str:
    return f"{value:.3f}" if isinstance(value, (int, float)) else str(value)


def _span(seconds: List[float]) -> str:
    """Compact shard-timing summary: count and min..max."""
    if not seconds:
        return "[]"
    return f"[{len(seconds)}x {min(seconds):.3f}..{max(seconds):.3f}s]"


def _stamp(epoch: Optional[float]) -> str:
    """Epoch seconds as a local wall-clock timestamp (or the raw value)."""
    if not isinstance(epoch, (int, float)):
        return str(epoch)
    return time.strftime("%H:%M:%S", time.localtime(epoch)) \
        + f".{int(epoch * 1000) % 1000:03d}"


def _latency(seconds: Optional[float]) -> str:
    return f"{seconds:.3f}s" if isinstance(seconds, (int, float)) \
        else str(seconds)
