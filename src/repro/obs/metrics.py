"""The metrics registry: phase timings and counters, one store.

Historically :mod:`repro.perf.timers` kept three module-level dicts
(stats, counters, counter sources).  The observability layer needs the
same numbers — run manifests snapshot them, span attrs reference them —
so the storage moved here and ``repro.perf.timers`` became a thin view
over the process-wide :data:`REGISTRY`.  ``--profile`` output is
unchanged; it now renders this registry.

Two long-standing defects of the old module are fixed here:

- **counter-source registration is keyed** (idempotent): registering
  the same source twice — easy to do from a module that a test reloads
  or from two subsystems sharing a helper — replaces the previous
  entry instead of double-counting every snapshot;
- **source iteration is race-free**: :meth:`MetricsRegistry.counters`
  snapshots the source table under the lock before calling out, so a
  concurrent registration can never resize the dict mid-iteration.

This module deliberately imports nothing from :mod:`repro.perf` or
:mod:`repro.analysis` — it sits at the bottom of the observability
stack and everything else layers on top.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass
class PhaseStat:
    """Accumulated wall time of one named phase."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Mean wall time per call, in milliseconds."""
        if not self.calls:
            return 0.0
        return self.seconds / self.calls * 1e3


#: A counter source: a snapshot callable plus an optional reset hook.
CounterSource = Tuple[Callable[[], Dict[str, int]], Optional[Callable[[], None]]]


class MetricsRegistry:
    """Thread-safe store of phase timings, counters, and counter sources."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[str, PhaseStat] = {}
        self._counters: Dict[str, int] = {}
        self._sources: Dict[str, CounterSource] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_phase(self, phase: str, seconds: float) -> None:
        """Fold one timed call into the named phase."""
        with self._lock:
            stat = self._stats.setdefault(phase, PhaseStat())
            stat.calls += 1
            stat.seconds += seconds

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment the named counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def register_source(self, name: str,
                        source: Callable[[], Dict[str, int]],
                        reset: Optional[Callable[[], None]] = None) -> None:
        """Merge ``source()`` into every :meth:`counters` snapshot.

        Registration is keyed by ``name``: registering the same name
        again *replaces* the previous source, so repeated module
        imports or re-initialisation never double-count.  ``reset``,
        when given, is invoked by :meth:`reset` so external tallies
        drop with everything else.
        """
        with self._lock:
            self._sources[name] = (source, reset)

    def unregister_source(self, name: str) -> bool:
        """Remove a registered source; True when it existed."""
        with self._lock:
            return self._sources.pop(name, None) is not None

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, PhaseStat]:
        """Snapshot of the phase timings."""
        with self._lock:
            return {name: PhaseStat(s.calls, s.seconds)
                    for name, s in self._stats.items()}

    def counters(self) -> Dict[str, int]:
        """Snapshot of the counters (registered sources merged in).

        The source table is copied under the lock; the sources run
        outside it (they keep their own, often lock-free, tallies).
        """
        with self._lock:
            out = dict(self._counters)
            sources = list(self._sources.values())
        for source, _reset in sources:
            out.update(source())
        return out

    def reset(self) -> None:
        """Drop all timings and counters; reset every source."""
        with self._lock:
            self._stats.clear()
            self._counters.clear()
            sources = list(self._sources.values())
        for _source, reset in sources:
            if reset is not None:
                reset()


#: The process-wide registry every subsystem records into.
REGISTRY = MetricsRegistry()
