"""The metrics registry: phase timings and counters, one store.

Historically :mod:`repro.perf.timers` kept three module-level dicts
(stats, counters, counter sources).  The observability layer needs the
same numbers — run manifests snapshot them, span attrs reference them —
so the storage moved here and ``repro.perf.timers`` became a thin view
over the process-wide :data:`REGISTRY`.  ``--profile`` output is
unchanged; it now renders this registry.

Two long-standing defects of the old module are fixed here:

- **counter-source registration is keyed** (idempotent): registering
  the same source twice — easy to do from a module that a test reloads
  or from two subsystems sharing a helper — replaces the previous
  entry instead of double-counting every snapshot;
- **source iteration is race-free**: :meth:`MetricsRegistry.counters`
  snapshots the source table under the lock before calling out, so a
  concurrent registration can never resize the dict mid-iteration.

This module deliberately imports nothing from :mod:`repro.perf` or
:mod:`repro.analysis` — it sits at the bottom of the observability
stack and everything else layers on top.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class PhaseStat:
    """Accumulated wall time of one named phase."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Mean wall time per call, in milliseconds."""
        if not self.calls:
            return 0.0
        return self.seconds / self.calls * 1e3


#: A counter source: a snapshot callable plus an optional reset hook.
CounterSource = Tuple[Callable[[], Dict[str, int]], Optional[Callable[[], None]]]


class Histogram:
    """Bounded log-bucket histogram of nonnegative samples.

    Buckets are log\\ :sub:`2`-spaced upper bounds ``base * 2**i`` —
    with the defaults, 1 ms up to ~524 s — so one fixed, tiny array
    (``buckets + 1`` ints, the last being the overflow bucket) covers
    six decades of latency with ~2x relative resolution.  The layout is
    deliberately the Prometheus histogram shape: cumulative
    ``bucket(le=bound)`` counts plus ``sum`` and ``count``, which is
    what :mod:`repro.obs.prom` renders on ``GET /v1/metrics``.

    Memory and cost are O(buckets) regardless of sample volume: an
    ``observe`` is a bit-length bucket index plus two adds, so the
    fleet-telemetry layer can observe every run and HTTP request
    without a reservoir or decay machinery.  Thread safety is the
    caller's job — :class:`MetricsRegistry` observes under its lock.
    """

    __slots__ = ("base", "bounds", "counts", "count", "sum",
                 "min", "max")

    def __init__(self, base: float = 0.001, buckets: int = 20) -> None:
        if base <= 0 or buckets < 1:
            raise ValueError("histogram needs base > 0 and buckets >= 1")
        self.base = float(base)
        self.bounds: Tuple[float, ...] = tuple(
            base * (1 << i) for i in range(buckets))
        #: per-bucket (non-cumulative) counts; [-1] is the overflow.
        self.counts: List[int] = [0] * (buckets + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Fold one sample in (negatives clamp to the first bucket)."""
        value = float(value)
        if value < 0.0:
            value = 0.0
        # Smallest i with value <= base * 2**i, via integer bit length:
        # ratio in (2**(i-1), 2**i] must land in bucket i.
        ratio = value / self.base
        if ratio <= 1.0:
            index = 0
        else:
            whole = int(ratio)
            index = whole.bit_length() - (1 if whole & (whole - 1) == 0
                                          and whole == ratio else 0)
            if index >= len(self.bounds):
                index = len(self.bounds)  # overflow bucket
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-shaped ``(le bound, cumulative count)`` pairs.

        The final pair is ``(inf, count)`` — the ``+Inf`` bucket.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile: the upper bound of the covering bucket.

        Returns 0.0 on an empty histogram; the overflow bucket reports
        the largest observed sample (the only honest bound we have).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            if running >= rank:
                return bound
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical buckets into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, bucket in enumerate(other.counts):
            self.counts[index] += bucket
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "Histogram":
        clone = Histogram.__new__(Histogram)
        clone.base = self.base
        clone.bounds = self.bounds
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, sum={self.sum:.6f}, "
                f"buckets={len(self.bounds)})")


class MetricsRegistry:
    """Thread-safe store of phase timings, counters, and counter sources."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[str, PhaseStat] = {}
        self._counters: Dict[str, int] = {}
        self._sources: Dict[str, CounterSource] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_phase(self, phase: str, seconds: float) -> None:
        """Fold one timed call into the named phase."""
        with self._lock:
            stat = self._stats.setdefault(phase, PhaseStat())
            stat.calls += 1
            stat.seconds += seconds

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment the named counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into the named histogram (created on first use)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to an instantaneous value.

        Counters only go up; a gauge is a level — waiters currently
        blocked, bytes currently cached — that rises and falls and is
        rendered as a Prometheus ``gauge`` rather than ``counter``.
        """
        with self._lock:
            self._gauges[name] = float(value)

    def register_source(self, name: str,
                        source: Callable[[], Dict[str, int]],
                        reset: Optional[Callable[[], None]] = None) -> None:
        """Merge ``source()`` into every :meth:`counters` snapshot.

        Registration is keyed by ``name``: registering the same name
        again *replaces* the previous source, so repeated module
        imports or re-initialisation never double-count.  ``reset``,
        when given, is invoked by :meth:`reset` so external tallies
        drop with everything else.
        """
        with self._lock:
            self._sources[name] = (source, reset)

    def unregister_source(self, name: str) -> bool:
        """Remove a registered source; True when it existed."""
        with self._lock:
            return self._sources.pop(name, None) is not None

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, PhaseStat]:
        """Snapshot of the phase timings."""
        with self._lock:
            return {name: PhaseStat(s.calls, s.seconds)
                    for name, s in self._stats.items()}

    def counters(self) -> Dict[str, int]:
        """Snapshot of the counters (registered sources merged in).

        The source table is copied under the lock; the sources run
        outside it (they keep their own, often lock-free, tallies).
        """
        with self._lock:
            out = dict(self._counters)
            sources = list(self._sources.values())
        for source, _reset in sources:
            out.update(source())
        return out

    def histograms(self) -> Dict[str, Histogram]:
        """Snapshot (deep copies) of every histogram."""
        with self._lock:
            return {name: hist.copy()
                    for name, hist in self._histograms.items()}

    def gauges(self) -> Dict[str, float]:
        """Snapshot of the gauges."""
        with self._lock:
            return dict(self._gauges)

    def reset(self) -> None:
        """Drop all timings, counters, histograms, and gauges; reset
        every source."""
        with self._lock:
            self._stats.clear()
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()
            sources = list(self._sources.values())
        for _source, reset in sources:
            if reset is not None:
                reset()


#: The process-wide registry every subsystem records into.
REGISTRY = MetricsRegistry()
