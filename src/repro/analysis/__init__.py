"""Multi-level configuration-dependency extraction (the paper's core).

Pipeline (paper §4.1):

1. :mod:`repro.analysis.sources` declares the initial configuration
   variables per component (the paper's manual annotations).
2. :mod:`repro.analysis.taint` propagates taint along the data-flow
   paths of each pre-selected function, keeping the taint set, the
   taint trace, and the multi-parameter map.
3. :mod:`repro.analysis.constraints` turns guarded comparisons into
   Self-Dependencies and Cross-Parameter Dependencies.
4. :mod:`repro.analysis.bridge` joins metadata-field stores and loads
   across components into Cross-Component Dependencies.
5. :mod:`repro.analysis.extractor` drives the four usage scenarios and
   produces the Table-5 report; :mod:`repro.analysis.jsonio` persists
   dependencies as JSON.
"""

from repro.analysis.model import (
    Category,
    SubKind,
    ParamRef,
    Dependency,
)
from repro.analysis.taint import TaintEngine, TaintState
from repro.analysis.extractor import Extractor, ExtractionReport, SCENARIOS

__all__ = [
    "Category",
    "SubKind",
    "ParamRef",
    "Dependency",
    "TaintEngine",
    "TaintState",
    "Extractor",
    "ExtractionReport",
    "SCENARIOS",
]
