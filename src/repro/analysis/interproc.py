"""Inter-procedural taint analysis — the paper's §6 future work.

The HotStorage prototype "can handle intra-procedure taint analysis but
not inter-procedure analysis", which is why Table 5 extracts no
cross-component dependencies for the create/mount scenarios and only a
handful overall.  This module implements the anticipated extension as a
*unit-level* fixpoint on top of the unchanged intra-procedural engine:

1. **Store/load matching** — taint stored into a struct field anywhere
   in a translation unit flows to every load of that field in the unit
   (how the kernel's `ext4_sb_info` copies carry `ext2_super_block`
   taint from ``ext4_load_super`` into ``ext4_fill_super``).
2. **Call summaries** — a call to a unit-local function propagates
   argument taint into the callee's parameters and the callee's return
   taint back to the call site (context-insensitive).

Everything stays flow-insensitive, so the analysis inherits the
prototype's imprecision characteristics; it simply *sees further*.  As
the paper predicts, the extra reach surfaces additional CCDs —
including the dax/block-size and data=journal/has_journal mount
dependencies the intra-procedural prototype misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.bridge import ComponentSummary, MetadataBridge
from repro.analysis.constraints import derive_constraints
from repro.analysis.extractor import (
    ExtractionReport,
    ScenarioResult,
    ScenarioSpec,
    _dedupe,
)
from repro.analysis.model import Dependency
from repro.analysis.sources import SOURCES_BY_UNIT, ComponentSources
from repro.analysis.taint import Label, TaintEngine, TaintState
from repro.corpus.loader import CorpusUnit, load_unit
from repro.lang.cfg import build_cfg
from repro.lang.ir import CallInstr, Ret
from repro.obs.tracer import span
from repro.perf import resolve_jobs, run_ordered, timed

#: Upper bound on fixpoint rounds (label sets are finite; this is a
#: safety net, not a tuning knob).
MAX_ROUNDS = 12


@dataclass
class UnitAnalysis:
    """Inter-procedural analysis of one translation unit.

    ``jobs`` fans the per-function engines of each fixpoint round out
    across threads; the summary updates between rounds stay sequential
    (they fold over every function's state), so results are identical
    to a sequential run.
    """

    unit: CorpusUnit
    sources: ComponentSources
    jobs: int = 1
    solver: Optional[str] = None
    states: Dict[str, TaintState] = dc_field(default_factory=dict)
    rounds: int = 0

    def run(self) -> Dict[str, TaintState]:
        """Fixpoint over store/load matching and call summaries."""
        module = self.unit.module
        param_taint: Dict[str, Dict[str, Set[Label]]] = {
            name: {} for name in module.functions
        }
        field_inj: Dict[Tuple[str, str], Set[Label]] = {}
        call_ret: Dict[str, Set[Label]] = {}

        for self.rounds in range(1, MAX_ROUNDS + 1):
            states = self._analyze_all(param_taint, field_inj, call_ret)
            changed = False
            changed |= self._update_field_summaries(states, field_inj)
            changed |= self._update_call_summaries(states, param_taint, call_ret)
            self.states = states
            if not changed:
                break
        return self.states

    # ------------------------------------------------------------------
    # one round
    # ------------------------------------------------------------------

    def _analyze_all(self, param_taint, field_inj, call_ret) -> Dict[str, TaintState]:
        frozen_inj = {k: frozenset(v) for k, v in field_inj.items()}
        frozen_ret = {k: frozenset(v) for k, v in call_ret.items() if v}

        def run_one(item: Tuple[str, object]) -> Tuple[str, TaintState]:
            name, func = item
            initial = {
                var: frozenset(labels)
                for var, labels in param_taint[name].items()
                if labels
            }
            engine = TaintEngine(
                func, self.sources, self.unit.component,
                initial_taint=initial,
                field_injections=frozen_inj,
                call_returns=frozen_ret,
                solver=self.solver,
            )
            return name, engine.run()

        with span("interproc.round", unit=self.unit.filename,
                  round=self.rounds), timed("interproc.round"):
            results = run_ordered(self.jobs, run_one,
                                  list(self.unit.module.functions.items()))
        return dict(results)

    @staticmethod
    def _update_field_summaries(states: Dict[str, TaintState],
                                field_inj: Dict[Tuple[str, str], Set[Label]]) -> bool:
        changed = False
        for state in states.values():
            for write in state.field_writes:
                key = (write.struct, write.field)
                bucket = field_inj.setdefault(key, set())
                before = len(bucket)
                bucket |= write.labels
                changed |= len(bucket) != before
        return changed

    def _update_call_summaries(self, states: Dict[str, TaintState],
                               param_taint: Dict[str, Dict[str, Set[Label]]],
                               call_ret: Dict[str, Set[Label]]) -> bool:
        module = self.unit.module
        changed = False
        # return-taint summaries
        for name, func in module.functions.items():
            state = states[name]
            bucket = call_ret.setdefault(name, set())
            before = len(bucket)
            for instr in func.instructions():
                if isinstance(instr, Ret) and instr.value is not None:
                    bucket |= state.labels(instr.value)
            changed |= len(bucket) != before
        # argument-to-parameter propagation
        for name, func in module.functions.items():
            state = states[name]
            for instr in func.instructions():
                if not isinstance(instr, CallInstr):
                    continue
                callee = module.functions.get(instr.func)
                if callee is None:
                    continue
                for param_name, arg in zip(callee.params, instr.args):
                    labels = state.labels(arg)
                    if not labels:
                        continue
                    bucket = param_taint[instr.func].setdefault(param_name, set())
                    before = len(bucket)
                    bucket |= labels
                    changed |= len(bucket) != before
        return changed


def full_pipeline_spec() -> ScenarioSpec:
    """All corpus units, every function, in pipeline (stage) order."""
    order = ("mke2fs.c", "mount.c", "ext4_super.c", "e4defrag.c",
             "libext2fs.c", "resize2fs.c", "e2fsck.c")
    selected = []
    for filename in order:
        unit = load_unit(filename)
        selected.append((filename, tuple(unit.module.functions)))
    return ScenarioSpec(
        name="full pipeline (inter-procedural)",
        key_utilities=("mke2fs", "mount", "ext4", "e4defrag",
                       "resize2fs", "e2fsck"),
        selected=tuple(selected),
    )


class InterproceduralExtractor:
    """Scenario extraction with the inter-procedural engine.

    ``jobs`` fans out both the per-unit fixpoint engines and the
    scenario loop; merge order mirrors the sequential loops, so output
    is byte-identical to ``jobs=1``.
    """

    def __init__(self, scenarios: Optional[Sequence[ScenarioSpec]] = None,
                 jobs: Optional[int] = None,
                 solver: Optional[str] = None) -> None:
        self.scenarios = tuple(scenarios) if scenarios else (full_pipeline_spec(),)
        self.jobs = resolve_jobs(jobs)
        self.solver = solver

    def extract_scenario(self, spec: ScenarioSpec) -> ScenarioResult:
        """Extract one scenario with the inter-procedural engine."""
        deps: List[Dependency] = []
        summaries: List[ComponentSummary] = []
        for filename, functions in spec.selected:
            unit = load_unit(filename)
            sources = SOURCES_BY_UNIT[filename]
            states = UnitAnalysis(unit, sources, jobs=self.jobs,
                                  solver=self.solver).run()

            def derive_one(fn_name: str):
                func = unit.module.function(fn_name)
                state = states[fn_name]
                findings = derive_constraints(
                    func, build_cfg(func), state, sources,
                    unit.component, filename,
                )
                return state, findings

            derived = run_ordered(self.jobs, derive_one, functions)
            summary = ComponentSummary(unit.component, filename)
            for state, findings in derived:
                deps.extend(findings.dependencies)
                summary.field_writes.extend(state.field_writes)
                summary.branch_uses.extend(findings.branch_uses)
            summaries.append(summary)
        deps.extend(MetadataBridge(summaries).join())
        return ScenarioResult(spec, _dedupe(deps))

    def extract_all(self) -> ExtractionReport:
        """Extract every configured scenario plus the union."""
        results = run_ordered(self.jobs, self.extract_scenario, self.scenarios)
        union: List[Dependency] = []
        for result in results:
            union.extend(result.dependencies)
        return ExtractionReport(results, _dedupe(union))


def extract_interprocedural(jobs: Optional[int] = None,
                            solver: Optional[str] = None) -> ExtractionReport:
    """Run the full-pipeline inter-procedural extraction."""
    return InterproceduralExtractor(jobs=jobs, solver=solver).extract_all()
