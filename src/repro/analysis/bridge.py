"""Cross-component dependency extraction via shared metadata (paper §4.1).

The key observation of the paper: all components access the FS metadata
structures, so the shared superblock bridges parameters of different
components.  This pass joins field *stores* from an earlier-stage
component with field *loads* (that influence branches) in a later-stage
component:

- a masked feature-word load joins with the store that set that feature
  bit (matching on the feature name),
- a plain field load joins with any parameter-tainted store of the same
  field.

Joins are classified as CCD control (a boolean reader parameter gated
against a feature bit on an error path) or CCD behavioral (everything
else the reader's control flow depends on).

Known imprecision, kept deliberately (it produces the paper's CCD false
positive): the join ignores *kills* — a reader that first overwrites a
field and then loads it back still joins with the original writer.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.constraints import BranchUse
from repro.analysis.model import (
    Dependency,
    Evidence,
    ParamRef,
    SubKind,
    make_constraint,
)
from repro.analysis.sources import BRIDGE_STRUCTS
from repro.analysis.taint import FieldTaint, FieldWrite


@dataclass
class ComponentSummary:
    """Per-component analysis facts the bridge consumes."""

    component: str
    filename: str
    field_writes: List[FieldWrite] = dc_field(default_factory=list)
    branch_uses: List[BranchUse] = dc_field(default_factory=list)


def _flag_kind(component: str, name: str) -> bool:
    """Whether a parameter is boolean (controls CCD control vs behavioral)."""
    from repro.ecosystem.params import ParamKind, find_param

    try:
        return find_param(component, name).kind is ParamKind.FLAG
    except KeyError:
        return False


class MetadataBridge:
    """Join writes and reads across the components of one scenario."""

    def __init__(self, summaries: Sequence[ComponentSummary]) -> None:
        """``summaries`` must be in pipeline (stage) order."""
        self.summaries = list(summaries)

    def join(self) -> List[Dependency]:
        """Join field writes to later-stage reads; returns the CCDs."""
        deps: List[Dependency] = []
        for reader_idx, reader in enumerate(self.summaries):
            writers = self.summaries[:reader_idx]
            if not writers:
                continue
            for use in reader.branch_uses:
                deps.extend(self._join_branch(reader, writers, use))
        return _dedupe(deps)

    # ------------------------------------------------------------------
    # one branch
    # ------------------------------------------------------------------

    def _join_branch(self, reader: ComponentSummary,
                     writers: Sequence[ComponentSummary],
                     use: BranchUse) -> List[Dependency]:
        out: List[Dependency] = []
        for ft in use.fields:
            if ft.struct not in BRIDGE_STRUCTS:
                continue
            for writer in writers:
                if writer.component == reader.component:
                    continue
                # Reader-side parameters: everything in the guard that
                # does not belong to the writer.  (The kernel unit
                # guards mount-stage parameters, so the filter is
                # writer-relative, not unit-relative.)
                reader_params = frozenset(
                    p for p in use.params if p.component != writer.component
                )
                for writer_param in self._matching_writers(writer, ft):
                    dep = self._classify(reader, use, ft, writer_param,
                                         reader_params)
                    if dep is not None:
                        out.append(dep)
        return out

    @staticmethod
    def _matching_writers(writer: ComponentSummary,
                          ft: FieldTaint) -> List[ParamRef]:
        """Writer parameters whose stores this load observes."""
        matched: List[ParamRef] = []
        for write in writer.field_writes:
            if write.field != ft.field or write.struct != ft.struct:
                continue
            for label in write.labels:
                if not isinstance(label, ParamRef):
                    continue
                if label.component != writer.component:
                    continue
                if ft.feature is not None and label.name != ft.feature:
                    continue
                matched.append(label)
        return matched

    def _classify(self, reader: ComponentSummary, use: BranchUse,
                  ft: FieldTaint, writer_param: ParamRef,
                  reader_params: FrozenSet[ParamRef]) -> Optional[Dependency]:
        evidence = Evidence(reader.filename, use.function, use.line)
        if (
            use.error_guard
            and ft.feature is not None
            and len(reader_params) == 1
            and _flag_kind(next(iter(reader_params)).component,
                           next(iter(reader_params)).name)
        ):
            reader_param = next(iter(reader_params))
            enabled = use.feature_enabled_in_violation.get(ft, True)
            relation = "conflicts" if enabled else "requires"
            return Dependency(
                kind=SubKind.CCD_CONTROL,
                params=(reader_param, writer_param),
                constraint=make_constraint(relation=relation),
                bridge_field=ft.field,
                evidence=evidence,
            )
        params: Tuple[ParamRef, ...]
        if reader_params:
            params = tuple(sorted(reader_params)) + (writer_param,)
        else:
            params = (ParamRef(reader.component, "*"), writer_param)
        if writer_param in params[:-1]:
            return None
        return Dependency(
            kind=SubKind.CCD_BEHAVIORAL,
            params=params,
            constraint=make_constraint(effect="guards-behaviour"),
            bridge_field=ft.field,
            evidence=evidence,
        )


def _dedupe(deps: List[Dependency]) -> List[Dependency]:
    seen = set()
    out = []
    for dep in deps:
        key = dep.key()
        if key in seen:
            continue
        seen.add(key)
        out.append(dep)
    return out
