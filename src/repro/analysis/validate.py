"""Differential validation: extracted dependencies vs. concrete execution.

The static analyzer *claims* constraints; the interpreter
(:mod:`repro.lang.interp`) can *execute* the corpus.  This module
closes the loop: for every extracted Self-Dependency range it runs the
owning parse function with boundary values (min-1 / min / max / max+1)
and checks that the error path fires exactly outside the claimed range;
for every Cross-Parameter Dependency it runs the conflict-check
function with a violating and a satisfying configuration.

Verdicts:

- ``CONSISTENT``    the corpus behaves exactly as the dependency claims,
- ``INCONSISTENT``  the corpus disagrees (an analyzer bug — or a false
  positive: the three derived-range FPs fail this validation, which is
  an automated version of the paper's manual FP labelling),
- ``NOT_VALIDATED`` no concrete driver for this dependency shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.model import Category, Dependency, ParamRef, SubKind
from repro.corpus.loader import load_unit
from repro.lang.interp import InterpError, Interpreter


class Verdict(enum.Enum):
    """Outcome of one differential-validation probe."""
    CONSISTENT = "consistent"
    INCONSISTENT = "inconsistent"
    NOT_VALIDATED = "not-validated"


@dataclass
class ValidationResult:
    """One dependency's differential-validation outcome."""
    dependency: Dependency
    verdict: Verdict
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.verdict.value}] {self.dependency.describe()} — {self.detail}"


@dataclass
class ValidationReport:
    """All validation outcomes of one run."""
    results: List[ValidationResult] = dc_field(default_factory=list)

    def count(self, verdict: Verdict) -> int:
        """Number of results with the given verdict."""
        return sum(1 for r in self.results if r.verdict is verdict)

    def inconsistent(self) -> List[ValidationResult]:
        """Results where execution contradicts the claim."""
        return [r for r in self.results if r.verdict is Verdict.INCONSISTENT]


# ---------------------------------------------------------------------------
# mke2fs drivers
# ---------------------------------------------------------------------------

#: parameter -> getopt option character in the corpus parse loop.
_MKE2FS_OPTION_CHAR: Dict[str, str] = {
    "blocksize": "b",
    "cluster_size": "C",
    "blocks_per_group": "g",
    "number_of_groups": "G",
    "inode_ratio": "i",
    "inode_size": "I",
    "journal_size": "J",
    "reserved_percent": "m",
    "inode_count": "N",
}

#: parameter -> corpus global variable (inverse of the annotations).
_MKE2FS_GLOBAL: Dict[str, str] = {
    "blocksize": "blocksize",
    "cluster_size": "cluster_size",
    "inode_ratio": "inode_ratio",
    "inode_size": "inode_size",
    "reserved_percent": "reserved_percent",
    "blocks_per_group": "blocks_per_group",
    "number_of_groups": "num_groups",
    "inode_count": "num_inodes",
    "journal_size": "journal_size",
    "fs_size": "fs_blocks_count",
    "stride": "fs_stride",
    "stripe_width": "fs_stripe_width",
    "resize_limit": "resize_limit",
    "check_badblocks": "check_badblocks_flag",
    "dry_run": "dry_run_flag",
}

#: a conflict-free feature baseline for satisfied-case runs.
_MKE2FS_BASELINE: Dict[str, Any] = {
    "f_extent": 1, "f_ext_attr": 1, "f_dir_index": 1, "f_large_file": 1,
    "f_quota": 1, "f_has_journal": 1, "f_sparse_super": 1,
    "blocksize": 4096, "inode_size": 256,
}

#: "enabled" values for non-flag mke2fs parameters in CPD runs.
_MKE2FS_ON_VALUE: Dict[str, Any] = {
    "journal_size": 2048,
    "cluster_size": 16384,
    "number_of_groups": 16,
    "resize_limit": 1024,
    "stripe_width": 64,
    "stride": 16,
    "inode_size": 256,
    "check_badblocks": 1,
    "dry_run": 1,
}

#: value-CPD cases: (params) -> (violating globals, satisfying globals).
_MKE2FS_VALUE_CASES: Dict[frozenset, Tuple[Dict[str, Any], Dict[str, Any]]] = {
    frozenset({"cluster_size", "blocksize"}): (
        {"cluster_size": 4096, "blocksize": 4096, "f_bigalloc": 1},
        {"cluster_size": 16384, "blocksize": 4096, "f_bigalloc": 1},
    ),
    frozenset({"inode_size", "blocksize"}): (
        {"inode_size": 8192, "blocksize": 4096},
        {"inode_size": 256, "blocksize": 4096},
    ),
}

_MOUNT_GLOBAL: Dict[str, str] = {
    "commit": "opt_commit",
    "barrier": "opt_barrier",
    "journal_ioprio": "opt_journal_ioprio",
    "auto_da_alloc": "opt_auto_da_alloc",
    "max_batch_time": "opt_max_batch_time",
    "min_batch_time": "opt_min_batch_time",
    "resuid": "opt_resuid",
    "resgid": "opt_resgid",
    "stripe": "opt_stripe",
    "ro": "opt_ro",
    "dax": "opt_dax",
    "noload": "opt_noload",
    "data": "opt_data_journal",
    "delalloc": "opt_delalloc",
    "journal_checksum": "opt_journal_checksum",
    "journal_async_commit": "opt_journal_async_commit",
}

#: mount CPD cases: params -> (check function, violating, satisfying).
_MOUNT_CPD_CASES: Dict[frozenset, Tuple[str, Dict[str, Any], Dict[str, Any]]] = {
    frozenset({"journal_async_commit", "journal_checksum"}): (
        "check_mount_options",
        {"opt_journal_async_commit": 1, "opt_journal_checksum": 0},
        {"opt_journal_async_commit": 1, "opt_journal_checksum": 1},
    ),
    frozenset({"dax", "data"}): (
        "check_mount_options",
        {"opt_dax": 1, "opt_data_journal": 1},
        {"opt_dax": 1, "opt_data_journal": 0},
    ),
    frozenset({"noload", "ro"}): (
        "check_mount_options",
        {"opt_noload": 1, "opt_ro": 0},
        {"opt_noload": 1, "opt_ro": 1},
    ),
    frozenset({"min_batch_time", "max_batch_time"}): (
        "ext4_remount_checks",
        {"opt_min_batch_time": 20000, "opt_max_batch_time": 10000},
        {"opt_min_batch_time": 0, "opt_max_batch_time": 15000},
    ),
    frozenset({"data", "delalloc"}): (
        "ext4_remount_checks",
        {"opt_data_journal": 1, "opt_delalloc": 1},
        {"opt_data_journal": 1, "opt_delalloc": 0},
    ),
}


class DifferentialValidator:
    """Validate extracted dependencies by executing the corpus."""

    def __init__(self) -> None:
        self.mke2fs = load_unit("mke2fs.c").module
        self.mount = load_unit("mount.c").module

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def validate(self, dependencies: Sequence[Dependency]) -> ValidationReport:
        """Validate a batch of dependencies."""
        report = ValidationReport()
        for dep in dependencies:
            report.results.append(self.validate_one(dep))
        return report

    def validate_one(self, dep: Dependency) -> ValidationResult:
        """Validate a single dependency; never raises."""
        try:
            if dep.kind is SubKind.SD_VALUE_RANGE:
                return self._validate_range(dep)
            if dep.kind is SubKind.SD_DATA_TYPE:
                return self._validate_type(dep)
            if dep.kind in (SubKind.CPD_CONTROL, SubKind.CPD_VALUE):
                return self._validate_cpd(dep)
        except InterpError as exc:
            return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                    f"interpreter: {exc}")
        return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                "no concrete driver for this dependency shape")

    # ------------------------------------------------------------------
    # SD value range
    # ------------------------------------------------------------------

    def _validate_range(self, dep: Dependency) -> ValidationResult:
        param = dep.params[0]
        bounds = dep.constraint_dict
        lo, hi = bounds.get("min"), bounds.get("max")
        probes: List[Tuple[int, bool]] = []  # (value, expect_rejection)
        if lo is not None:
            probes += [(lo - 1, True), (lo, False)]
        if hi is not None:
            probes += [(hi, False), (hi + 1, True)]
        if param.component == "mke2fs":
            runner = self._mke2fs_range_runner(param.name)
        elif param.component == "mount":
            runner = self._mount_range_runner(param.name)
        else:
            return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                    f"no range driver for {param.component}")
        if runner is None:
            return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                    f"no driver for {param}")
        for value, expect_reject in probes:
            rejected = runner(value)
            if rejected != expect_reject:
                return ValidationResult(
                    dep, Verdict.INCONSISTENT,
                    f"value {value}: corpus "
                    f"{'rejects' if rejected else 'accepts'}, claim says "
                    f"{'reject' if expect_reject else 'accept'}")
        return ValidationResult(dep, Verdict.CONSISTENT,
                                f"{len(probes)} boundary probes agree")

    def _mke2fs_range_runner(self, name: str) -> Optional[Callable[[int], bool]]:
        if name == "fs_size":
            return lambda value: self._run_mke2fs_parse([], str(value))
        char = _MKE2FS_OPTION_CHAR.get(name)
        if char is None:
            return None
        return lambda value: self._run_mke2fs_parse([(char, str(value))], "128")

    def _run_mke2fs_parse(self, options: List[Tuple[str, str]],
                          size_operand: str) -> bool:
        """Run parse_mke2fs_options; True when it takes the error path."""
        chars = iter([ord(c) for c, _v in options] + [0])
        values = iter([v for _c, v in options] + [size_operand])
        interp = Interpreter(self.mke2fs, stubs={
            "getopt": lambda argc, argv: next(chars),
            "optarg_value": lambda: next(values),
            "parse_feature_word": lambda s: 0,
        })
        result = interp.run("parse_mke2fs_options", 2, 0)
        return result.error_exit

    def _mount_range_runner(self, name: str) -> Optional[Callable[[int], bool]]:
        global_name = _MOUNT_GLOBAL.get(name)
        if global_name is None:
            return None

        def run(value: int) -> bool:
            baseline = {"opt_max_batch_time": 15000}
            baseline[global_name] = value
            interp = Interpreter(self.mount, globals_init=baseline)
            result = interp.run("check_mount_options")
            return result.error_exit or _rejected(result.return_value)

        return run

    # ------------------------------------------------------------------
    # SD data type
    # ------------------------------------------------------------------

    def _validate_type(self, dep: Dependency) -> ValidationResult:
        param = dep.params[0]
        if param.component != "mke2fs":
            return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                    "type probing is wired for mke2fs only")
        runner = self._mke2fs_range_runner(param.name)
        if runner is None:
            return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                    f"no driver for {param}")
        try:
            if param.name == "fs_size":
                self._run_mke2fs_parse([], "not-a-number")
            else:
                char = _MKE2FS_OPTION_CHAR[param.name]
                self._run_mke2fs_parse([(char, "not-a-number")], "128")
        except (InterpError, ValueError):
            return ValidationResult(dep, Verdict.CONSISTENT,
                                    "non-numeric input fails the typed parse")
        return ValidationResult(dep, Verdict.INCONSISTENT,
                                "non-numeric input was accepted")

    # ------------------------------------------------------------------
    # CPD
    # ------------------------------------------------------------------

    def _validate_cpd(self, dep: Dependency) -> ValidationResult:
        a, b = dep.params[0], dep.params[-1]
        if a.component == "mke2fs":
            return self._validate_mke2fs_cpd(dep, a, b)
        if a.component == "mount":
            return self._validate_mount_cpd(dep, a, b)
        return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                f"no CPD driver for {a.component}")

    def _validate_mke2fs_cpd(self, dep: Dependency, a: ParamRef,
                             b: ParamRef) -> ValidationResult:
        if dep.kind is SubKind.CPD_VALUE:
            case = _MKE2FS_VALUE_CASES.get(frozenset({a.name, b.name}))
            if case is None:
                return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                        "no value-CPD case")
            violating, satisfying = case
        else:
            relation = dep.constraint_dict.get("relation", "conflicts")
            violating = {self._mke2fs_setting(a.name): self._on_value(a.name)}
            satisfying = dict(violating)
            if relation == "conflicts":
                violating[self._mke2fs_setting(b.name)] = self._on_value(b.name)
                satisfying[self._mke2fs_setting(b.name)] = 0
            else:  # a requires b
                violating[self._mke2fs_setting(b.name)] = 0
                satisfying[self._mke2fs_setting(b.name)] = self._on_value(b.name)
        reject_violating = self._run_mke2fs_conflicts(violating)
        reject_satisfying = self._run_mke2fs_conflicts(satisfying)
        return self._cpd_verdict(dep, reject_violating, reject_satisfying)

    @staticmethod
    def _mke2fs_setting(name: str) -> str:
        from repro.ecosystem.featureset import all_feature_names

        if name in all_feature_names():
            return f"f_{name}"
        return _MKE2FS_GLOBAL[name]

    @staticmethod
    def _on_value(name: str) -> Any:
        return _MKE2FS_ON_VALUE.get(name, 1)

    def _run_mke2fs_conflicts(self, overrides: Dict[str, Any]) -> bool:
        globals_init = dict(_MKE2FS_BASELINE)
        # drop baseline entries that would themselves conflict
        for key, value in overrides.items():
            globals_init[key] = value
        interp = Interpreter(self.mke2fs, globals_init=globals_init)
        result = interp.run("check_feature_conflicts")
        return result.error_exit or _rejected(result.return_value)

    def _validate_mount_cpd(self, dep: Dependency, a: ParamRef,
                            b: ParamRef) -> ValidationResult:
        case = _MOUNT_CPD_CASES.get(frozenset({a.name, b.name}))
        if case is None:
            return ValidationResult(dep, Verdict.NOT_VALIDATED,
                                    "no mount CPD case")
        function, violating, satisfying = case
        reject_violating = self._run_mount_check(function, violating)
        reject_satisfying = self._run_mount_check(function, satisfying)
        return self._cpd_verdict(dep, reject_violating, reject_satisfying)

    def _run_mount_check(self, function: str, overrides: Dict[str, Any]) -> bool:
        globals_init = {"opt_max_batch_time": 15000}
        globals_init.update(overrides)
        interp = Interpreter(self.mount, globals_init=globals_init)
        result = interp.run(function)
        return result.error_exit or _rejected(result.return_value)

    @staticmethod
    def _cpd_verdict(dep: Dependency, reject_violating: bool,
                     reject_satisfying: bool) -> ValidationResult:
        if reject_violating and not reject_satisfying:
            return ValidationResult(dep, Verdict.CONSISTENT,
                                    "violating config rejected, satisfying accepted")
        if not reject_violating:
            return ValidationResult(dep, Verdict.INCONSISTENT,
                                    "violating configuration was accepted")
        return ValidationResult(dep, Verdict.INCONSISTENT,
                                "satisfying configuration was rejected")


def _rejected(return_value: Any) -> bool:
    return isinstance(return_value, int) and return_value < 0


def validate_extracted(dependencies: Optional[Sequence[Dependency]] = None) -> ValidationReport:
    """Differentially validate (default: the full Table-5 union)."""
    if dependencies is None:
        from repro.analysis.extractor import extract_all

        dependencies = extract_all().union
    return DifferentialValidator().validate(dependencies)
