"""False-negative evaluation — more §6 future work, implemented.

The paper evaluates only false positives ("we plan to ... evaluate with
more metrics (e.g., false negatives, overhead)").  Because our corpus
is modelled, its full dependency content is known, so recall can be
measured: the ground truth is the manually validated union of every
dependency encoded in the corpus — the 59 the intra-procedural
prototype finds plus the ones it provably misses:

- two resize2fs flag conflicts living in a function outside the
  pre-selected lists (``check_flag_conflicts``),
- the e2fsck -p/-n/-y exclusion hidden behind a helper call,
- the mount-time CCDs reachable only through the kernel's
  ``ext4_sb_info`` copies (dax vs. block size, data=journal vs.
  has_journal, cluster-ratio vs. block size),
- e4defrag's extent dependency hidden behind the ioctl boundary.

:func:`recall_report` measures both engines against this truth; the
inter-procedural extension recovers most of the misses, and the ioctl/
helper-call items remain — the honest residue of static analysis at a
syscall boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.extractor import ExtractionReport, extract_all
from repro.analysis.groundtruth import is_false_positive
from repro.analysis.model import Category


@dataclass(frozen=True)
class KnownMiss:
    """One dependency the intra-procedural prototype cannot extract."""

    description: str
    category: Category
    #: extraction keys that count as having found this dependency
    #: (classification may shift between engines, hence alternatives)
    keys: Tuple[str, ...]
    reason: str  # why intra misses it


#: The corpus-encoded dependencies beyond the prototype's reach.
KNOWN_MISSES: Tuple[KnownMiss, ...] = (
    KnownMiss(
        "resize2fs -b and -s cannot be used together",
        Category.CPD,
        ("CPD.control:resize2fs.disable_64bit,resize2fs.enable_64bit:conflicts",),
        "guard lives outside the pre-selected function lists",
    ),
    KnownMiss(
        "resize2fs -M and -P cannot be used together",
        Category.CPD,
        ("CPD.control:resize2fs.minimize,resize2fs.print_min_size:conflicts",),
        "guard lives outside the pre-selected function lists",
    ),
    KnownMiss(
        "e2fsck accepts only one of -p/-a, -n, -y",
        Category.CPD,
        ("CPD.control:e2fsck.assume_yes,e2fsck.no_changes:conflicts",),
        "exclusion counted inside a helper with no corpus body",
    ),
    KnownMiss(
        "mount -o dax requires the mkfs-time block size to equal the page size",
        Category.CCD,
        ("CCD.behavioral:mke2fs.blocksize,mount.dax@s_log_block_size",),
        "kernel validates an ext4_sb_info copy filled by ext4_load_super",
    ),
    KnownMiss(
        "mount -o data=journal requires a journal created at mkfs time",
        Category.CCD,
        ("CCD.behavioral:mke2fs.has_journal,mount.data@s_feature_compat",),
        "kernel validates an ext4_sb_info copy filled by ext4_load_super",
    ),
    KnownMiss(
        "the kernel's cluster-ratio check depends on the mkfs-time block size",
        Category.CCD,
        ("CCD.behavioral:ext4.*,mke2fs.blocksize@s_log_cluster_size",
         "CCD.behavioral:ext4.*,mke2fs.blocksize@s_log_block_size"),
        "kernel validates an ext4_sb_info copy filled by ext4_load_super",
    ),
    KnownMiss(
        "e4defrag only works on extent-mapped files (mke2fs -O extent)",
        Category.CCD,
        ("CCD.behavioral:e4defrag.*,mke2fs.extent@s_feature_incompat",),
        "dependency crosses the EXT4_IOC_MOVE_EXT ioctl boundary",
    ),
)


@dataclass
class TruthEntry:
    """One ground-truth dependency and which engines found it."""

    description: str
    category: Category
    found_intra: bool
    found_interproc: bool
    reason_if_missed: str = ""


@dataclass
class RecallReport:
    """Recall of both engines against the corpus ground truth."""

    entries: List[TruthEntry] = dc_field(default_factory=list)

    def _by(self, category: Optional[Category] = None) -> List[TruthEntry]:
        return [e for e in self.entries
                if category is None or e.category is category]

    def truth_total(self, category: Optional[Category] = None) -> int:
        """Ground-truth dependency count (optionally per category)."""
        return len(self._by(category))

    def found_intra(self, category: Optional[Category] = None) -> int:
        """Truth entries the intra-procedural engine found."""
        return sum(1 for e in self._by(category) if e.found_intra)

    def found_interproc(self, category: Optional[Category] = None) -> int:
        """Truth entries the inter-procedural engine found."""
        return sum(1 for e in self._by(category) if e.found_interproc)

    def recall_intra(self, category: Optional[Category] = None) -> float:
        """Intra-procedural recall against the ground truth."""
        total = self.truth_total(category)
        return self.found_intra(category) / total if total else 1.0

    def recall_interproc(self, category: Optional[Category] = None) -> float:
        """Inter-procedural recall against the ground truth."""
        total = self.truth_total(category)
        return self.found_interproc(category) / total if total else 1.0

    def still_missed(self) -> List[TruthEntry]:
        """Truth entries neither engine extracts."""
        return [e for e in self.entries if not e.found_interproc]

    def render(self) -> str:
        """Render the recall table as printable text."""
        lines = ["False-negative evaluation (corpus ground truth)",
                 f"{'category':>10s} {'truth':>6s} {'intra':>6s} "
                 f"{'inter':>6s} {'recall(intra)':>14s} {'recall(inter)':>14s}"]
        for category in (Category.SD, Category.CPD, Category.CCD):
            lines.append(
                f"{category.value:>10s} {self.truth_total(category):>6d} "
                f"{self.found_intra(category):>6d} "
                f"{self.found_interproc(category):>6d} "
                f"{self.recall_intra(category):>13.1%} "
                f"{self.recall_interproc(category):>13.1%}"
            )
        lines.append(
            f"{'total':>10s} {self.truth_total():>6d} {self.found_intra():>6d} "
            f"{self.found_interproc():>6d} {self.recall_intra():>13.1%} "
            f"{self.recall_interproc():>13.1%}"
        )
        missed = self.still_missed()
        if missed:
            lines.append("still missed by both engines:")
            for entry in missed:
                lines.append(f"  - {entry.description} ({entry.reason_if_missed})")
        return "\n".join(lines)


def recall_report(intra: Optional[ExtractionReport] = None,
                  interproc: Optional[ExtractionReport] = None) -> RecallReport:
    """Measure recall of both engines against the corpus ground truth."""
    intra = intra if intra is not None else extract_all()
    if interproc is None:
        from repro.analysis.interproc import extract_interprocedural

        interproc = extract_interprocedural()
    intra_keys = {d.key() for d in intra.union if not is_false_positive(d)}
    inter_keys = {d.key() for d in interproc.union if not is_false_positive(d)}

    report = RecallReport()
    # Every validated intra finding is ground truth by construction.
    for dep in intra.true_dependencies():
        report.entries.append(TruthEntry(
            description=dep.describe(),
            category=dep.category,
            found_intra=True,
            found_interproc=_any_variant_found(dep.key(), inter_keys),
        ))
    for miss in KNOWN_MISSES:
        found_inter = any(k in inter_keys for k in miss.keys)
        report.entries.append(TruthEntry(
            description=miss.description,
            category=miss.category,
            found_intra=any(k in intra_keys for k in miss.keys),
            found_interproc=found_inter,
            reason_if_missed=miss.reason,
        ))
    return report


#: Classification shifts between the engines: an intra key and the
#: interproc key that denotes the same dependency.
_KEY_VARIANTS: Dict[str, Tuple[str, ...]] = {
    "CCD.control:mke2fs.64bit,resize2fs.enable_64bit:conflicts@s_feature_incompat": (
        "CCD.behavioral:mke2fs.64bit,resize2fs.64bit,resize2fs.enable_64bit@s_feature_incompat",
    ),
}


def _any_variant_found(key: str, key_set: Set[str]) -> bool:
    if key in key_set:
        return True
    return any(v in key_set for v in _KEY_VARIANTS.get(key, ()))
