"""Derive SD and CPD dependencies from taint results (paper §4.1).

Given one function's IR, CFG, and taint state, this pass inspects every
branch whose outcome (on one side) reaches an error exit and decomposes
the condition into *atoms*:

- ``param  <op>  constant``  →  Self-Dependency value range,
- ``param1 <op>  param2`` (same component)  →  Cross-Parameter value,
- two boolean parameter tests in one guard →  Cross-Parameter control
  (``conflicts`` when both trigger the error enabled, ``requires`` when
  one must be enabled for the other),
- annotated variables defined by a typed parse helper →  Self-Dependency
  data type.

Branches whose condition carries metadata-field taint are summarized as
:class:`BranchUse` records for :mod:`repro.analysis.bridge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import perf
from repro.analysis.model import (
    Dependency,
    Evidence,
    ParamRef,
    SubKind,
    make_constraint,
)
from repro.analysis.sources import TYPED_PARSERS, ComponentSources
from repro.analysis.taint import FieldTaint, TaintState
from repro.lang.cfg import CFG
from repro.lang.ir import (
    BinOp,
    Branch,
    CallInstr,
    Const,
    Function,
    Move,
    Temp,
    UnOp,
    Value,
    Var,
)

_CMP_OPS = {"<", ">", "<=", ">=", "==", "!="}
_FLIP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}
_NEGATE = {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=", "!=": "=="}


@dataclass
class CmpAtom:
    """One comparison in a guard, with violation polarity applied."""

    op: str  # the *constraint* relation (already negated if needed)
    left: Value
    right: Value
    line: int


@dataclass
class FlagAtom:
    """One boolean test in a guard.

    ``enabled_in_violation`` — the flag is truthy on the error path.
    """

    value: Value
    enabled_in_violation: bool
    line: int


@dataclass
class BranchUse:
    """Summary of one branch for the cross-component bridge."""

    function: str
    line: int
    params: FrozenSet[ParamRef]
    fields: FrozenSet[FieldTaint]
    error_guard: bool
    feature_enabled_in_violation: Dict[FieldTaint, bool]


@dataclass
class FunctionFindings:
    """Everything one function contributes."""

    function: str
    dependencies: List[Dependency]
    branch_uses: List[BranchUse]


class ConstraintDeriver:
    """Extract SD/CPD findings from one analyzed function."""

    def __init__(self, func: Function, cfg: CFG, state: TaintState,
                 sources: ComponentSources, component: str,
                 filename: str) -> None:
        self.func = func
        self.cfg = cfg
        self.state = state
        self.sources = sources
        self.component = component
        self.filename = filename

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self) -> FunctionFindings:
        """Derive the function's dependencies and bridge summaries."""
        deps: List[Dependency] = []
        uses: List[BranchUse] = []
        deps.extend(self._data_type_deps())
        for instr in self.cfg.branches():
            true_err, false_err = self.cfg.branch_error_sides(instr)
            # params/fields come pre-split from the taint layer's
            # content-keyed split memo (same canonical sets recur).
            params = self.state.params(instr.cond)
            fields = self.state.fields(instr.cond)
            error_guard = true_err or false_err
            if fields:
                uses.append(self._branch_use(instr, params, fields, error_guard))
            if not error_guard or true_err and false_err:
                continue
            if not params:
                continue
            atoms_cmp, atoms_flag = self._decompose(instr.cond, violation_when=true_err)
            deps.extend(self._derive_from_guard(atoms_cmp, atoms_flag, instr.line))
        return FunctionFindings(self.func.name, _dedupe(deps), uses)

    # ------------------------------------------------------------------
    # SD data type
    # ------------------------------------------------------------------

    def _data_type_deps(self) -> List[Dependency]:
        out: List[Dependency] = []
        for var_name, param in self.sources.sources_for(self.func.name).items():
            ctype = self._parsed_type_of(Var(var_name))
            if ctype is None:
                continue
            out.append(Dependency(
                kind=SubKind.SD_DATA_TYPE,
                params=(param,),
                constraint=make_constraint(ctype=ctype),
                evidence=Evidence(self.filename, self.func.name, self.func.line),
            ))
        return out

    def _parsed_type_of(self, var: Var) -> Optional[str]:
        """The typed-parser result type assigned into ``var``, if any."""
        for definition in self.state.defining(var):
            if not isinstance(definition, Move):
                continue
            src = definition.src
            if not isinstance(src, Temp):
                continue
            for src_def in self.state.defining(src):
                if isinstance(src_def, CallInstr) and src_def.func in TYPED_PARSERS:
                    return TYPED_PARSERS[src_def.func]
        return None

    # ------------------------------------------------------------------
    # guard decomposition
    # ------------------------------------------------------------------

    def _decompose(self, cond: Value, violation_when: bool) -> Tuple[List[CmpAtom], List[FlagAtom]]:
        """Split a guard into atoms with violation polarity applied.

        ``violation_when=True`` means the condition being *true* takes
        the error path; the constraint is then the negation of each
        atom.  The polarity pushes through ``!``, ``&&`` and ``||``.
        """
        cmps: List[CmpAtom] = []
        flags: List[FlagAtom] = []
        self._walk(cond, violation_when, cmps, flags)
        return cmps, flags

    def _walk(self, value: Value, violation: bool,
              cmps: List[CmpAtom], flags: List[FlagAtom]) -> None:
        definition = self._single_def(value)
        if isinstance(definition, BinOp):
            op = definition.op
            if op in ("&&", "||"):
                self._walk(definition.left, violation, cmps, flags)
                self._walk(definition.right, violation, cmps, flags)
                return
            if op in _CMP_OPS:
                constraint_op = _NEGATE[op] if violation else op
                cmps.append(CmpAtom(constraint_op, definition.left,
                                    definition.right, definition.line))
                return
            if op == "&":
                flags.append(FlagAtom(value, violation, definition.line))
                return
        if isinstance(definition, UnOp) and definition.op == "!":
            self._walk(definition.operand, not violation, cmps, flags)
            return
        # Bare value in boolean context.
        flags.append(FlagAtom(value, violation,
                              definition.line if definition else 0))

    def _single_def(self, value: Value):
        if isinstance(value, Temp):
            defs = self.state.defining(value)
            if len(defs) == 1:
                return defs[0]
        return None

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------

    def _derive_from_guard(self, cmps: List[CmpAtom], flags: List[FlagAtom],
                           line: int) -> List[Dependency]:
        deps: List[Dependency] = []
        evidence = Evidence(self.filename, self.func.name, line)
        bounds: Dict[ParamRef, Dict[str, int]] = {}
        for atom in cmps:
            left_p = self._single_param(atom.left)
            right_p = self._single_param(atom.right)
            left_c = atom.left.value if isinstance(atom.left, Const) else None
            right_c = atom.right.value if isinstance(atom.right, Const) else None
            if left_p is not None and right_c is not None:
                self._apply_bound(bounds, left_p, atom.op, right_c)
            elif right_p is not None and left_c is not None:
                self._apply_bound(bounds, right_p, _FLIP[atom.op], left_c)
            elif left_p is not None and right_p is not None and left_p != right_p:
                if left_p.component == right_p.component:
                    deps.append(Dependency(
                        kind=SubKind.CPD_VALUE,
                        params=(left_p, right_p),
                        constraint=make_constraint(relation=atom.op),
                        evidence=evidence,
                    ))
        for param, bound in bounds.items():
            if not bound:
                continue
            deps.append(Dependency(
                kind=SubKind.SD_VALUE_RANGE,
                params=(param,),
                constraint=make_constraint(**bound),
                evidence=evidence,
            ))
        deps.extend(self._flag_pairs(flags, evidence))
        return deps

    def _flag_pairs(self, flags: List[FlagAtom], evidence: Evidence) -> List[Dependency]:
        """Pair boolean parameter tests into CPD control dependencies."""
        by_param: Dict[ParamRef, bool] = {}
        for atom in flags:
            param = self._single_param(atom.value)
            if param is None:
                continue
            by_param.setdefault(param, atom.enabled_in_violation)
        if len(by_param) != 2:
            return []
        (p1, v1), (p2, v2) = sorted(by_param.items())
        if p1.component != p2.component:
            return []  # cross-component flag pairs belong to the bridge
        if v1 and v2:
            relation = "conflicts"
            params = (p1, p2)
        elif v1 != v2:
            relation = "requires"
            params = (p1, p2) if v1 else (p2, p1)
        else:
            relation = "requires"
            params = (p1, p2)
        return [Dependency(
            kind=SubKind.CPD_CONTROL,
            params=params,
            constraint=make_constraint(relation=relation),
            evidence=evidence,
        )]

    def _single_param(self, value: Value) -> Optional[ParamRef]:
        params = self.state.params(value)
        if len(params) == 1 and not self.state.fields(value):
            return next(iter(params))
        return None

    @staticmethod
    def _apply_bound(bounds: Dict[ParamRef, Dict[str, int]],
                     param: ParamRef, op: str, value: int) -> None:
        entry = bounds.setdefault(param, {})
        if op == ">=":
            entry["min"] = max(entry.get("min", value), value)
        elif op == ">":
            entry["min"] = max(entry.get("min", value + 1), value + 1)
        elif op == "<=":
            entry["max"] = min(entry.get("max", value), value)
        elif op == "<":
            entry["max"] = min(entry.get("max", value - 1), value - 1)
        # == / != do not produce range constraints.

    # ------------------------------------------------------------------
    # bridge summaries
    # ------------------------------------------------------------------

    def _branch_use(self, instr: Branch, params: FrozenSet[ParamRef],
                    fields: FrozenSet[FieldTaint], error_guard: bool) -> BranchUse:
        true_err, _false_err = self.cfg.branch_error_sides(instr)
        feature_polarity: Dict[FieldTaint, bool] = {}
        cmps, flags = self._decompose(instr.cond, violation_when=true_err)
        for atom in flags:
            for label in self.state.fields(atom.value):
                if label.feature is not None:
                    feature_polarity[label] = atom.enabled_in_violation
        return BranchUse(
            function=self.func.name,
            line=instr.line,
            params=params,
            fields=fields,
            error_guard=error_guard,
            feature_enabled_in_violation=feature_polarity,
        )


def _dedupe(deps: List[Dependency]) -> List[Dependency]:
    seen = set()
    out = []
    for dep in deps:
        key = dep.key()
        if key in seen:
            continue
        seen.add(key)
        out.append(dep)
    return out


#: (unit fingerprint, function name, sources fingerprint, component,
#: filename) -> (taint state, findings).  The taint state rides along
#: so a hit can be identity-checked against the caller's state: the
#: inter-procedural extractor derives constraints for the *same*
#: function under *different* (hook-seeded) states, and those must
#: never alias the intra-procedural entry.
_FINDINGS_MEMO: Dict[Tuple[str, str, str, str, str],
                     Tuple[TaintState, FunctionFindings]] = {}

perf.register_memo("constraints.derive", _FINDINGS_MEMO.clear)


def _memo_key(func: Function, sources: ComponentSources, component: str,
              filename: str) -> Optional[Tuple[str, str, str, str, str]]:
    fingerprint = getattr(func, "module_fingerprint", "")
    if not fingerprint:
        return None
    return (fingerprint, func.name, sources.fingerprint(), component, filename)


def findings_peek(func: Function, state: TaintState,
                  sources: ComponentSources, component: str,
                  filename: str) -> Optional[FunctionFindings]:
    """The memoized findings derived from exactly ``state``, or None."""
    key = _memo_key(func, sources, component, filename)
    if key is None:
        return None
    hit = _FINDINGS_MEMO.get(key)
    if hit is not None and hit[0] is state:
        return hit[1]
    return None


def findings_seed(func: Function, state: TaintState,
                  findings: FunctionFindings, sources: ComponentSources,
                  component: str, filename: str) -> bool:
    """Install a (state, findings) pair decoded from the disk store.

    The pair must be the two halves of one stored entry so the memo's
    identity check (``hit[0] is state``) keeps holding for callers that
    looked the state up through :func:`repro.analysis.taint.memo_peek`.
    """
    key = _memo_key(func, sources, component, filename)
    if key is None:
        return False
    _FINDINGS_MEMO[key] = (state, findings)
    return True


def derive_constraints(func: Function, cfg: CFG, state: TaintState,
                       sources: ComponentSources, component: str,
                       filename: str) -> FunctionFindings:
    """Run constraint derivation for one function (memoized per content).

    Memoized when ``func`` carries a module fingerprint (i.e. was
    loaded through the corpus loader) *and* ``state`` is the exact
    object the memoized entry was derived from — which is guaranteed
    for the intra-procedural pipeline because
    :func:`repro.analysis.taint.analyze_function` memoizes states under
    the same key scheme.
    """
    fingerprint = getattr(func, "module_fingerprint", "")
    key: Optional[Tuple[str, str, str, str, str]] = None
    if fingerprint:
        key = (fingerprint, func.name, sources.fingerprint(), component, filename)
        hit = _FINDINGS_MEMO.get(key)
        if hit is not None and hit[0] is state:
            perf.bump("memo.constraints.hit")
            return hit[1]
        perf.bump("memo.constraints.miss")
    with perf.timed("analysis.constraints"):
        findings = ConstraintDeriver(
            func, cfg, state, sources, component, filename
        ).run()
    if key is not None:
        _FINDINGS_MEMO[key] = (state, findings)
    return findings
