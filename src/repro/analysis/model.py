"""The multi-level configuration-dependency taxonomy (paper Table 4).

Three categories, seven sub-kinds:

=====================  ==================================================
Self Dependency        SD_DATA_TYPE   P must have a specific data type
(SD)                   SD_VALUE_RANGE P must lie in a specific range
Cross-Parameter        CPD_CONTROL    P1 of C1 enabled iff P2 of C1 en/dis
Dependency (CPD)       CPD_VALUE      P1's value depends on P2's value
Cross-Component        CCD_CONTROL    P1 of C1 enabled iff P2 of C2 en/dis
Dependency (CCD)       CCD_VALUE      P1's value depends on P2 of C2
                       CCD_BEHAVIORAL C1's behaviour depends on P2 of C2
=====================  ==================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Category(enum.Enum):
    """The three major dependency categories (paper SS3.2)."""
    SD = "SD"
    CPD = "CPD"
    CCD = "CCD"


class SubKind(enum.Enum):
    """The seven dependency sub-kinds of Table 4."""
    SD_DATA_TYPE = "SD.data_type"
    SD_VALUE_RANGE = "SD.value_range"
    CPD_CONTROL = "CPD.control"
    CPD_VALUE = "CPD.value"
    CCD_CONTROL = "CCD.control"
    CCD_VALUE = "CCD.value"
    CCD_BEHAVIORAL = "CCD.behavioral"

    @property
    def category(self) -> Category:
        """The major category this sub-kind belongs to."""
        return _SUBKIND_CATEGORY[self]


#: SubKind -> Category, computed once (the property is hot: dependency
#: validation and classification consult it per object).
_SUBKIND_CATEGORY: Dict[SubKind, Category] = {
    kind: Category(kind.value.split(".")[0]) for kind in SubKind
}


@dataclass(frozen=True, order=True)
class ParamRef:
    """A parameter of a component, e.g. ``mke2fs.sparse_super2``."""

    component: str
    name: str

    def __str__(self) -> str:
        return f"{self.component}.{self.name}"

    @classmethod
    def parse(cls, text: str) -> "ParamRef":
        """Parse a 'component.name' string into a ParamRef."""
        component, _, name = text.partition(".")
        if not component or not name:
            raise ValueError(f"bad parameter reference {text!r}")
        return cls(component, name)


@dataclass(frozen=True)
class Evidence:
    """Where in the corpus the dependency was observed."""

    filename: str = ""
    function: str = ""
    line: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.function}:{self.line}"


@dataclass(frozen=True)
class Dependency:
    """One extracted multi-level configuration dependency.

    ``constraint`` is a small machine-readable description whose shape
    depends on the sub-kind:

    - SD_DATA_TYPE:   {"ctype": "unsigned long"}
    - SD_VALUE_RANGE: {"min": 1024, "max": 65536}   (either side optional)
    - CPD/CCD control: {"relation": "conflicts" | "requires"}
    - CPD/CCD value:  {"relation": "<=" , ...}
    - CCD_BEHAVIORAL: {"effect": "guards-behaviour"}
    """

    kind: SubKind
    params: Tuple[ParamRef, ...]
    constraint: Tuple[Tuple[str, object], ...] = ()
    bridge_field: Optional[str] = None  # shared metadata field for CCDs
    evidence: Evidence = field(default=Evidence(), compare=False)

    def __post_init__(self) -> None:
        if not self.params:
            raise ValueError("a dependency involves at least one parameter")
        if self.kind.category is Category.SD and len(self.params) != 1:
            raise ValueError(f"SD involves exactly one parameter, got {self.params}")
        if self.kind.category is not Category.SD and len(self.params) < 2:
            raise ValueError(f"{self.kind.value} involves at least two parameters")
        if self.kind.category is Category.CPD:
            components = {p.component for p in self.params}
            if len(components) != 1:
                raise ValueError(f"CPD parameters must share a component: {self.params}")
        if self.kind.category is Category.CCD:
            components = {p.component for p in self.params}
            if len(components) < 2:
                raise ValueError(f"CCD parameters must span components: {self.params}")

    @property
    def category(self) -> Category:
        """The major category this sub-kind belongs to."""
        return self.kind.category

    @property
    def constraint_dict(self) -> Dict[str, object]:
        """The constraint tuple as a plain dict."""
        return dict(self.constraint)

    def key(self) -> str:
        """Stable identity used for dedup and ground-truth labelling.

        Range constraints contribute their bounds, so "blocksize in
        [1024, 65536]" and "blocksize >= 256" stay distinct; relations
        contribute the relation token.  Cached on the (immutable)
        instance: dedup and reporting ask repeatedly.
        """
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        params = ",".join(sorted(str(p) for p in self.params))
        extra = ""
        cdict = self.constraint_dict
        if self.kind is SubKind.SD_VALUE_RANGE:
            extra = f":[{cdict.get('min', '')},{cdict.get('max', '')}]"
        elif self.kind is SubKind.SD_DATA_TYPE:
            extra = f":{cdict.get('ctype', '')}"
        elif "relation" in cdict:
            extra = f":{cdict['relation']}"
        bridge = f"@{self.bridge_field}" if self.bridge_field else ""
        result = f"{self.kind.value}:{params}{extra}{bridge}"
        object.__setattr__(self, "_key", result)
        return result

    def describe(self) -> str:
        """One-line human-readable description."""
        cdict = self.constraint_dict
        if self.kind is SubKind.SD_DATA_TYPE:
            return f"{self.params[0]} must be of type {cdict.get('ctype')}"
        if self.kind is SubKind.SD_VALUE_RANGE:
            lo, hi = cdict.get("min"), cdict.get("max")
            if lo is not None and hi is not None:
                return f"{self.params[0]} must be in [{lo}, {hi}]"
            if lo is not None:
                return f"{self.params[0]} must be >= {lo}"
            return f"{self.params[0]} must be <= {hi}"
        if self.kind in (SubKind.CPD_CONTROL, SubKind.CCD_CONTROL):
            rel = cdict.get("relation", "conflicts")
            a, b = self.params[0], self.params[-1]
            if rel == "conflicts":
                return f"{a} cannot be used together with {b}"
            return f"{a} requires {b}"
        if self.kind in (SubKind.CPD_VALUE, SubKind.CCD_VALUE):
            rel = cdict.get("relation", "depends")
            return f"{self.params[0]} {rel} {self.params[-1]}"
        via = f" (via {self.bridge_field})" if self.bridge_field else ""
        return (f"behaviour of {self.params[0].component} depends on "
                f"{', '.join(str(p) for p in self.params[1:])}{via}")


def make_constraint(**kwargs: object) -> Tuple[Tuple[str, object], ...]:
    """Build the hashable constraint tuple from keyword pairs."""
    return tuple(sorted(kwargs.items()))
