"""Intra-procedural taint analysis over the mini-C IR (paper §4.1).

Faithful to the paper's description: we maintain (a) a *set* of tainted
values — the initial configuration variables and everything derived
from them, (b) a *trace* mapping each tainted value to the instructions
that tainted it, and (c) a *multi-parameter map* for values derived
from more than one parameter.  Propagation is a flow-insensitive
fixpoint, so loops converge and kills are ignored — the same
imprecision the paper reports (and the mechanism behind its false
positives).

Two taint label kinds exist:

- :class:`~repro.analysis.model.ParamRef` — a configuration parameter,
- :class:`FieldTaint` — "came from metadata field ``struct.field``",
  optionally refined to a specific feature bit when the load was masked
  with a known feature macro.

Field stores and loads are recorded as :class:`FieldWrite` /
:class:`FieldRead` events; :mod:`repro.analysis.bridge` joins them
across components.

Solvers
-------

Two schedulers drive the same transfer functions to the same least
fixpoint:

- ``dense`` — the original chaotic iteration: full sweeps over every
  instruction until a sweep changes nothing;
- ``sparse`` (default) — a worklist solver over def-use edges
  (:meth:`~repro.lang.ir.Instr.flow_dst` /
  :meth:`~repro.lang.ir.Instr.flow_srcs`): only instructions whose
  inputs changed are re-evaluated.  Rounds are structured to *replay*
  the dense sweep schedule exactly — within a round instructions fire
  in ascending reverse-postorder position, and a change at position
  ``p`` re-schedules users after ``p`` into the current round and users
  at or before ``p`` into the next — so the two solvers produce
  byte-identical :class:`TaintState`\\ s (the skipped evaluations are
  provably no-ops: transfers are deterministic and leave no footprint
  when their inputs are unchanged).

Both iterate instructions in reverse postorder of the CFG and run on
the interned label-set lattice (:mod:`repro.perf.lattice`), so "did
this transfer change anything" is a pointer comparison.  Select with
``REPRO_SOLVER=sparse|dense`` or the ``--solver`` CLI flag.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro import perf
from repro.analysis.model import ParamRef
from repro.analysis.sources import (
    BRIDGE_STRUCT,
    FEATURE_MACROS,
    TAINT_PRESERVING_CALLS,
    TYPED_PARSERS,
    ComponentSources,
)
from repro.lang.cfg import build_cfg
from repro.obs.tracer import span as obs_span
from repro.lang.ir import (
    BinOp,
    Branch,
    CallInstr,
    Const,
    Function,
    Instr,
    Jump,
    LoadField,
    LoadIndex,
    Move,
    Ret,
    StoreField,
    StoreIndex,
    StrConst,
    Temp,
    UnOp,
    Value,
    Var,
)
from repro.perf import lattice, modes

#: Environment knob selecting the fixpoint scheduler.
SOLVER_ENV = modes.knob("solver").env

#: Recognized scheduler names (first is the default).
SOLVER_MODES = modes.knob("solver").modes

#: Extra sweeps/rounds the convergence bound allows beyond the
#: instruction count.  The longest dependency chain a flow-insensitive
#: sweep can still be propagating along is bounded by the number of
#: instructions, so ``n + slack`` sweeps means the transfer functions
#: are not monotone — a bug, not a big function.
CONVERGENCE_SLACK = 16


def resolve_solver(explicit: Optional[str] = None) -> str:
    """The scheduler to use: ``explicit`` arg, else $REPRO_SOLVER, else sparse."""
    return modes.resolve_mode("solver", explicit)


@dataclass(frozen=True)
class FieldTaint:
    """Taint label: value derived from a metadata field.

    ``feature`` is set when the value was masked with a known feature
    macro, pinning it to one feature bit of a feature word.
    """

    struct: str
    field: str
    feature: Optional[str] = None

    def __str__(self) -> str:
        suffix = f"#{self.feature}" if self.feature else ""
        return f"{self.struct}.{self.field}{suffix}"


Label = Union[ParamRef, FieldTaint]


@dataclass
class FieldWrite:
    """One store into a metadata field, with the taint of the value."""

    struct: str
    field: str
    labels: FrozenSet[Label]
    function: str
    instr: StoreField


@dataclass
class FieldRead:
    """One load from a metadata field."""

    struct: str
    field: str
    dst: Temp
    function: str
    instr: LoadField


#: label set -> (parameter labels, field labels).  Content-keyed (no
#: identity hazard: a frozenset caches its own hash) and shared across
#: states — the constraint deriver splits the same canonical sets for
#: every branch atom it classifies.
_SPLIT_MEMO: Dict[FrozenSet[Label], Tuple[FrozenSet[ParamRef], FrozenSet[FieldTaint]]] = {}

perf.register_memo("taint.split", _SPLIT_MEMO.clear)


class _FuncPrep:
    """Memoized per-function solver inputs (see ``TaintEngine._prep``).

    Everything here is derived from the immutable function body and is
    treated as read-only by every consumer: ``defs`` is installed on
    each :class:`TaintState` *without copying* (``defining()`` only
    reads it) and ``field_instrs`` is the store/load subsequence the
    field-event collector walks instead of the whole body.
    """

    __slots__ = ("func", "order", "users", "defs", "field_instrs")

    def __init__(self, func: Function, order: List[Instr],
                 users: Optional[Dict[Value, List[int]]],
                 defs: Dict[Value, List[Instr]],
                 field_instrs: List[Instr]) -> None:
        self.func = func
        self.order = order
        self.users = users
        self.defs = defs
        self.field_instrs = field_instrs


#: id(function) -> its _FuncPrep.  The entry pins the function object
#: (strong reference), so an id can never be recycled while its entry
#: lives; racing workers compute identical entries, so last-write-wins
#: under the GIL is safe.
_PREP_MEMO: Dict[int, _FuncPrep] = {}

perf.register_memo("taint.prep", _PREP_MEMO.clear)


def _split_labels(
    labels: FrozenSet[Label],
) -> Tuple[FrozenSet[ParamRef], FrozenSet[FieldTaint]]:
    """``labels`` partitioned into (params, fields), memoized by content."""
    cached = _SPLIT_MEMO.get(labels)
    if cached is None:
        cached = (
            frozenset(l for l in labels if isinstance(l, ParamRef)),
            frozenset(l for l in labels if isinstance(l, FieldTaint)),
        )
        _SPLIT_MEMO[labels] = cached
    return cached


@dataclass
class TaintState:
    """Result of analyzing one function."""

    function: str
    taint: Dict[Value, FrozenSet[Label]] = dc_field(default_factory=dict)
    trace: Dict[Value, List[Instr]] = dc_field(default_factory=dict)
    parsed_type: Dict[Value, str] = dc_field(default_factory=dict)
    field_writes: List[FieldWrite] = dc_field(default_factory=list)
    field_reads: List[FieldRead] = dc_field(default_factory=list)
    defs: Dict[Value, List[Instr]] = dc_field(default_factory=dict)
    #: lazily computed multi-parameter map; dropped on every taint
    #: mutation (the engine owns invalidation while it runs).
    _mpm_cache: Optional[Dict[Value, FrozenSet[ParamRef]]] = dc_field(
        default=None, repr=False, compare=False
    )

    def labels(self, value: Value) -> FrozenSet[Label]:
        """Taint labels of ``value`` (constants are clean)."""
        t = type(value)  # exact types: the IR hierarchy is flat
        if t is Const or t is StrConst or value is None:
            return lattice.EMPTY
        return self.taint.get(value, lattice.EMPTY)

    def params(self, value: Value) -> FrozenSet[ParamRef]:
        """Only the parameter labels of ``value``."""
        return _split_labels(self.labels(value))[0]

    def fields(self, value: Value) -> FrozenSet[FieldTaint]:
        """Only the metadata-field labels of ``value``."""
        return _split_labels(self.labels(value))[1]

    @property
    def multi_param_map(self) -> Dict[Value, FrozenSet[ParamRef]]:
        """Values derived from two or more parameters (paper §4.1).

        Cached after the first access; the engine invalidates the cache
        whenever it mutates :attr:`taint`, so post-analysis consumers
        (the deriver asks per branch atom) pay the scan once.
        """
        if self._mpm_cache is None:
            out: Dict[Value, FrozenSet[ParamRef]] = {}
            for value, labels in self.taint.items():
                params = _split_labels(labels)[0]
                if len(params) >= 2:
                    out[value] = params
            self._mpm_cache = out
        return self._mpm_cache

    def invalidate_caches(self) -> None:
        """Drop derived caches after a direct mutation of :attr:`taint`."""
        self._mpm_cache = None

    def defining(self, value: Value) -> List[Instr]:
        """Instructions that define ``value`` in this function.

        Served from the :attr:`defs` index the engine builds up front —
        O(1) per query instead of a scan over the function body.
        """
        return self.defs.get(value, [])


class TaintEngine:
    """Analyze one function of one component's translation unit.

    The three optional hooks power the inter-procedural extension
    (:mod:`repro.analysis.interproc`); they default to empty, which is
    the paper's intra-procedural prototype:

    - ``initial_taint`` — extra labels seeded onto named values (e.g.
      callee parameters receiving caller-argument taint),
    - ``field_injections`` — labels every load of a (struct, field)
      additionally receives (unit-wide store/load matching),
    - ``call_returns`` — labels the result of a call to a unit-local
      function receives (return-taint summaries).

    ``solver`` picks the fixpoint scheduler (see the module docstring);
    ``None`` defers to ``$REPRO_SOLVER``.  Hook label sets are interned
    on entry so every set the transfer functions touch is canonical —
    the identity-keyed join memo in :mod:`repro.perf.lattice` requires
    it.
    """

    def __init__(self, func: Function, sources: ComponentSources,
                 component: str,
                 initial_taint: Optional[Dict[str, FrozenSet[Label]]] = None,
                 field_injections: Optional[Dict[Tuple[str, str], FrozenSet[Label]]] = None,
                 call_returns: Optional[Dict[str, FrozenSet[Label]]] = None,
                 solver: Optional[str] = None) -> None:
        self.func = func
        self.sources = sources
        self.component = component
        lattice.apply_mode()  # honour $REPRO_LATTICE (cheap when unchanged)
        self.initial_taint = {
            name: lattice.intern_labels(labels)
            for name, labels in (initial_taint or {}).items()
        }
        self.field_injections = {
            key: lattice.intern_labels(labels)
            for key, labels in (field_injections or {}).items()
        }
        self.call_returns = {
            name: lattice.intern_labels(labels)
            for name, labels in (call_returns or {}).items()
        }
        self.solver = resolve_solver(solver)
        self.state = TaintState(function=func.name)
        #: (struct, field) -> canonical labels a load of it produces.
        self._load_labels: Dict[Tuple[str, str], FrozenSet[Label]] = {}

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self) -> TaintState:
        """Run the fixpoint; returns the populated TaintState."""
        state = self.state
        for var, param in self.sources.sources_for(self.func.name).items():
            state.taint[Var(var)] = lattice.intern_labels(frozenset([param]))
        for var, labels in self.initial_taint.items():
            value = Var(var)
            state.taint[value] = lattice.join(
                state.taint.get(value, lattice.EMPTY), labels
            )
        state.invalidate_caches()
        prep = self._prep()
        state.defs = prep.defs  # shared, read-only (see _FuncPrep)
        if self.solver == "sparse":
            users = prep.users
            if users is None:
                users = prep.users = self._use_edges(prep.order)
            self._solve_sparse(prep.order, users)
        else:
            self._solve_dense(prep.order)
        self._collect_field_events(prep.field_instrs)
        return state

    def _prep(self) -> "_FuncPrep":
        """Per-function solver inputs, memoized across engine runs.

        Instruction order, the def index, and the def-use edges depend
        only on the (immutable) function body, while the engine re-runs
        per component and per interprocedural round.  The memo holds a
        strong reference to the function, so its ``id`` key can never
        be recycled while the entry is alive.  Use edges are filled
        lazily — only the sparse scheduler needs them.
        """
        key = id(self.func)
        cached = _PREP_MEMO.get(key)
        if cached is not None and cached.func is self.func:
            return cached
        defs: Dict[Value, List[Instr]] = {}
        field_instrs: List[Instr] = []
        for instr in self.func.instructions():
            for dst in instr.defs():
                defs.setdefault(dst, []).append(instr)
            t = type(instr)
            if t is StoreField or t is LoadField:
                field_instrs.append(instr)
        prep = _FuncPrep(self.func, self._instruction_order(), None, defs,
                         field_instrs)
        _PREP_MEMO[key] = prep
        return prep

    def _instruction_order(self) -> List[Instr]:
        """Instructions flattened in reverse postorder of the CFG.

        RPO lets one sweep push taint through every forward dependency
        chain, so only loop-carried (backward) flows cost extra sweeps
        or worklist rounds.  The analysis itself is flow-insensitive:
        the order affects convergence speed and trace ordering, never
        the fixpoint.
        """
        cfg = build_cfg(self.func)
        blocks = self.func.blocks
        order: List[Instr] = []
        for label in cfg.reverse_postorder():
            order.extend(blocks[label].instrs)
        return order

    # ------------------------------------------------------------------
    # schedulers
    # ------------------------------------------------------------------

    def _sweep_limit(self, n_instrs: int) -> int:
        """Convergence bound proportional to function size."""
        return max(1, n_instrs + CONVERGENCE_SLACK)

    def _diverged(self, scheduler: str, rounds: int, n_instrs: int,
                  pending: int, evaluations: int) -> RuntimeError:
        return RuntimeError(
            f"taint fixpoint did not converge in {self.func.name!r}: "
            f"{scheduler} solver ran {rounds} rounds over {n_instrs} "
            f"instructions ({evaluations} transfer evaluations, "
            f"{pending} still pending) — bound is instructions + "
            f"{CONVERGENCE_SLACK}, so a transfer function is not monotone"
        )

    def _solve_dense(self, order: List[Instr]) -> None:
        """Chaotic iteration: full sweeps until nothing changes."""
        limit = self._sweep_limit(len(order))
        sweeps = 0
        evaluations = 0
        changed = True
        while changed:
            changed = False
            sweeps += 1
            if sweeps > limit:
                raise self._diverged("dense", sweeps, len(order),
                                     len(order), evaluations)
            for instr in order:
                evaluations += 1
                if self._transfer(instr):
                    changed = True
        perf.bump("solver.dense.sweeps", sweeps)
        perf.bump("solver.dense.evals", evaluations)

    def _solve_sparse(self, order: List[Instr],
                      users: Dict[Value, List[int]]) -> None:
        """Worklist iteration replaying the dense sweep schedule.

        Each round is a min-heap of pending positions, popped in
        ascending order (the heap only ever holds positions after the
        last pop, so a position fires at most once per round).  When a
        transfer at position ``p`` changes its destination, every user
        of that value after ``p`` joins the current round and every
        user at or before ``p`` joins the next — exactly the positions
        at which the dense schedule would next observe the change.
        Instructions left out of a round are no-ops by construction:
        their inputs have not changed since they last fired.
        """
        n = len(order)
        limit = self._sweep_limit(n)
        current = list(range(n))  # ascending == already a valid heap
        in_current = [True] * n
        nxt: List[int] = []
        in_next = [False] * n
        rounds = 0
        pops = 0
        heappop, heappush = heapq.heappop, heapq.heappush
        transfer = self._transfer
        users_get = users.get
        while current:
            rounds += 1
            if rounds > limit:
                raise self._diverged("sparse", rounds, n, len(current), pops)
            while current:
                pos = heappop(current)
                in_current[pos] = False
                pops += 1
                instr = order[pos]
                if not transfer(instr):
                    continue
                dst = instr.flow_dst()
                for user in users_get(dst, ()):
                    if user > pos:
                        if not in_current[user]:
                            in_current[user] = True
                            heappush(current, user)
                    elif not in_next[user]:
                        in_next[user] = True
                        nxt.append(user)
            for pos in nxt:
                in_next[pos] = False
                in_current[pos] = True
            heapq.heapify(nxt)
            current, nxt = nxt, []
        perf.bump("solver.sparse.rounds", rounds)
        perf.bump("solver.sparse.pops", pops)

    def _use_edges(self, order: List[Instr]) -> Dict[Value, List[int]]:
        """value -> ascending positions of instructions it feeds.

        Built from :meth:`~repro.lang.ir.Instr.flow_srcs`, filtered to
        the calls whose transfer actually reads argument taint — an
        opaque or summarized call's output is independent of its
        arguments, so re-evaluating it on argument changes would be
        pure overhead (though never incorrect).
        """
        users: Dict[Value, List[int]] = {}
        for pos, instr in enumerate(order):
            if type(instr) is CallInstr and instr.func not in TAINT_PRESERVING_CALLS:
                continue
            for src in instr.flow_srcs():
                t = type(src)
                if src is None or t is Const or t is StrConst:
                    continue
                users.setdefault(src, []).append(pos)
        return users

    # ------------------------------------------------------------------
    # transfer functions
    # ------------------------------------------------------------------

    def _transfer(self, instr: Instr) -> bool:
        state = self.state
        t = type(instr)  # exact types: the IR hierarchy is flat
        if t is Move:
            return self._add(instr.dst, state.labels(instr.src), instr)
        if t is BinOp:
            return self._add(instr.dst, self._binop_labels(instr), instr)
        if t is CallInstr:
            return self._transfer_call(instr)
        if t is LoadField:
            key = (instr.struct, instr.field)
            labels = self._load_labels.get(key)
            if labels is None:
                labels = lattice.join(
                    lattice.intern_labels(frozenset([FieldTaint(*key)])),
                    self.field_injections.get(key, lattice.EMPTY),
                )
                self._load_labels[key] = labels
            return self._add(instr.dst, labels, instr)
        if t is UnOp:
            return self._add(instr.dst, state.labels(instr.operand), instr)
        if t is LoadIndex:
            return self._add(instr.dst, state.labels(instr.base), instr)
        if t is StoreIndex:
            # Writing through an array cell taints the base aggregate.
            return self._add(instr.base, state.labels(instr.src), instr)
        return False

    def _binop_labels(self, instr: BinOp) -> FrozenSet[Label]:
        state = self.state
        combined = lattice.join(state.labels(instr.left), state.labels(instr.right))
        if instr.op == "&" and combined:
            feature = _feature_of(instr.left) or _feature_of(instr.right)
            if feature is not None and any(
                isinstance(l, FieldTaint) and l.feature is None for l in combined
            ):
                refined: Set[Label] = set()
                for label in combined:
                    if isinstance(label, FieldTaint) and label.feature is None:
                        refined.add(FieldTaint(label.struct, label.field, feature))
                    else:
                        refined.add(label)
                combined = lattice.intern_labels(refined)
        return combined

    def _transfer_call(self, instr: CallInstr) -> bool:
        state = self.state
        if instr.dst is None:
            return False
        if instr.func in TAINT_PRESERVING_CALLS:
            labels = lattice.EMPTY
            for arg in instr.args:
                labels = lattice.join(labels, state.labels(arg))
            changed = self._add(instr.dst, labels, instr)
            if instr.func in TYPED_PARSERS and instr.dst not in state.parsed_type:
                state.parsed_type[instr.dst] = TYPED_PARSERS[instr.func]
                changed = True
            return changed
        if instr.func in self.call_returns:
            return self._add(instr.dst, self.call_returns[instr.func], instr)
        # Opaque call: intra-procedural analysis stops here (paper §4.1).
        return False

    def _add(self, dst: Value, labels: FrozenSet[Label], instr: Instr) -> bool:
        if dst is None or not labels:
            return False
        state = self.state
        current = state.taint.get(dst, lattice.EMPTY)
        merged = lattice.join(current, labels)
        # Interned sets settle "did anything change" on the pointer
        # check; the plain (legacy) lattice allocates fresh unions, so
        # equal content needs the comparison — same fixpoint, more work.
        if merged is current or merged == current:
            return False
        state.taint[dst] = merged
        state._mpm_cache = None
        trace = state.trace.setdefault(dst, [])
        if instr not in trace:
            trace.append(instr)
        # Parsed-type information rides along moves into named variables.
        if type(instr) is Move and instr.src in state.parsed_type:
            state.parsed_type.setdefault(dst, state.parsed_type[instr.src])
        return True

    # ------------------------------------------------------------------
    # field events
    # ------------------------------------------------------------------

    def _collect_field_events(self, field_instrs: List[Instr]) -> None:
        state = self.state
        for instr in field_instrs:
            if isinstance(instr, StoreField):
                labels = set(state.labels(instr.src))
                feature = self._stored_feature(instr)
                if feature is not None:
                    labels.add(ParamRef(self.component, feature))
                state.field_writes.append(FieldWrite(
                    struct=instr.struct,
                    field=instr.field,
                    labels=frozenset(labels),
                    function=self.func.name,
                    instr=instr,
                ))
            elif isinstance(instr, LoadField):
                state.field_reads.append(FieldRead(
                    struct=instr.struct,
                    field=instr.field,
                    dst=instr.dst,
                    function=self.func.name,
                    instr=instr,
                ))

    def _stored_feature(self, store: StoreField) -> Optional[str]:
        """Feature name when the stored value ORs in a feature macro.

        Recognizes ``word |= EXT*_FEATURE_*`` — the idiom every
        component uses to set feature bits, which lets the analyzer
        attribute the store to the feature parameter.
        """
        value = store.src
        for definition in self.state.defining(value):
            if isinstance(definition, BinOp) and definition.op in ("|", "|="):
                feature = _feature_of(definition.left) or _feature_of(definition.right)
                if feature is not None:
                    return feature
        return None


def _feature_of(value: Value) -> Optional[str]:
    if isinstance(value, Const) and value.macro in FEATURE_MACROS:
        return FEATURE_MACROS[value.macro]
    return None


#: (unit fingerprint, function name, sources fingerprint, component,
#: solver) -> TaintState.  Shared across scenarios and checkers: the
#: four Table-5 scenarios all pre-select e.g. ``ext4_fill_super``, and
#: the three checkers each re-run extraction, so one process used to
#: analyze the same function a dozen times.  Safe to share because a
#: TaintState is never mutated after :meth:`TaintEngine.run` returns,
#: keys are pure content (a re-loaded module with the same source hits
#: the same entry), and only the hook-free intra-procedural engine is
#: memoized — :mod:`repro.analysis.interproc` builds its hooked engines
#: directly.  The solver and lattice modes are part of the key so
#: differential tests comparing schedulers or lattice implementations
#: never serve one configuration from another's cache.
_ANALYSIS_MEMO: Dict[Tuple[str, str, str, str, str, str], TaintState] = {}

perf.register_memo("taint.analyze", _ANALYSIS_MEMO.clear)


def _memo_key(func: Function, sources: ComponentSources, component: str,
              solver: str) -> Optional[Tuple[str, str, str, str, str, str]]:
    """The analysis-memo key for ``func``, or None when unkeyable."""
    fingerprint = getattr(func, "module_fingerprint", "")
    if not fingerprint:
        return None
    return (fingerprint, func.name, sources.fingerprint(), component, solver,
            lattice.resolve_lattice_mode())


def memo_peek(func: Function, sources: ComponentSources, component: str,
              solver: Optional[str] = None) -> Optional[TaintState]:
    """The memoized state for ``func``, without computing on a miss."""
    key = _memo_key(func, sources, component, resolve_solver(solver))
    return _ANALYSIS_MEMO.get(key) if key is not None else None


def memo_seed(func: Function, sources: ComponentSources, component: str,
              state: TaintState, solver: Optional[str] = None) -> bool:
    """Install a state (e.g. decoded from the disk store) into the memo.

    Returns False when ``func`` carries no module fingerprint (nothing
    to key by).  Seeding makes every later :func:`analyze_function`
    call for the same content return *this exact object*, which is what
    lets the constraint layer's identity-checked memo pair up with it.
    """
    key = _memo_key(func, sources, component, resolve_solver(solver))
    if key is None:
        return False
    _ANALYSIS_MEMO[key] = state
    return True


def analyze_function(func: Function, sources: ComponentSources,
                     component: str, solver: Optional[str] = None) -> TaintState:
    """Run the taint engine on one function (memoized per content).

    Results are memoized when the function belongs to a fingerprinted
    module (anything loaded through :mod:`repro.corpus.loader`); ad-hoc
    functions built by tests analyze unmemoized.  ``solver`` picks the
    fixpoint scheduler; ``None`` defers to ``$REPRO_SOLVER``.
    """
    mode = resolve_solver(solver)
    fingerprint = getattr(func, "module_fingerprint", "")
    key: Optional[Tuple[str, str, str, str, str, str]] = None
    if fingerprint:
        key = (fingerprint, func.name, sources.fingerprint(), component, mode,
               lattice.resolve_lattice_mode())
        cached = _ANALYSIS_MEMO.get(key)
        if cached is not None:
            perf.bump("memo.taint.hit")
            return cached
        perf.bump("memo.taint.miss")
    with obs_span("taint.solve", function=func.name, solver=mode), \
            perf.timed("analysis.taint"):
        state = TaintEngine(func, sources, component, solver=mode).run()
    if key is not None:
        _ANALYSIS_MEMO[key] = state
    return state
