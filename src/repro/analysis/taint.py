"""Intra-procedural taint analysis over the mini-C IR (paper §4.1).

Faithful to the paper's description: we maintain (a) a *set* of tainted
values — the initial configuration variables and everything derived
from them, (b) a *trace* mapping each tainted value to the instructions
that tainted it, and (c) a *multi-parameter map* for values derived
from more than one parameter.  Propagation is a flow-insensitive
fixpoint, so loops converge and kills are ignored — the same
imprecision the paper reports (and the mechanism behind its false
positives).

Two taint label kinds exist:

- :class:`~repro.analysis.model.ParamRef` — a configuration parameter,
- :class:`FieldTaint` — "came from metadata field ``struct.field``",
  optionally refined to a specific feature bit when the load was masked
  with a known feature macro.

Field stores and loads are recorded as :class:`FieldWrite` /
:class:`FieldRead` events; :mod:`repro.analysis.bridge` joins them
across components.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro import perf
from repro.analysis.model import ParamRef
from repro.analysis.sources import (
    BRIDGE_STRUCT,
    FEATURE_MACROS,
    TAINT_PRESERVING_CALLS,
    TYPED_PARSERS,
    ComponentSources,
)
from repro.lang.ir import (
    BinOp,
    Branch,
    CallInstr,
    Const,
    Function,
    Instr,
    Jump,
    LoadField,
    LoadIndex,
    Move,
    Ret,
    StoreField,
    StoreIndex,
    StrConst,
    Temp,
    UnOp,
    Value,
    Var,
)


@dataclass(frozen=True)
class FieldTaint:
    """Taint label: value derived from a metadata field.

    ``feature`` is set when the value was masked with a known feature
    macro, pinning it to one feature bit of a feature word.
    """

    struct: str
    field: str
    feature: Optional[str] = None

    def __str__(self) -> str:
        suffix = f"#{self.feature}" if self.feature else ""
        return f"{self.struct}.{self.field}{suffix}"


Label = Union[ParamRef, FieldTaint]


@dataclass
class FieldWrite:
    """One store into a metadata field, with the taint of the value."""

    struct: str
    field: str
    labels: FrozenSet[Label]
    function: str
    instr: StoreField


@dataclass
class FieldRead:
    """One load from a metadata field."""

    struct: str
    field: str
    dst: Temp
    function: str
    instr: LoadField


@dataclass
class TaintState:
    """Result of analyzing one function."""

    function: str
    taint: Dict[Value, FrozenSet[Label]] = dc_field(default_factory=dict)
    trace: Dict[Value, List[Instr]] = dc_field(default_factory=dict)
    parsed_type: Dict[Value, str] = dc_field(default_factory=dict)
    field_writes: List[FieldWrite] = dc_field(default_factory=list)
    field_reads: List[FieldRead] = dc_field(default_factory=list)
    defs: Dict[Value, List[Instr]] = dc_field(default_factory=dict)

    def labels(self, value: Value) -> FrozenSet[Label]:
        """Taint labels of ``value`` (constants are clean)."""
        if isinstance(value, (Const, StrConst)) or value is None:
            return frozenset()
        return self.taint.get(value, frozenset())

    def params(self, value: Value) -> FrozenSet[ParamRef]:
        """Only the parameter labels of ``value``."""
        return frozenset(l for l in self.labels(value) if isinstance(l, ParamRef))

    def fields(self, value: Value) -> FrozenSet[FieldTaint]:
        """Only the metadata-field labels of ``value``."""
        return frozenset(l for l in self.labels(value) if isinstance(l, FieldTaint))

    @property
    def multi_param_map(self) -> Dict[Value, FrozenSet[ParamRef]]:
        """Values derived from two or more parameters (paper §4.1)."""
        out = {}
        for value, labels in self.taint.items():
            params = frozenset(l for l in labels if isinstance(l, ParamRef))
            if len(params) >= 2:
                out[value] = params
        return out

    def defining(self, value: Value) -> List[Instr]:
        """Instructions that define ``value`` in this function."""
        return self.defs.get(value, [])


class TaintEngine:
    """Analyze one function of one component's translation unit.

    The three optional hooks power the inter-procedural extension
    (:mod:`repro.analysis.interproc`); they default to empty, which is
    the paper's intra-procedural prototype:

    - ``initial_taint`` — extra labels seeded onto named values (e.g.
      callee parameters receiving caller-argument taint),
    - ``field_injections`` — labels every load of a (struct, field)
      additionally receives (unit-wide store/load matching),
    - ``call_returns`` — labels the result of a call to a unit-local
      function receives (return-taint summaries).
    """

    def __init__(self, func: Function, sources: ComponentSources,
                 component: str,
                 initial_taint: Optional[Dict[str, FrozenSet[Label]]] = None,
                 field_injections: Optional[Dict[Tuple[str, str], FrozenSet[Label]]] = None,
                 call_returns: Optional[Dict[str, FrozenSet[Label]]] = None) -> None:
        self.func = func
        self.sources = sources
        self.component = component
        self.initial_taint = initial_taint or {}
        self.field_injections = field_injections or {}
        self.call_returns = call_returns or {}
        self.state = TaintState(function=func.name)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self) -> TaintState:
        """Run the fixpoint; returns the populated TaintState."""
        state = self.state
        for var, param in self.sources.sources_for(self.func.name).items():
            state.taint[Var(var)] = frozenset([param])
        for var, labels in self.initial_taint.items():
            state.taint[Var(var)] = state.taint.get(Var(var), frozenset()) | labels
        self._index_defs()
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > 1000:
                raise RuntimeError(
                    f"taint fixpoint did not converge in {self.func.name}"
                )
            for instr in self.func.instructions():
                if self._transfer(instr):
                    changed = True
        self._collect_field_events()
        return state

    def _index_defs(self) -> None:
        for instr in self.func.instructions():
            for dst in instr.defs():
                self.state.defs.setdefault(dst, []).append(instr)

    # ------------------------------------------------------------------
    # transfer functions
    # ------------------------------------------------------------------

    def _transfer(self, instr: Instr) -> bool:
        state = self.state
        if isinstance(instr, Move):
            return self._add(instr.dst, state.labels(instr.src), instr)
        if isinstance(instr, BinOp):
            labels = self._binop_labels(instr)
            changed = self._add(instr.dst, labels, instr)
            if instr.dst in state.parsed_type:
                pass
            return changed
        if isinstance(instr, UnOp):
            return self._add(instr.dst, state.labels(instr.operand), instr)
        if isinstance(instr, LoadField):
            labels: Set[Label] = {FieldTaint(instr.struct, instr.field)}
            labels |= self.field_injections.get((instr.struct, instr.field),
                                                frozenset())
            return self._add(instr.dst, frozenset(labels), instr)
        if isinstance(instr, LoadIndex):
            return self._add(instr.dst, state.labels(instr.base), instr)
        if isinstance(instr, StoreIndex):
            # Writing through an array cell taints the base aggregate.
            return self._add(instr.base, state.labels(instr.src), instr)
        if isinstance(instr, CallInstr):
            return self._transfer_call(instr)
        return False

    def _binop_labels(self, instr: BinOp) -> FrozenSet[Label]:
        state = self.state
        left, right = state.labels(instr.left), state.labels(instr.right)
        combined: Set[Label] = set(left | right)
        if instr.op == "&":
            feature = _feature_of(instr.left) or _feature_of(instr.right)
            if feature is not None:
                refined: Set[Label] = set()
                for label in combined:
                    if isinstance(label, FieldTaint) and label.feature is None:
                        refined.add(FieldTaint(label.struct, label.field, feature))
                    else:
                        refined.add(label)
                combined = refined
        return frozenset(combined)

    def _transfer_call(self, instr: CallInstr) -> bool:
        state = self.state
        if instr.dst is None:
            return False
        if instr.func in TAINT_PRESERVING_CALLS:
            labels: Set[Label] = set()
            for arg in instr.args:
                labels |= state.labels(arg)
            changed = self._add(instr.dst, frozenset(labels), instr)
            if instr.func in TYPED_PARSERS and instr.dst not in state.parsed_type:
                state.parsed_type[instr.dst] = TYPED_PARSERS[instr.func]
                changed = True
            return changed
        if instr.func in self.call_returns:
            return self._add(instr.dst, self.call_returns[instr.func], instr)
        # Opaque call: intra-procedural analysis stops here (paper §4.1).
        return False

    def _add(self, dst: Value, labels: FrozenSet[Label], instr: Instr) -> bool:
        if dst is None or not labels:
            return False
        state = self.state
        current = state.taint.get(dst, frozenset())
        merged = current | labels
        if merged == current:
            return False
        state.taint[dst] = merged
        state.trace.setdefault(dst, [])
        if instr not in state.trace[dst]:
            state.trace[dst].append(instr)
        # Parsed-type information rides along moves into named variables.
        if isinstance(instr, Move) and instr.src in state.parsed_type:
            state.parsed_type.setdefault(dst, state.parsed_type[instr.src])
        return True

    # ------------------------------------------------------------------
    # field events
    # ------------------------------------------------------------------

    def _collect_field_events(self) -> None:
        state = self.state
        for instr in self.func.instructions():
            if isinstance(instr, StoreField):
                labels = set(state.labels(instr.src))
                feature = self._stored_feature(instr)
                if feature is not None:
                    labels.add(ParamRef(self.component, feature))
                state.field_writes.append(FieldWrite(
                    struct=instr.struct,
                    field=instr.field,
                    labels=frozenset(labels),
                    function=self.func.name,
                    instr=instr,
                ))
            elif isinstance(instr, LoadField):
                state.field_reads.append(FieldRead(
                    struct=instr.struct,
                    field=instr.field,
                    dst=instr.dst,
                    function=self.func.name,
                    instr=instr,
                ))

    def _stored_feature(self, store: StoreField) -> Optional[str]:
        """Feature name when the stored value ORs in a feature macro.

        Recognizes ``word |= EXT*_FEATURE_*`` — the idiom every
        component uses to set feature bits, which lets the analyzer
        attribute the store to the feature parameter.
        """
        value = store.src
        for definition in self.state.defining(value):
            if isinstance(definition, BinOp) and definition.op in ("|", "|="):
                feature = _feature_of(definition.left) or _feature_of(definition.right)
                if feature is not None:
                    return feature
        return None


def _feature_of(value: Value) -> Optional[str]:
    if isinstance(value, Const) and value.macro in FEATURE_MACROS:
        return FEATURE_MACROS[value.macro]
    return None


#: (unit fingerprint, function name, sources fingerprint, component) ->
#: TaintState.  Shared across scenarios and checkers: the four Table-5
#: scenarios all pre-select e.g. ``ext4_fill_super``, and the three
#: checkers each re-run extraction, so one process used to analyze the
#: same function a dozen times.  Safe to share because a TaintState is
#: never mutated after :meth:`TaintEngine.run` returns, keys are pure
#: content (a re-loaded module with the same source hits the same
#: entry), and only the hook-free intra-procedural engine is memoized —
#: :mod:`repro.analysis.interproc` builds its hooked engines directly.
_ANALYSIS_MEMO: Dict[Tuple[str, str, str, str], TaintState] = {}

perf.register_memo("taint.analyze", _ANALYSIS_MEMO.clear)


def analyze_function(func: Function, sources: ComponentSources,
                     component: str) -> TaintState:
    """Run the taint engine on one function (memoized per content).

    Results are memoized when the function belongs to a fingerprinted
    module (anything loaded through :mod:`repro.corpus.loader`); ad-hoc
    functions built by tests analyze unmemoized.
    """
    fingerprint = getattr(func, "module_fingerprint", "")
    key: Optional[Tuple[str, str, str, str]] = None
    if fingerprint:
        key = (fingerprint, func.name, sources.fingerprint(), component)
        cached = _ANALYSIS_MEMO.get(key)
        if cached is not None:
            perf.bump("memo.taint.hit")
            return cached
        perf.bump("memo.taint.miss")
    with perf.timed("analysis.taint"):
        state = TaintEngine(func, sources, component).run()
    if key is not None:
        _ANALYSIS_MEMO[key] = state
    return state
