"""Configuration-source annotations (the paper's manual annotations).

The static analyzer needs to know where configuration values *enter*
each component: which variables hold parsed parameter values, and which
``#define`` feature macros correspond to which named feature parameter.
This module declares both, per corpus component.  Annotations use
variable names as they appear in the corpus translation units; a
mismatch raises :class:`~repro.errors.SourceAnnotationError` at
analysis setup so drift between corpus and annotations is caught early.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.analysis.model import ParamRef

#: Feature-bit macro -> canonical feature parameter name.  The writer
#: component for features is always mke2fs (features are chosen at
#: create time), so bridged reads resolve to ``mke2fs.<feature>``.
FEATURE_MACROS: Dict[str, str] = {
    "EXT2_FEATURE_COMPAT_HAS_JOURNAL": "has_journal",
    "EXT2_FEATURE_COMPAT_EXT_ATTR": "ext_attr",
    "EXT2_FEATURE_COMPAT_RESIZE_INODE": "resize_inode",
    "EXT2_FEATURE_COMPAT_DIR_INDEX": "dir_index",
    "EXT4_FEATURE_COMPAT_SPARSE_SUPER2": "sparse_super2",
    "EXT2_FEATURE_INCOMPAT_FILETYPE": "filetype",
    "EXT2_FEATURE_INCOMPAT_META_BG": "meta_bg",
    "EXT3_FEATURE_INCOMPAT_EXTENTS": "extent",
    "EXT4_FEATURE_INCOMPAT_64BIT": "64bit",
    "EXT4_FEATURE_INCOMPAT_MMP": "mmp",
    "EXT4_FEATURE_INCOMPAT_FLEX_BG": "flex_bg",
    "EXT4_FEATURE_INCOMPAT_EA_INODE": "ea_inode",
    "EXT4_FEATURE_INCOMPAT_LARGEDIR": "large_dir",
    "EXT4_FEATURE_INCOMPAT_INLINE_DATA": "inline_data",
    "EXT4_FEATURE_INCOMPAT_ENCRYPT": "encrypt",
    "EXT4_FEATURE_INCOMPAT_CASEFOLD": "casefold",
    "EXT3_FEATURE_INCOMPAT_JOURNAL_DEV": "journal_dev",
    "EXT2_FEATURE_RO_COMPAT_SPARSE_SUPER": "sparse_super",
    "EXT2_FEATURE_RO_COMPAT_LARGE_FILE": "large_file",
    "EXT4_FEATURE_RO_COMPAT_HUGE_FILE": "huge_file",
    "EXT4_FEATURE_RO_COMPAT_GDT_CSUM": "uninit_bg",
    "EXT4_FEATURE_RO_COMPAT_DIR_NLINK": "dir_nlink",
    "EXT4_FEATURE_RO_COMPAT_EXTRA_ISIZE": "extra_isize",
    "EXT4_FEATURE_RO_COMPAT_QUOTA": "quota",
    "EXT4_FEATURE_RO_COMPAT_BIGALLOC": "bigalloc",
    "EXT4_FEATURE_RO_COMPAT_METADATA_CSUM": "metadata_csum",
    "EXT4_FEATURE_RO_COMPAT_PROJECT": "project",
    "EXT4_FEATURE_RO_COMPAT_VERITY": "verity",
    # XFS feature bits (§6 "other file systems" extension).
    "XFS_SB_VERSION5_CRC": "crc",
    "XFS_SB_FEAT_RO_FINOBT": "finobt",
    "XFS_SB_FEAT_RO_REFLINK": "reflink",
    "XFS_SB_FEAT_RO_RMAPBT": "rmapbt",
}

#: The shared metadata structures used as the cross-component bridge.
#: Ext4's superblock is the paper's; the XFS superblock supports the
#: §6 "other file systems" extension.
BRIDGE_STRUCT = "ext2_super_block"
BRIDGE_STRUCTS: FrozenSet[str] = frozenset({"ext2_super_block", "xfs_sb"})

#: Typed parse helpers -> the C type their result certifies (SD data type).
TYPED_PARSERS: Dict[str, str] = {
    "atoi": "int",
    "atol": "long",
    "strtol": "long",
    "strtoul": "unsigned long",
    "parse_int": "int",
    "parse_uint": "unsigned int",
    "parse_ulong": "unsigned long",
    "parse_num_blocks": "unsigned long",
    "match_int": "int",
}

#: Calls whose return value is tainted by their arguments (data-flow
#: models for known library helpers; everything else is opaque, which
#: is the paper's intra-procedural limitation).
TAINT_PRESERVING_CALLS: FrozenSet[str] = frozenset(TYPED_PARSERS) | frozenset(
    {"abs", "min", "max", "ext2fs_div_ceil", "ext2fs_blocks_count"}
)


@dataclass(frozen=True)
class ComponentSources:
    """Initial configuration variables of one component.

    ``param_vars`` maps function name (or ``"*"`` for every function)
    to {variable name: parameter}.  Variables listed under ``"*"`` are
    the component's parsed-option globals.
    """

    component: str
    param_vars: Dict[str, Dict[str, ParamRef]] = field(default_factory=dict)

    def sources_for(self, function: str) -> Dict[str, ParamRef]:
        """Variable-to-parameter map for one function ('*' merged in)."""
        merged: Dict[str, ParamRef] = {}
        merged.update(self.param_vars.get("*", {}))
        merged.update(self.param_vars.get(function, {}))
        return merged

    def fingerprint(self) -> str:
        """Stable content hash of these annotations.

        Part of the per-function memo keys in
        :mod:`repro.analysis.taint` / ``constraints``: two annotation
        objects with the same content share cache entries, and object
        identity (which Python may recycle) never leaks into a key.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = (self.component, tuple(sorted(
                (fn, tuple(sorted(
                    (var, ref.component, ref.name)
                    for var, ref in mapping.items()
                )))
                for fn, mapping in self.param_vars.items()
            )))
            cached = hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]
            self.__dict__["_fingerprint"] = cached
        return cached


def _p(component: str, name: str) -> ParamRef:
    return ParamRef(component, name)


def _globals(component: str, names: Dict[str, str]) -> Dict[str, ParamRef]:
    return {var: _p(component, param) for var, param in names.items()}


MKE2FS_SOURCES = ComponentSources(
    component="mke2fs",
    param_vars={
        "*": _globals("mke2fs", {
            # parsed-option globals, mirroring real mke2fs.c globals
            "blocksize": "blocksize",
            "cluster_size": "cluster_size",
            "inode_ratio": "inode_ratio",
            "inode_size": "inode_size",
            "reserved_percent": "reserved_percent",
            "blocks_per_group": "blocks_per_group",
            "num_groups": "number_of_groups",
            "num_inodes": "inode_count",
            "journal_size": "journal_size",
            "fs_blocks_count": "fs_size",
            "quiet_flag": "quiet",
            "dry_run_flag": "dry_run",
            "check_badblocks_flag": "check_badblocks",
            "force_flag": "force",
            "fs_stride": "stride",
            "fs_stripe_width": "stripe_width",
            "resize_limit": "resize_limit",
            # feature request flags (set while parsing -O)
            "f_has_journal": "has_journal",
            "f_ext_attr": "ext_attr",
            "f_resize_inode": "resize_inode",
            "f_dir_index": "dir_index",
            "f_sparse_super": "sparse_super",
            "f_sparse_super2": "sparse_super2",
            "f_meta_bg": "meta_bg",
            "f_extent": "extent",
            "f_64bit": "64bit",
            "f_bigalloc": "bigalloc",
            "f_inline_data": "inline_data",
            "f_metadata_csum": "metadata_csum",
            "f_uninit_bg": "uninit_bg",
            "f_journal_dev": "journal_dev",
            "f_encrypt": "encrypt",
            "f_casefold": "casefold",
            "f_flex_bg": "flex_bg",
            "f_ea_inode": "ea_inode",
            "f_large_dir": "large_dir",
            "f_huge_file": "huge_file",
            "f_large_file": "large_file",
            "f_dir_nlink": "dir_nlink",
            "f_quota": "quota",
            "f_project": "project",
            "f_verity": "verity",
            "f_mmp": "mmp",
        }),
    },
)

MOUNT_SOURCES = ComponentSources(
    component="mount",
    param_vars={
        "*": _globals("mount", {
            "opt_ro": "ro",
            "opt_dax": "dax",
            "opt_noload": "noload",
            "opt_data_mode": "data",
            "opt_data_journal": "data",
            "opt_commit": "commit",
            "opt_barrier": "barrier",
            "opt_journal_checksum": "journal_checksum",
            "opt_journal_async_commit": "journal_async_commit",
            "opt_delalloc": "delalloc",
            "opt_resuid": "resuid",
            "opt_resgid": "resgid",
            "opt_journal_ioprio": "journal_ioprio",
            "opt_stripe": "stripe",
            "opt_auto_da_alloc": "auto_da_alloc",
            "opt_max_batch_time": "max_batch_time",
            "opt_min_batch_time": "min_batch_time",
        }),
    },
)

#: The kernel-side mount path: the parsed mount options are annotated
#: (they are mount-stage parameters even though the kernel tokenizes
#: them), but the on-disk superblock values it validates against live
#: in ext4_sb_info *copies* filled by ext4_load_super — reaching them
#: from ext4_fill_super needs the inter-procedural extension.
EXT4_KERNEL_SOURCES = ComponentSources(
    component="ext4",
    param_vars={
        "*": {
            "kopt_dax": _p("mount", "dax"),
            "kopt_data_journal": _p("mount", "data"),
        },
    },
)

E4DEFRAG_SOURCES = ComponentSources(
    component="e4defrag",
    param_vars={
        "*": _globals("e4defrag", {
            "mode_check_only": "check_only",
            "verbose_flag": "verbose",
        }),
    },
)

RESIZE2FS_SOURCES = ComponentSources(
    component="resize2fs",
    param_vars={
        "*": _globals("resize2fs", {
            "new_size": "size",
            "flag_force": "force",
            "flag_minimum": "minimize",
            "flag_print_min": "print_min_size",
            "flag_64bit": "enable_64bit",
            "flag_32bit": "disable_64bit",
            "flag_progress": "progress",
            "raid_stride": "stride",
        }),
    },
)

E2FSCK_SOURCES = ComponentSources(
    component="e2fsck",
    param_vars={
        "*": _globals("e2fsck", {
            "opt_preen": "preen",
            "opt_yes": "assume_yes",
            "opt_no": "no_changes",
            "opt_force": "force",
            "opt_superblock": "superblock",
            "opt_blocksize": "blocksize",
            "opt_optimize_dirs": "optimize_dirs",
        }),
    },
)

#: Shared-library translation unit (libext2fs): its validation helpers
#: are invoked by the offline utilities on mkfs-chosen values, so their
#: parameters are annotated with the originating mke2fs parameters —
#: exactly the kind of annotation §4.1 calls "manual".
LIBEXT2FS_SOURCES = ComponentSources(
    component="mke2fs",
    param_vars={
        "ext2fs_check_blocksize": {"blocksize_opt": _p("mke2fs", "blocksize")},
        "ext2fs_check_inode_geometry": {
            "inode_size_opt": _p("mke2fs", "inode_size"),
            "inode_ratio_opt": _p("mke2fs", "inode_ratio"),
        },
    },
)

XFS_MKFS_SOURCES = ComponentSources(
    component="mkfs.xfs",
    param_vars={
        "*": _globals("mkfs.xfs", {
            "xfs_blocksize": "blocksize",
            "xfs_sectsize": "sectsize",
            "xfs_agcount": "agcount",
            "xfs_dblocks": "dblocks",
            "xfs_crc": "crc",
            "xfs_finobt": "finobt",
            "xfs_reflink": "reflink",
            "xfs_rmapbt": "rmapbt",
        }),
    },
)

XFS_GROWFS_SOURCES = ComponentSources(
    component="xfs_growfs",
    param_vars={
        "*": _globals("xfs_growfs", {
            "grow_dblocks": "dblocks",
            "grow_datasec": "datasec",
        }),
    },
)

SOURCES_BY_UNIT: Dict[str, ComponentSources] = {
    "mke2fs.c": MKE2FS_SOURCES,
    "mount.c": MOUNT_SOURCES,
    "ext4_super.c": EXT4_KERNEL_SOURCES,
    "e4defrag.c": E4DEFRAG_SOURCES,
    "resize2fs.c": RESIZE2FS_SOURCES,
    "e2fsck.c": E2FSCK_SOURCES,
    "libext2fs.c": LIBEXT2FS_SOURCES,
    "xfs_mkfs.c": XFS_MKFS_SOURCES,
    "xfs_growfs.c": XFS_GROWFS_SOURCES,
}


def feature_param(macro: Optional[str]) -> Optional[str]:
    """Feature name for a feature-bit macro, or None."""
    if macro is None:
        return None
    return FEATURE_MACROS.get(macro)
