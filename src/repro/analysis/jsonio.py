"""JSON persistence for extracted dependencies (paper §4.1).

"The extracted dependencies are stored in JSON files which describe
both the parameters and the associated constraints."
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from repro.analysis.model import Dependency, Evidence, ParamRef, SubKind


def dependency_to_dict(dep: Dependency) -> dict:
    """One dependency as a JSON-ready dict."""
    return {
        "kind": dep.kind.value,
        "category": dep.category.value,
        "parameters": [
            {"component": p.component, "name": p.name} for p in dep.params
        ],
        "constraint": dep.constraint_dict,
        "bridge_field": dep.bridge_field,
        "evidence": {
            "file": dep.evidence.filename,
            "function": dep.evidence.function,
            "line": dep.evidence.line,
        },
        "description": dep.describe(),
        "key": dep.key(),
    }


def dependency_from_dict(data: dict) -> Dependency:
    """Rebuild a dependency from its JSON dict."""
    return Dependency(
        kind=SubKind(data["kind"]),
        params=tuple(
            ParamRef(p["component"], p["name"]) for p in data["parameters"]
        ),
        constraint=tuple(sorted(data.get("constraint", {}).items())),
        bridge_field=data.get("bridge_field"),
        evidence=Evidence(
            data.get("evidence", {}).get("file", ""),
            data.get("evidence", {}).get("function", ""),
            data.get("evidence", {}).get("line", 0),
        ),
    )


def dump_dependencies(deps: List[Dependency], fp: Union[str, IO[str]]) -> None:
    """Write dependencies as a JSON array (path or open file)."""
    payload = [dependency_to_dict(d) for d in deps]
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    else:
        json.dump(payload, fp, indent=2, sort_keys=True)


def load_dependencies(fp: Union[str, IO[str]]) -> List[Dependency]:
    """Read dependencies from a JSON array (path or open file)."""
    if isinstance(fp, str):
        with open(fp, encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(fp)
    return [dependency_from_dict(item) for item in payload]
