"""Scenario-driven extraction (paper §4.3, Table 5).

An extraction *scenario* is one row of Table 5: a pipeline of
components plus the pre-selected functions analyzed in each ("At the
time of this writing, the static analyzer can handle intra-procedure
taint analysis ... so we can only extract dependencies via a few
pre-selected functions").  The extractor runs taint + constraint
derivation per function, bridges field traffic across components in
pipeline order, and dedupes into a unique dependency set per scenario
and across scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bridge import ComponentSummary, MetadataBridge
from repro.analysis.constraints import (
    derive_constraints,
    findings_peek,
    findings_seed,
)
from repro.analysis.groundtruth import is_false_positive
from repro.analysis.model import Category, Dependency
from repro.analysis.sources import SOURCES_BY_UNIT
from repro.analysis.taint import (
    analyze_function,
    memo_peek,
    memo_seed,
    resolve_solver,
)
from repro.corpus import cache as disk
from repro.corpus.loader import CorpusUnit, load_unit, unit_slices
from repro.errors import UnknownFunctionError
from repro.lang.cfg import build_cfg
from repro.obs.tracer import span
from repro.perf import lattice, modes, resolve_jobs, run_ordered, timed


@dataclass(frozen=True)
class ScenarioSpec:
    """One Table-5 row: pipeline label + pre-selected functions."""

    name: str
    key_utilities: Tuple[str, ...]  # bolded components in the paper's table
    #: (unit filename, function name) in pipeline order.
    selected: Tuple[Tuple[str, Tuple[str, ...]], ...]


#: The four usage scenarios of Tables 3 and 5.
SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="mke2fs - mount - Ext4",
        key_utilities=("mke2fs", "mount"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options")),
            ("ext4_super.c", ("ext4_fill_super",)),
        ),
    ),
    ScenarioSpec(
        name="mke2fs - mount - Ext4 - e4defrag",
        key_utilities=("mke2fs", "mount", "e4defrag"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options")),
            ("ext4_super.c", ("ext4_fill_super",)),
            ("e4defrag.c", ("main_defrag", "defrag_file")),
        ),
    ),
    ScenarioSpec(
        name="mke2fs - mount - Ext4 - umount - resize2fs",
        key_utilities=("mke2fs", "mount", "resize2fs"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options",
                         "ext4_remount_checks")),
            ("ext4_super.c", ("ext4_fill_super",)),
            ("libext2fs.c", ("ext2fs_check_blocksize",
                             "ext2fs_check_inode_geometry")),
            ("resize2fs.c", ("parse_resize_options", "convert_64bit",
                             "resize_fs")),
        ),
    ),
    ScenarioSpec(
        name="mke2fs - mount - Ext4 - umount - e2fsck",
        key_utilities=("mke2fs", "mount", "e2fsck"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options",
                         "ext4_remount_checks")),
            ("ext4_super.c", ("ext4_fill_super",)),
            ("libext2fs.c", ("ext2fs_check_blocksize",
                             "ext2fs_check_inode_geometry")),
            ("e2fsck.c", ("parse_e2fsck_options", "run_checks")),
        ),
    ),
)


#: §6 extension scenario: the same methodology applied to XFS.  Kept
#: out of SCENARIOS so Table 5 stays the paper's Ext4 evaluation.
XFS_SCENARIO = ScenarioSpec(
    name="mkfs.xfs - mount - XFS - xfs_growfs",
    key_utilities=("mkfs.xfs", "xfs_growfs"),
    selected=(
        ("xfs_mkfs.c", ("parse_xfs_mkfs_options", "check_xfs_feature_conflicts",
                        "write_xfs_superblock")),
        ("xfs_growfs.c", ("parse_xfs_growfs_options", "xfs_grow_data")),
    ),
)


@dataclass
class CategoryCount:
    """Extraction tally for one category in one scenario."""

    extracted: int = 0
    false_positives: int = 0

    @property
    def fp_rate(self) -> float:
        """False positives as a fraction of extracted."""
        if not self.extracted:
            return 0.0
        return self.false_positives / self.extracted


@dataclass
class ScenarioResult:
    """Unique dependencies extracted under one scenario."""

    spec: ScenarioSpec
    dependencies: List[Dependency] = dc_field(default_factory=list)

    def by_category(self) -> Dict[Category, List[Dependency]]:
        """Dependencies grouped by SD/CPD/CCD."""
        out: Dict[Category, List[Dependency]] = {c: [] for c in Category}
        for dep in self.dependencies:
            out[dep.category].append(dep)
        return out

    def counts(self) -> Dict[Category, CategoryCount]:
        """Per-category extraction/FP tallies for this scenario."""
        out: Dict[Category, CategoryCount] = {}
        for category, deps in self.by_category().items():
            fp = sum(1 for d in deps if is_false_positive(d))
            out[category] = CategoryCount(len(deps), fp)
        return out


@dataclass
class ExtractionReport:
    """All four scenarios plus the unique union (Table 5)."""

    scenarios: List[ScenarioResult]
    union: List[Dependency]

    def union_counts(self) -> Dict[Category, CategoryCount]:
        """Per-category tallies over the unique union (Table 5)."""
        out: Dict[Category, CategoryCount] = {c: CategoryCount() for c in Category}
        for dep in self.union:
            entry = out[dep.category]
            entry.extracted += 1
            if is_false_positive(dep):
                entry.false_positives += 1
        return out

    @property
    def total_extracted(self) -> int:
        """Size of the unique union."""
        return len(self.union)

    @property
    def total_false_positives(self) -> int:
        """False positives in the unique union."""
        return sum(1 for d in self.union if is_false_positive(d))

    @property
    def overall_fp_rate(self) -> float:
        """Union FP rate (the paper's 7.8%)."""
        if not self.union:
            return 0.0
        return self.total_false_positives / self.total_extracted

    def true_dependencies(self) -> List[Dependency]:
        """The union minus the labelled false positives."""
        return [d for d in self.union if not is_false_positive(d)]


class Extractor:
    """Run extraction over scenarios.

    ``jobs`` controls the fan-out width (``None`` defers to the
    ``REPRO_JOBS`` environment knob, default sequential).  The parallel
    path analyzes (unit, function) pairs concurrently but *merges in
    spec order*, so its dependency sets are byte-identical to a
    sequential run: ordering comes from the assembly loop, never from
    thread completion order.  ``solver`` picks the taint fixpoint
    scheduler (``None`` defers to ``$REPRO_SOLVER``); both schedulers
    extract identical dependency sets.

    ``backend`` picks the execution engine (``None`` defers to
    ``$REPRO_BACKEND``): ``thread`` fans out inside this process,
    ``process`` puts the CPU-bound phases — unit compiles and function
    analyses — on a spawn-based worker pool
    (:mod:`repro.perf.procpool`), then assembles scenarios in the
    parent from seeded memos.  ``transport`` picks how process-backend
    results cross back (``None`` defers to ``$REPRO_TRANSPORT``):
    ``shm`` ships arena descriptors and decodes lazily from mmap views
    (:mod:`repro.perf.shm`), ``pickle`` ships the codec blobs through
    the queues.  Every backend/transport combination produces
    byte-identical reports; only wall-clock and wire bytes differ.
    """

    def __init__(self, scenarios: Sequence[ScenarioSpec] = SCENARIOS,
                 jobs: Optional[int] = None,
                 solver: Optional[str] = None,
                 backend: Optional[str] = None,
                 transport: Optional[str] = None) -> None:
        self.scenarios = tuple(scenarios)
        self.jobs = resolve_jobs(jobs)
        self.solver = solver
        self.backend = modes.resolve_mode("backend", backend)
        self.transport = modes.resolve_mode("transport", transport)

    # ------------------------------------------------------------------
    # per-scenario
    # ------------------------------------------------------------------

    def _analyze_one(self, task: Tuple[str, str]):
        """Taint + constraints for one pre-selected function.

        Resolution order is memo → disk store → compute: the in-memory
        memos win within a process, the function-level analysis store
        (:mod:`repro.corpus.cache`) carries results across processes,
        and only genuinely new content pays for a fixpoint.  A store
        hit seeds both memos, so the pair keeps the identity coupling
        (``findings`` derived from exactly ``state``) the memos assert.
        """
        pair, _blob = self._analyze_impl(task, want_blob=False)
        return pair

    def _analyze_one_blob(self, task: Tuple[str, str]) -> bytes:
        """Like :meth:`_analyze_one`, but returns the encoded pair.

        The process-backend worker path: one codec encode serves the
        wire (arena frame or queue blob) *and* the store flush — a
        store hit returns the very bytes just read, the compute path
        encodes once and flushes those same bytes via
        :func:`repro.corpus.cache.store_analysis_blob`.
        """
        _pair, blob = self._analyze_impl(task, want_blob=True)
        return blob

    def _analyze_impl(self, task: Tuple[str, str], want_blob: bool):
        """The shared memo → store → compute path; ``(pair, blob)``.

        ``blob`` is only materialized when ``want_blob`` (the worker
        side) — the thread backend never pays an encode for a memo hit.
        """
        from repro.perf import codec

        filename, fn_name = task
        with span("extract.function", unit=filename, function=fn_name):
            unit = load_unit(filename)
            sources = SOURCES_BY_UNIT[filename]
            try:
                func = unit.module.function(fn_name)
            except KeyError:
                raise UnknownFunctionError(
                    f"pre-selected function {fn_name!r} missing from {filename}"
                ) from None
            component = unit.component
            state = memo_peek(func, sources, component, self.solver)
            if state is not None:
                findings = findings_peek(func, state, sources, component,
                                         filename)
                if findings is not None:
                    pair = (state, findings)
                    return pair, codec.dumps(pair) if want_blob else None
            store_key = self._store_key(unit, fn_name, sources)
            if store_key:
                loaded = disk.load_analysis_with_blob(store_key)
                if loaded is not None:
                    (state, findings), blob = loaded
                    if (getattr(state, "function", None) == fn_name
                            and getattr(findings, "function", None) == fn_name):
                        memo_seed(func, sources, component, state, self.solver)
                        findings_seed(func, state, findings, sources,
                                      component, filename)
                        self._record_graph(unit, fn_name, store_key, state)
                        return (state, findings), blob if want_blob else None
            cfg = build_cfg(func)
            state = analyze_function(func, sources, component,
                                     solver=self.solver)
            findings = derive_constraints(
                func, cfg, state, sources, component, filename
            )
            pair = (state, findings)
            blob = codec.dumps(pair) if (want_blob or store_key) else None
            if store_key:
                disk.store_analysis_blob(store_key, blob)
                self._record_graph(unit, fn_name, store_key, state)
            return pair, blob if want_blob else None

    def _store_key(self, unit: CorpusUnit, fn_name: str, sources) -> str:
        """The analysis-store key for one function, or '' when disabled."""
        if not disk.disk_cache_enabled():
            return ""
        slice_hash = unit_slices(unit).get(fn_name, "")
        if not slice_hash:
            return ""
        return disk.analysis_key(
            unit.filename, fn_name, slice_hash, sources.fingerprint(),
            unit.component, resolve_solver(self.solver),
            lattice.resolve_lattice_mode(), self.transport,
        )

    @staticmethod
    def _record_graph(unit: CorpusUnit, fn_name: str, key: str,
                      state) -> None:
        """Queue this function's invalidation-graph record."""
        disk.record_analysis(
            unit.filename, fn_name, unit_slices(unit)[fn_name], key,
            reads=(f"{r.struct}.{r.field}" for r in state.field_reads),
            writes=(f"{w.struct}.{w.field}" for w in state.field_writes),
        )

    def extract_scenario(self, spec: ScenarioSpec) -> ScenarioResult:
        """Extract one scenario's unique dependency set."""
        with span("extract.scenario", scenario=spec.name), \
                timed("extract.scenario"):
            tasks = [(filename, fn_name)
                     for filename, functions in spec.selected
                     for fn_name in functions]
            analyzed = iter(run_ordered(self.jobs, self._analyze_one, tasks))
            deps: List[Dependency] = []
            summaries: List[ComponentSummary] = []
            for filename, functions in spec.selected:
                unit = load_unit(filename)
                summary = ComponentSummary(unit.component, filename)
                for _fn_name in functions:
                    state, findings = next(analyzed)
                    deps.extend(findings.dependencies)
                    summary.field_writes.extend(state.field_writes)
                    summary.branch_uses.extend(findings.branch_uses)
                summaries.append(summary)
            with span("extract.bridge", scenario=spec.name), \
                    timed("extract.bridge"):
                deps.extend(MetadataBridge(summaries).join())
            return ScenarioResult(spec, _dedupe(deps))

    # ------------------------------------------------------------------
    # all scenarios
    # ------------------------------------------------------------------

    def _unit_names(self) -> List[str]:
        """Distinct unit filenames across the scenarios, in first-use order."""
        seen = []
        for spec in self.scenarios:
            for filename, _functions in spec.selected:
                if filename not in seen:
                    seen.append(filename)
        return seen

    def _invalidate_stale(self) -> None:
        """Eagerly prune store entries orphaned by corpus edits."""
        if not disk.disk_cache_enabled():
            return
        current = {
            filename: dict(unit_slices(load_unit(filename)))
            for filename in self._unit_names()
        }
        disk.invalidate_changed(current)

    def extract_all(self) -> ExtractionReport:
        """Extract every scenario plus the unique union."""
        with span("extract.all", scenarios=len(self.scenarios),
                  jobs=self.jobs, backend=self.backend), timed("extract.all"):
            if self.backend == "process":
                self._process_prepare()
            else:
                self._invalidate_stale()
            results = run_ordered(self.jobs, self.extract_scenario, self.scenarios)
            union: List[Dependency] = []
            for result in results:
                union.extend(result.dependencies)
            disk.flush_graph()
            return ExtractionReport(results, _dedupe(union))

    # ------------------------------------------------------------------
    # process backend
    # ------------------------------------------------------------------

    def _fns_by_unit(self) -> Dict[str, List[str]]:
        """Distinct selected functions per unit, in first-use order."""
        out: Dict[str, List[str]] = {}
        for spec in self.scenarios:
            for filename, functions in spec.selected:
                bucket = out.setdefault(filename, [])
                for fn_name in functions:
                    if fn_name not in bucket:
                        bucket.append(fn_name)
        return out

    def _process_prepare(self) -> None:
        """Run the CPU-bound phases on the worker pool, seed the memos.

        Two overlapped pool waves ahead of assembly:

        1. distribute the distinct unit *compiles* across workers —
           compiled IR lands in the shared disk cache, so the parent's
           own loads afterwards are cheap decodes (with the disk cache
           disabled this phase is skipped and the parent compiles);
        2. dedupe the distinct ``(unit, function)`` analyses across
           all scenarios — each Table-5 scenario re-selects mostly the
           same functions — batch them by source size
           (``REPRO_BATCH_BYTES``), and fan the batches out.  On a
           cold store (no invalidation-graph records for these units)
           each unit's batches dispatch the moment its compile lands,
           so workers analyze early units while later units still
           compile; with prior records the compile wave barriers
           first, the parent prunes stale entries from the
           worker-reported slices, and only then dispatches — the
           exact eager-invalidation ordering of earlier revisions.

        Results cross back per ``self.transport`` — arena descriptors
        decoded lazily from mmap views under ``shm``, codec blobs
        under ``pickle`` — and seed the parent's memos either way.  A
        frame that fails validation (:exc:`~repro.perf.codec.CodecError`)
        is recomputed in the parent, never trusted.

        Assembly then runs the ordinary thread path: every
        ``_analyze_one`` is a memo hit, the bridge joins in the parent,
        and merge order comes from the spec — which is how a process
        run stays byte-identical to thread and sequential runs.
        """
        import pickle

        from repro.perf import bump, procpool

        if not disk.disk_cache_enabled():
            # Without the shared disk cache workers cannot hand the
            # parent compiled IR or store entries, so the pool would
            # only duplicate work the parent must redo anyway.
            self._invalidate_stale()
            return

        with span("extract.procpool", jobs=self.jobs,
                  transport=self.transport):
            pool = procpool.get_pool(self.jobs)
            unit_names = self._unit_names()
            fns_by_unit = self._fns_by_unit()
            batch_bytes = modes.resolve_int("batch_bytes")
            # Prior graph records mean invalidate_changed() may prune —
            # only then must every unit's slices land before the first
            # analyze dispatch.
            barrier = disk.has_graph_records(unit_names)
            analyze_seqs: List[Tuple[int, str, List[str]]] = []

            def dispatch(filename: str, sizes: Dict[str, int]) -> None:
                names = fns_by_unit.get(filename, [])
                batches = procpool.plan_batches(
                    names,
                    lambda fn: sizes.get(fn, procpool.DEFAULT_TASK_BYTES),
                    batch_bytes,
                )
                for batch in batches:
                    seq = pool.submit(
                        "extract.batch",
                        (filename, tuple(batch), self.solver, self.transport),
                    )
                    analyze_seqs.append((seq, filename, batch))

            slices_by_unit: Dict[str, Dict[str, str]] = {}
            sizes_by_unit: Dict[str, Dict[str, int]] = {}
            with span("extract.procpool.compile", units=len(unit_names)):
                pending = {pool.submit("corpus.compile", (name,))
                           for name in unit_names}
                while pending:
                    seq, result = pool.wait_any(pending)
                    pending.discard(seq)
                    filename, slices, sizes = result
                    slices_by_unit[filename] = slices
                    sizes_by_unit[filename] = sizes
                    if not barrier:
                        dispatch(filename, sizes)
            if barrier:
                disk.invalidate_changed(slices_by_unit)
                for filename in unit_names:
                    dispatch(filename, sizes_by_unit[filename])

            total = sum(len(batch) for _seq, _f, batch in analyze_seqs)
            with span("extract.procpool.analyze", functions=total,
                      batches=len(analyze_seqs)):
                for seq, filename, batch in analyze_seqs:
                    transport_used, items, records = pool.wait(seq)
                    disk.merge_pending(records)
                    bump("transport.batches")
                    bump("transport.functions", len(batch))
                    if transport_used == "shm":
                        # The queue carried only the descriptors.
                        bump("transport.wire_bytes",
                             len(pickle.dumps(items)))
                    else:
                        bump("transport.wire_bytes",
                             sum(len(blob) for blob in items))
                    unit = load_unit(filename)
                    sources = SOURCES_BY_UNIT[filename]
                    for fn_name, item in zip(batch, items):
                        pair = self._decode_result(
                            pool, transport_used, item, (filename, fn_name)
                        )
                        state, findings = pair
                        func = unit.module.function(fn_name)
                        memo_seed(func, sources, unit.component, state,
                                  self.solver)
                        findings_seed(func, state, findings, sources,
                                      unit.component, filename)

    def _decode_result(self, pool, transport_used: str, item,
                       task: Tuple[str, str]):
        """One worker result back into a live ``(state, findings)`` pair.

        Validation failures are loud but not fatal: a corrupt arena
        frame or blob bumps ``transport.decode_errors`` and the parent
        recomputes the function itself — degrade to local work, never
        to a wrong (or missing) result.
        """
        from repro.perf import bump, codec

        try:
            if transport_used == "shm":
                view = pool.reader.view(item)
                try:
                    return codec.loads(view)
                finally:
                    view.release()
            return codec.loads(item)
        except codec.CodecError:
            bump("transport.decode_errors")
            return self._analyze_one(task)


def _dedupe(deps: List[Dependency]) -> List[Dependency]:
    seen = set()
    out = []
    for dep in deps:
        key = dep.key()
        if key in seen:
            continue
        seen.add(key)
        out.append(dep)
    return out


def extract_all(scenarios: Sequence[ScenarioSpec] = SCENARIOS,
                jobs: Optional[int] = None,
                solver: Optional[str] = None,
                backend: Optional[str] = None,
                transport: Optional[str] = None) -> ExtractionReport:
    """Convenience: run the full Table-5 extraction."""
    return Extractor(scenarios, jobs=jobs, solver=solver,
                     backend=backend, transport=transport).extract_all()
