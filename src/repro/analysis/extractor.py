"""Scenario-driven extraction (paper §4.3, Table 5).

An extraction *scenario* is one row of Table 5: a pipeline of
components plus the pre-selected functions analyzed in each ("At the
time of this writing, the static analyzer can handle intra-procedure
taint analysis ... so we can only extract dependencies via a few
pre-selected functions").  The extractor runs taint + constraint
derivation per function, bridges field traffic across components in
pipeline order, and dedupes into a unique dependency set per scenario
and across scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bridge import ComponentSummary, MetadataBridge
from repro.analysis.constraints import (
    derive_constraints,
    findings_peek,
    findings_seed,
)
from repro.analysis.groundtruth import is_false_positive
from repro.analysis.model import Category, Dependency
from repro.analysis.sources import SOURCES_BY_UNIT
from repro.analysis.taint import (
    analyze_function,
    memo_peek,
    memo_seed,
    resolve_solver,
)
from repro.corpus import cache as disk
from repro.corpus.loader import CorpusUnit, load_unit, unit_slices
from repro.errors import UnknownFunctionError
from repro.lang.cfg import build_cfg
from repro.obs.tracer import span
from repro.perf import lattice, modes, resolve_jobs, run_ordered, timed


@dataclass(frozen=True)
class ScenarioSpec:
    """One Table-5 row: pipeline label + pre-selected functions."""

    name: str
    key_utilities: Tuple[str, ...]  # bolded components in the paper's table
    #: (unit filename, function name) in pipeline order.
    selected: Tuple[Tuple[str, Tuple[str, ...]], ...]


#: The four usage scenarios of Tables 3 and 5.
SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="mke2fs - mount - Ext4",
        key_utilities=("mke2fs", "mount"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options")),
            ("ext4_super.c", ("ext4_fill_super",)),
        ),
    ),
    ScenarioSpec(
        name="mke2fs - mount - Ext4 - e4defrag",
        key_utilities=("mke2fs", "mount", "e4defrag"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options")),
            ("ext4_super.c", ("ext4_fill_super",)),
            ("e4defrag.c", ("main_defrag", "defrag_file")),
        ),
    ),
    ScenarioSpec(
        name="mke2fs - mount - Ext4 - umount - resize2fs",
        key_utilities=("mke2fs", "mount", "resize2fs"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options",
                         "ext4_remount_checks")),
            ("ext4_super.c", ("ext4_fill_super",)),
            ("libext2fs.c", ("ext2fs_check_blocksize",
                             "ext2fs_check_inode_geometry")),
            ("resize2fs.c", ("parse_resize_options", "convert_64bit",
                             "resize_fs")),
        ),
    ),
    ScenarioSpec(
        name="mke2fs - mount - Ext4 - umount - e2fsck",
        key_utilities=("mke2fs", "mount", "e2fsck"),
        selected=(
            ("mke2fs.c", ("parse_mke2fs_options", "check_feature_conflicts",
                          "write_superblock")),
            ("mount.c", ("parse_mount_options", "check_mount_options",
                         "ext4_remount_checks")),
            ("ext4_super.c", ("ext4_fill_super",)),
            ("libext2fs.c", ("ext2fs_check_blocksize",
                             "ext2fs_check_inode_geometry")),
            ("e2fsck.c", ("parse_e2fsck_options", "run_checks")),
        ),
    ),
)


#: §6 extension scenario: the same methodology applied to XFS.  Kept
#: out of SCENARIOS so Table 5 stays the paper's Ext4 evaluation.
XFS_SCENARIO = ScenarioSpec(
    name="mkfs.xfs - mount - XFS - xfs_growfs",
    key_utilities=("mkfs.xfs", "xfs_growfs"),
    selected=(
        ("xfs_mkfs.c", ("parse_xfs_mkfs_options", "check_xfs_feature_conflicts",
                        "write_xfs_superblock")),
        ("xfs_growfs.c", ("parse_xfs_growfs_options", "xfs_grow_data")),
    ),
)


@dataclass
class CategoryCount:
    """Extraction tally for one category in one scenario."""

    extracted: int = 0
    false_positives: int = 0

    @property
    def fp_rate(self) -> float:
        """False positives as a fraction of extracted."""
        if not self.extracted:
            return 0.0
        return self.false_positives / self.extracted


@dataclass
class ScenarioResult:
    """Unique dependencies extracted under one scenario."""

    spec: ScenarioSpec
    dependencies: List[Dependency] = dc_field(default_factory=list)

    def by_category(self) -> Dict[Category, List[Dependency]]:
        """Dependencies grouped by SD/CPD/CCD."""
        out: Dict[Category, List[Dependency]] = {c: [] for c in Category}
        for dep in self.dependencies:
            out[dep.category].append(dep)
        return out

    def counts(self) -> Dict[Category, CategoryCount]:
        """Per-category extraction/FP tallies for this scenario."""
        out: Dict[Category, CategoryCount] = {}
        for category, deps in self.by_category().items():
            fp = sum(1 for d in deps if is_false_positive(d))
            out[category] = CategoryCount(len(deps), fp)
        return out


@dataclass
class ExtractionReport:
    """All four scenarios plus the unique union (Table 5)."""

    scenarios: List[ScenarioResult]
    union: List[Dependency]

    def union_counts(self) -> Dict[Category, CategoryCount]:
        """Per-category tallies over the unique union (Table 5)."""
        out: Dict[Category, CategoryCount] = {c: CategoryCount() for c in Category}
        for dep in self.union:
            entry = out[dep.category]
            entry.extracted += 1
            if is_false_positive(dep):
                entry.false_positives += 1
        return out

    @property
    def total_extracted(self) -> int:
        """Size of the unique union."""
        return len(self.union)

    @property
    def total_false_positives(self) -> int:
        """False positives in the unique union."""
        return sum(1 for d in self.union if is_false_positive(d))

    @property
    def overall_fp_rate(self) -> float:
        """Union FP rate (the paper's 7.8%)."""
        if not self.union:
            return 0.0
        return self.total_false_positives / self.total_extracted

    def true_dependencies(self) -> List[Dependency]:
        """The union minus the labelled false positives."""
        return [d for d in self.union if not is_false_positive(d)]


class Extractor:
    """Run extraction over scenarios.

    ``jobs`` controls the fan-out width (``None`` defers to the
    ``REPRO_JOBS`` environment knob, default sequential).  The parallel
    path analyzes (unit, function) pairs concurrently but *merges in
    spec order*, so its dependency sets are byte-identical to a
    sequential run: ordering comes from the assembly loop, never from
    thread completion order.  ``solver`` picks the taint fixpoint
    scheduler (``None`` defers to ``$REPRO_SOLVER``); both schedulers
    extract identical dependency sets.

    ``backend`` picks the execution engine (``None`` defers to
    ``$REPRO_BACKEND``): ``thread`` fans out inside this process,
    ``process`` puts the CPU-bound phases — unit compiles and function
    analyses — on a spawn-based worker pool
    (:mod:`repro.perf.procpool`), then assembles scenarios in the
    parent from seeded memos.  Both backends produce byte-identical
    reports; only wall-clock differs.
    """

    def __init__(self, scenarios: Sequence[ScenarioSpec] = SCENARIOS,
                 jobs: Optional[int] = None,
                 solver: Optional[str] = None,
                 backend: Optional[str] = None) -> None:
        self.scenarios = tuple(scenarios)
        self.jobs = resolve_jobs(jobs)
        self.solver = solver
        self.backend = modes.resolve_mode("backend", backend)

    # ------------------------------------------------------------------
    # per-scenario
    # ------------------------------------------------------------------

    def _analyze_one(self, task: Tuple[str, str]):
        """Taint + constraints for one pre-selected function.

        Resolution order is memo → disk store → compute: the in-memory
        memos win within a process, the function-level analysis store
        (:mod:`repro.corpus.cache`) carries results across processes,
        and only genuinely new content pays for a fixpoint.  A store
        hit seeds both memos, so the pair keeps the identity coupling
        (``findings`` derived from exactly ``state``) the memos assert.
        """
        filename, fn_name = task
        with span("extract.function", unit=filename, function=fn_name):
            unit = load_unit(filename)
            sources = SOURCES_BY_UNIT[filename]
            try:
                func = unit.module.function(fn_name)
            except KeyError:
                raise UnknownFunctionError(
                    f"pre-selected function {fn_name!r} missing from {filename}"
                ) from None
            component = unit.component
            state = memo_peek(func, sources, component, self.solver)
            if state is not None:
                findings = findings_peek(func, state, sources, component,
                                         filename)
                if findings is not None:
                    return state, findings
            store_key = self._store_key(unit, fn_name, sources)
            if store_key:
                pair = disk.load_analysis(store_key)
                if pair is not None:
                    state, findings = pair
                    if (getattr(state, "function", None) == fn_name
                            and getattr(findings, "function", None) == fn_name):
                        memo_seed(func, sources, component, state, self.solver)
                        findings_seed(func, state, findings, sources,
                                      component, filename)
                        self._record_graph(unit, fn_name, store_key, state)
                        return state, findings
            cfg = build_cfg(func)
            state = analyze_function(func, sources, component,
                                     solver=self.solver)
            findings = derive_constraints(
                func, cfg, state, sources, component, filename
            )
            if store_key:
                disk.store_analysis(store_key, state, findings)
                self._record_graph(unit, fn_name, store_key, state)
            return state, findings

    def _store_key(self, unit: CorpusUnit, fn_name: str, sources) -> str:
        """The analysis-store key for one function, or '' when disabled."""
        if not disk.disk_cache_enabled():
            return ""
        slice_hash = unit_slices(unit).get(fn_name, "")
        if not slice_hash:
            return ""
        return disk.analysis_key(
            unit.filename, fn_name, slice_hash, sources.fingerprint(),
            unit.component, resolve_solver(self.solver),
            lattice.resolve_lattice_mode(),
        )

    @staticmethod
    def _record_graph(unit: CorpusUnit, fn_name: str, key: str,
                      state) -> None:
        """Queue this function's invalidation-graph record."""
        disk.record_analysis(
            unit.filename, fn_name, unit_slices(unit)[fn_name], key,
            reads=(f"{r.struct}.{r.field}" for r in state.field_reads),
            writes=(f"{w.struct}.{w.field}" for w in state.field_writes),
        )

    def extract_scenario(self, spec: ScenarioSpec) -> ScenarioResult:
        """Extract one scenario's unique dependency set."""
        with span("extract.scenario", scenario=spec.name), \
                timed("extract.scenario"):
            tasks = [(filename, fn_name)
                     for filename, functions in spec.selected
                     for fn_name in functions]
            analyzed = iter(run_ordered(self.jobs, self._analyze_one, tasks))
            deps: List[Dependency] = []
            summaries: List[ComponentSummary] = []
            for filename, functions in spec.selected:
                unit = load_unit(filename)
                summary = ComponentSummary(unit.component, filename)
                for _fn_name in functions:
                    state, findings = next(analyzed)
                    deps.extend(findings.dependencies)
                    summary.field_writes.extend(state.field_writes)
                    summary.branch_uses.extend(findings.branch_uses)
                summaries.append(summary)
            with span("extract.bridge", scenario=spec.name), \
                    timed("extract.bridge"):
                deps.extend(MetadataBridge(summaries).join())
            return ScenarioResult(spec, _dedupe(deps))

    # ------------------------------------------------------------------
    # all scenarios
    # ------------------------------------------------------------------

    def _unit_names(self) -> List[str]:
        """Distinct unit filenames across the scenarios, in first-use order."""
        seen = []
        for spec in self.scenarios:
            for filename, _functions in spec.selected:
                if filename not in seen:
                    seen.append(filename)
        return seen

    def _invalidate_stale(self) -> None:
        """Eagerly prune store entries orphaned by corpus edits."""
        if not disk.disk_cache_enabled():
            return
        current = {
            filename: dict(unit_slices(load_unit(filename)))
            for filename in self._unit_names()
        }
        disk.invalidate_changed(current)

    def extract_all(self) -> ExtractionReport:
        """Extract every scenario plus the unique union."""
        with span("extract.all", scenarios=len(self.scenarios),
                  jobs=self.jobs, backend=self.backend), timed("extract.all"):
            if self.backend == "process":
                self._process_prepare()
            else:
                self._invalidate_stale()
            results = run_ordered(self.jobs, self.extract_scenario, self.scenarios)
            union: List[Dependency] = []
            for result in results:
                union.extend(result.dependencies)
            disk.flush_graph()
            return ExtractionReport(results, _dedupe(union))

    # ------------------------------------------------------------------
    # process backend
    # ------------------------------------------------------------------

    def _process_prepare(self) -> None:
        """Run the CPU-bound phases on the worker pool, seed the memos.

        Two pool phases ahead of assembly:

        1. distribute the distinct unit *compiles* across workers —
           compiled IR lands in the shared disk cache, so the parent's
           own loads afterwards are cheap decodes (with the disk cache
           disabled this phase is skipped and the parent compiles);
        2. dedupe the distinct ``(unit, function)`` analyses across
           all scenarios — each Table-5 scenario re-selects mostly the
           same functions — and fan them out; results return as codec
           blobs and seed the parent's memos.

        Assembly then runs the ordinary thread path: every
        ``_analyze_one`` is a memo hit, the bridge joins in the parent,
        and merge order comes from the spec — which is how a process
        run stays byte-identical to thread and sequential runs.
        """
        from repro.perf import codec, procpool

        with span("extract.procpool", jobs=self.jobs):
            pool = procpool.get_pool(self.jobs)
            unit_names = self._unit_names()
            if disk.disk_cache_enabled():
                with span("extract.procpool.compile", units=len(unit_names)):
                    pool.run_ordered(
                        [("corpus.compile", (name,)) for name in unit_names]
                    )
            self._invalidate_stale()
            tasks: List[Tuple[str, str]] = []
            seen = set()
            for spec in self.scenarios:
                for filename, functions in spec.selected:
                    for fn_name in functions:
                        if (filename, fn_name) not in seen:
                            seen.add((filename, fn_name))
                            tasks.append((filename, fn_name))
            with span("extract.procpool.analyze", functions=len(tasks)):
                results = pool.run_ordered([
                    ("extract.function", (filename, fn_name, self.solver))
                    for filename, fn_name in tasks
                ])
            for (filename, fn_name), (blob, records) in zip(tasks, results):
                state, findings = codec.loads(blob)
                unit = load_unit(filename)
                func = unit.module.function(fn_name)
                sources = SOURCES_BY_UNIT[filename]
                memo_seed(func, sources, unit.component, state, self.solver)
                findings_seed(func, state, findings, sources, unit.component,
                              filename)
                disk.merge_pending(records)


def _dedupe(deps: List[Dependency]) -> List[Dependency]:
    seen = set()
    out = []
    for dep in deps:
        key = dep.key()
        if key in seen:
            continue
        seen.add(key)
        out.append(dep)
    return out


def extract_all(scenarios: Sequence[ScenarioSpec] = SCENARIOS,
                jobs: Optional[int] = None,
                solver: Optional[str] = None,
                backend: Optional[str] = None) -> ExtractionReport:
    """Convenience: run the full Table-5 extraction."""
    return Extractor(scenarios, jobs=jobs, solver=solver,
                     backend=backend).extract_all()
