"""Ground-truth labels for the extracted dependencies.

The paper validates extraction manually and reports per-category false
positives (Table 5: 3 SD, 1 CPD, 1 CCD out of 64).  We reproduce the
validation: each known-imprecise corpus construct is labelled here with
the dependency key it produces, so FP rates are *computed* from the
extraction output rather than asserted.

The five false positives and their mechanisms:

- three SD ranges in ``libext2fs.c`` validate *derived* quantities
  (block-size log, inodes per block, inode density); taint attribution
  to the originating parameter yields ranges that are not real
  constraints on the parameter;
- one CPD in ``mke2fs.c`` survives only because the flow-insensitive
  taint ignores the ``cb = 0`` kill before the guard;
- one CCD joins resize2fs's ``s_inodes_per_group`` load with mke2fs's
  write although resize2fs rewrites the field first (kill ignored).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

from repro.analysis.model import Category, Dependency

#: Dependency keys labelled as false positives by manual validation.
FALSE_POSITIVE_KEYS: FrozenSet[str] = frozenset({
    "SD.value_range:mke2fs.blocksize:[1,64]",
    "SD.value_range:mke2fs.inode_size:[1,32]",
    "SD.value_range:mke2fs.inode_ratio:[1,4096]",
    "CPD.control:mke2fs.check_badblocks,mke2fs.dry_run:conflicts",
    "CCD.behavioral:mke2fs.inode_ratio,resize2fs.*@s_inodes_per_group",
})

#: Expected unique extraction counts (paper Table 5, Total Unique row).
EXPECTED_UNIQUE = {
    Category.SD: (32, 3),   # (extracted, false positives)
    Category.CPD: (26, 1),
    Category.CCD: (6, 1),
}


def is_false_positive(dep: Dependency) -> bool:
    """Whether manual validation labels ``dep`` a false positive."""
    return dep.key() in FALSE_POSITIVE_KEYS


def split_validated(deps: Iterable[Dependency]) -> Tuple[List[Dependency], List[Dependency]]:
    """(true_dependencies, false_positives)."""
    true_deps: List[Dependency] = []
    false_deps: List[Dependency] = []
    for dep in deps:
        (false_deps if is_false_positive(dep) else true_deps).append(dep)
    return true_deps, false_deps
