"""Reassemble one service run's distributed trace into a span tree.

A run submitted over HTTP crosses three process boundaries: the API
process that queued it, the ``repro-worker`` that claimed and executed
it, and the procpool children the CLI fanned out to (``--backend
process``).  Each leaves its own evidence — the queue row's timestamps,
and the run directory's ``trace.jsonl`` written by the worker-driven
CLI (whose procpool spans were already grafted in-process by
:func:`repro.obs.tracer.graft`).

:func:`assemble` stitches those fragments into a single rooted tree:

- a synthetic ``serve.request`` root spanning submit → finish,
- a ``queue.wait`` child covering the time spent queued,
- a ``worker.exec`` child covering the execution attempt, under which
  the trace file's own root (the tool span) is re-parented.

Trust is established by the traceparent: the worker derives it from
the run id (:func:`repro.obs.tracer.make_traceparent`), so the trace
file's header must carry exactly the value any process would re-derive.
A mismatch (stale file, wrong attempt) marks the assembly un-rooted
rather than silently grafting a foreign trace.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.obs import events as obs_events
from repro.obs import tracer as obs_tracer
from repro.serve.db import RunQueue


def trace_path(data_dir: str, run_id: str) -> str:
    """Where the worker-driven CLI writes the run's trace file."""
    return os.path.join(data_dir, "runs", run_id, "trace.jsonl")


def resolve_run(queue: RunQueue, run_ref: str) -> Dict[str, Any]:
    """The run row for an exact id or a unique id prefix.

    Raises :class:`LookupError` when nothing (or more than one run)
    matches — the caller turns that into exit code 2.
    """
    run = queue.get(run_ref)
    if run is not None:
        return run
    matches = [row for row in queue.list_runs(limit=1000)
               if row["run_id"].startswith(run_ref)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise LookupError(f"no run matches {run_ref!r}")
    raise LookupError(
        f"ambiguous run prefix {run_ref!r} ({len(matches)} matches)")


def _node(name: str, ts: Optional[float], dur: Optional[float],
          **attrs: Any) -> Dict[str, Any]:
    return {"name": name, "ts": ts, "dur": dur,
            "attrs": {k: v for k, v in attrs.items() if v is not None},
            "children": []}


def _file_tree(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The trace file's span events as nested nodes (roots returned)."""
    nodes: Dict[int, Dict[str, Any]] = {}
    for event in sorted(events, key=lambda e: e["id"]):
        nodes[event["id"]] = _node(
            event["name"], event.get("ts"), event.get("dur"),
            thread=event.get("thread"), error=event.get("error"),
            **(event.get("attrs") or {}))
    roots: List[Dict[str, Any]] = []
    for event in sorted(events, key=lambda e: e["id"]):
        parent = event.get("parent")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(nodes[event["id"]])
        else:
            roots.append(nodes[event["id"]])
    return roots


def assemble(queue: RunQueue, data_dir: str,
             run_ref: str) -> Dict[str, Any]:
    """One run's cross-process trace as a single rooted span tree.

    Never raises for an *incomplete* trace (missing file, pending run);
    the gaps are reported via ``rooted``/``file_spans`` so callers can
    distinguish "not yet" from "broken".
    """
    run = resolve_run(queue, run_ref)
    run_id = run["run_id"]
    timeline = RunQueue.timeline(run)
    attempt = int(run.get("attempts") or 1)
    expected = obs_tracer.make_traceparent(run_id, f"attempt-{attempt}")

    path = trace_path(data_dir, run_id)
    file_header: Dict[str, Any] = {}
    file_events: List[Dict[str, Any]] = []
    file_error: Optional[str] = None
    if os.path.exists(path):
        try:
            file_header, file_events = obs_events.read_jsonl(path)
        except (OSError, ValueError) as exc:
            file_error = str(exc)
    file_roots = _file_tree(file_events)
    file_traceparent = file_header.get("traceparent")
    match = file_traceparent == expected

    root = _node("serve.request", run.get("created"),
                 timeline.get("request_latency"),
                 run_id=run_id, tool=run.get("tool"),
                 status=run.get("status"))
    root["children"].append(_node(
        "queue.wait", run.get("created"), timeline.get("queue_latency"),
        reclaims=run.get("reclaims") or None))
    exec_node = _node(
        "worker.exec", run.get("started") or run.get("claimed_at"),
        timeline.get("exec_latency"), worker=run.get("claimed_by"),
        attempt=attempt)
    if match:
        exec_node["children"].extend(file_roots)
    root["children"].append(exec_node)

    return {
        "run_id": run_id,
        "status": run.get("status"),
        "tool": run.get("tool"),
        "worker": run.get("claimed_by"),
        "attempt": attempt,
        "traceparent": expected,
        "trace_file": path if os.path.exists(path) else None,
        "file_traceparent": file_traceparent,
        "traceparent_match": match,
        "file_spans": len(file_events),
        "file_roots": len(file_roots),
        "file_error": file_error,
        # The acceptance bar: all three process layers present and the
        # exec fragment is itself one tree under a trusted identity.
        "rooted": bool(match and len(file_roots) == 1),
        "tree": root,
    }


def _render_node(node: Dict[str, Any], prefix: str, last: bool,
                 lines: List[str]) -> None:
    connector = "`- " if last else "|- "
    dur = node.get("dur")
    label = node["name"]
    attrs = node.get("attrs") or {}
    shown = {k: v for k, v in attrs.items()
             if k not in ("thread",) and v is not None}
    if shown:
        label += " (" + ", ".join(
            f"{k}={v}" for k, v in sorted(shown.items())) + ")"
    timing = f"  {dur:.3f}s" if isinstance(dur, (int, float)) else ""
    lines.append(f"{prefix}{connector}{label}{timing}")
    child_prefix = prefix + ("   " if last else "|  ")
    children = node.get("children") or []
    for index, child in enumerate(children):
        _render_node(child, child_prefix, index == len(children) - 1, lines)


def render(assembled: Dict[str, Any]) -> str:
    """The assembled trace as an ASCII tree, one span per line."""
    lines = [
        f"run {assembled['run_id'][:16]} [{assembled['status']}] "
        f"tool={assembled['tool']} attempt={assembled['attempt']}",
        f"traceparent {assembled['traceparent']}",
    ]
    if assembled["trace_file"] is None:
        lines.append("trace file: (none yet)")
    elif not assembled["traceparent_match"]:
        lines.append(
            f"trace file: {assembled['trace_file']} — traceparent "
            f"mismatch ({assembled['file_traceparent']}); not grafted")
    else:
        lines.append(
            f"trace file: {assembled['trace_file']} "
            f"({assembled['file_spans']} spans)")
    if assembled.get("file_error"):
        lines.append(f"trace file error: {assembled['file_error']}")
    tree = assembled["tree"]
    label = tree["name"]
    dur = tree.get("dur")
    lines.append(label + (f"  {dur:.3f}s"
                          if isinstance(dur, (int, float)) else ""))
    children = tree.get("children") or []
    for index, child in enumerate(children):
        _render_node(child, "", index == len(children) - 1, lines)
    lines.append("rooted: " + ("yes" if assembled["rooted"] else "no"))
    return "\n".join(lines)
