"""SQLite-backed ``runs`` queue and corpus snapshot store (no broker).

The database *is* the queue: submitting inserts a row, workers claim
rows inside one ``BEGIN IMMEDIATE`` transaction, and every state
transition is a guarded ``UPDATE``.  SQLite's writer lock plus WAL
journaling give the whole service its concurrency story — API threads
and worker processes coordinate through the file, with no broker
process to deploy or lose.

Queue states::

    queued ──claim──▶ claimed ──finish──▶ done
       ▲                 │└─────fail────▶ failed
       └── lease timeout ┘  (reclaim: stale claims are claimable again)

**Single-flight dedup.**  ``run_id`` *is* the content key
(:mod:`repro.serve.keys`), held ``UNIQUE``: a duplicate submission
lands on the existing row — whatever its state — bumps its ``submits``
tally, and returns the same run id.  Concurrent identical requests
therefore coalesce onto one execution and all read one result; a
duplicate of a *finished* run skips the queue entirely, which is the
≥5x duplicate-latency floor in ``bench_service.py``.

**Leases.**  A claim stamps ``claimed_by`` and ``lease_expires``; a
worker that dies mid-job simply stops renewing, and once the lease
lapses the row is claimable again (``attempts`` counts the tries).
``finish``/``fail`` are guarded by ``claimed_by`` so a worker whose
lease was reclaimed cannot clobber the reclaiming worker's result.

**Batching.**  :meth:`RunQueue.claim_batch` claims the oldest eligible
run plus up to ``limit-1`` more with the *same engine signature and
corpus* — jobs one warm process pool and one warm memo/analysis-store
set can serve back to back, so N small compatible requests cost one
pool warm-up and one shared extraction instead of N.

**Telemetry.**  Every row carries its full timeline — ``created``
(queued), ``claimed_at``, ``started`` (execution began), ``finished``
— so queue latency, execution latency, and end-to-end request latency
are derivable from the table alone; :meth:`RunQueue.latencies` folds
the finished rows into :class:`~repro.obs.metrics.Histogram` snapshots
that the API renders on ``GET /v1/metrics``.  This matters because the
API and the workers are *different processes*: in-process counters
cannot see each other, but every process sees the database.  Reclaims
(a claim of a lapsed lease) are counted per row and in aggregate, and
every state transition emits a structured service-log event
(:mod:`repro.obs.servicelog`) — a no-op until the process configures a
log path.  A ``workers`` side table records heartbeats so the fleet's
liveness is one query away.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from contextlib import closing
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import servicelog
from repro.obs.metrics import REGISTRY, Histogram

#: Queue states.
QUEUED = "queued"
CLAIMED = "claimed"
DONE = "done"
FAILED = "failed"

STATES = (QUEUED, CLAIMED, DONE, FAILED)

#: Seconds a claim stays valid without renewal.
DEFAULT_LEASE_SECONDS = 120.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        TEXT PRIMARY KEY,   -- the content key (single-flight dedup)
    tool          TEXT NOT NULL,
    params        TEXT NOT NULL,      -- canonical JSON
    engine        TEXT NOT NULL,      -- resolved engine-mode JSON
    corpus_id     TEXT,               -- NULL = the checked-in corpus
    status        TEXT NOT NULL,
    submits       INTEGER NOT NULL DEFAULT 1,
    attempts      INTEGER NOT NULL DEFAULT 0,
    reclaims      INTEGER NOT NULL DEFAULT 0,
    created       REAL NOT NULL,
    claimed_by    TEXT,
    claimed_at    REAL,
    started       REAL,               -- execution began (vs claim bookkeeping)
    lease_expires REAL,
    finished      REAL,
    result        TEXT,               -- JSON result payload (done runs)
    manifest_path TEXT,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS runs_status ON runs (status, created);
CREATE TABLE IF NOT EXISTS workers (
    worker_id   TEXT PRIMARY KEY,
    started     REAL NOT NULL,
    last_seen   REAL NOT NULL,
    jobs_done   INTEGER NOT NULL DEFAULT 0,
    jobs_failed INTEGER NOT NULL DEFAULT 0,
    batches     INTEGER NOT NULL DEFAULT 0
);
"""

#: Columns older databases may be missing, with their ALTER clauses —
#: a pre-telemetry service.db upgrades in place on first open.
_MIGRATIONS = (
    ("runs", "reclaims", "INTEGER NOT NULL DEFAULT 0"),
    ("runs", "started", "REAL"),
)

#: A worker whose heartbeat is older than this is shown as stale.
WORKER_STALE_SECONDS = 300.0


class QueueError(RuntimeError):
    """A queue operation could not be performed."""


def _row_dict(row: sqlite3.Row) -> Dict[str, Any]:
    out = dict(row)
    for field in ("params", "engine"):
        out[field] = json.loads(out[field])
    if out.get("result"):
        out["result"] = json.loads(out["result"])
    return out


class RunQueue:
    """The ``runs`` table behind one SQLite file.

    Every public method opens its own short-lived connection, so one
    instance may be shared across API threads, and separate instances
    in separate worker processes coordinate through the same file.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with closing(self._connect()) as conn:
            conn.executescript(_SCHEMA)
            for table, column, clause in _MIGRATIONS:
                present = {row["name"] for row in conn.execute(
                    f"PRAGMA table_info({table})")}
                if column not in present:
                    conn.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {clause}")

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0,
                               isolation_level=None)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- submission -----------------------------------------------------

    def submit(self, run_id: str, tool: str, params: Dict[str, Any],
               engine: Dict[str, str],
               corpus_id: Optional[str] = None) -> Tuple[Dict[str, Any], bool]:
        """Enqueue one request; returns ``(run row, created)``.

        ``created`` is False when an identical request already holds
        the row — the dedup hit: the existing row (whatever its state)
        comes back with its ``submits`` tally bumped.
        """
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(
                "INSERT OR IGNORE INTO runs "
                "(run_id, tool, params, engine, corpus_id, status, created) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (run_id, tool,
                 json.dumps(params, sort_keys=True),
                 json.dumps(engine, sort_keys=True),
                 corpus_id, QUEUED, now),
            )
            created = cursor.rowcount == 1
            if not created:
                conn.execute(
                    "UPDATE runs SET submits = submits + 1 WHERE run_id = ?",
                    (run_id,),
                )
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            conn.execute("COMMIT")
        servicelog.emit("run.submitted", proc="queue", run_id=run_id,
                        tool=tool, deduped=not created)
        if not created:
            REGISTRY.bump("serve.deduped")
        return _row_dict(row), created

    # -- claiming -------------------------------------------------------

    def claim_batch(self, worker: str, limit: int = 1,
                    lease_seconds: float = DEFAULT_LEASE_SECONDS,
                    ) -> List[Dict[str, Any]]:
        """Atomically claim up to ``limit`` compatible runs.

        Eligible rows are ``queued`` plus ``claimed`` rows whose lease
        lapsed (their worker is presumed dead).  The batch is anchored
        on the oldest eligible row; the rest of the batch must share
        its engine signature and corpus so one warm pool and one warm
        memo set serve every job in the wave.
        """
        now = time.time()
        eligible = ("(status = ? OR (status = ? AND lease_expires IS NOT NULL"
                    " AND lease_expires < ?))")
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            head = conn.execute(
                f"SELECT * FROM runs WHERE {eligible} "
                f"ORDER BY created, run_id LIMIT 1",
                (QUEUED, CLAIMED, now),
            ).fetchone()
            if head is None:
                conn.execute("COMMIT")
                return []
            rows = conn.execute(
                f"SELECT * FROM runs WHERE {eligible} "
                f"AND engine = ? AND corpus_id IS ? "
                f"ORDER BY created, run_id LIMIT ?",
                (QUEUED, CLAIMED, now, head["engine"], head["corpus_id"],
                 max(1, limit)),
            ).fetchall()
            claimed = []
            reclaimed = []
            for row in rows:
                # A row still CLAIMED here got past the eligibility
                # filter only because its lease lapsed: this claim is
                # a *reclaim* — a worker died or stalled mid-job.
                is_reclaim = row["status"] == CLAIMED
                conn.execute(
                    "UPDATE runs SET status = ?, claimed_by = ?, "
                    "claimed_at = ?, started = NULL, lease_expires = ?, "
                    "attempts = attempts + 1, reclaims = reclaims + ? "
                    "WHERE run_id = ?",
                    (CLAIMED, worker, now, now + lease_seconds,
                     1 if is_reclaim else 0, row["run_id"]),
                )
                claimed.append(row["run_id"])
                if is_reclaim:
                    reclaimed.append(row["run_id"])
            conn.execute("COMMIT")
            out = [
                _row_dict(conn.execute(
                    "SELECT * FROM runs WHERE run_id = ?", (run_id,)
                ).fetchone())
                for run_id in claimed
            ]
        for run_id in reclaimed:
            REGISTRY.bump("serve.lease_reclaimed")
            servicelog.emit("run.reclaimed", proc="queue", run_id=run_id,
                            worker=worker, reclaimed=True)
        for row_dict in out:
            servicelog.emit("run.claimed", proc="queue",
                            run_id=row_dict["run_id"], worker=worker,
                            attempt=row_dict["attempts"])
        return out

    def start(self, run_id: str, worker: str) -> bool:
        """Stamp execution start on a held claim; False when lost.

        ``claimed_at`` is queue bookkeeping; ``started`` is when the
        worker actually began executing the tool — the gap between them
        is lease renewal and batch setup, and the exec-latency
        histogram measures from here.
        """
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE runs SET started = ? "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (time.time(), run_id, CLAIMED, worker),
            )
            started = cursor.rowcount == 1
        if started:
            servicelog.emit("run.started", proc="queue", run_id=run_id,
                            worker=worker)
        return started

    def renew(self, run_id: str, worker: str,
              lease_seconds: float = DEFAULT_LEASE_SECONDS) -> bool:
        """Extend a live claim's lease; False when no longer held."""
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE runs SET lease_expires = ? "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (time.time() + lease_seconds, run_id, CLAIMED, worker),
            )
            renewed = cursor.rowcount == 1
        return renewed

    # -- completion -----------------------------------------------------

    def finish(self, run_id: str, worker: str, result: Dict[str, Any],
               manifest_path: Optional[str] = None) -> bool:
        """Mark one claimed run done; False when the claim was lost.

        The ``claimed_by`` guard means a worker whose lease was
        reclaimed (it stalled; another worker re-ran the job) cannot
        overwrite the reclaiming worker's result.
        """
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE runs SET status = ?, finished = ?, result = ?, "
                "manifest_path = ?, error = NULL "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (DONE, time.time(), json.dumps(result, sort_keys=True),
                 manifest_path, run_id, CLAIMED, worker),
            )
            finished = cursor.rowcount == 1
        if finished:
            latency = self.run_latencies(run_id)
            servicelog.emit("run.finished", proc="queue", run_id=run_id,
                            worker=worker, status=DONE, **latency)
        return finished

    def fail(self, run_id: str, worker: str, error: str) -> bool:
        """Mark one claimed run failed; False when the claim was lost."""
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE runs SET status = ?, finished = ?, error = ? "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (FAILED, time.time(), error, run_id, CLAIMED, worker),
            )
            failed = cursor.rowcount == 1
        if failed:
            servicelog.emit("run.failed", proc="queue", run_id=run_id,
                            worker=worker, status=FAILED,
                            error=error[:500])
        return failed

    # -- inspection -----------------------------------------------------

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One run row, or None."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return None if row is None else _row_dict(row)

    def list_runs(self, status: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        """Recent runs, optionally filtered by status."""
        with closing(self._connect()) as conn:
            if status is None:
                rows = conn.execute(
                    "SELECT * FROM runs ORDER BY created DESC LIMIT ?",
                    (limit,),
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT * FROM runs WHERE status = ? "
                    "ORDER BY created DESC LIMIT ?",
                    (status, limit),
                ).fetchall()
        return [_row_dict(row) for row in rows]

    def stats(self) -> Dict[str, Any]:
        """Queue depth by state plus the dedup tallies.

        ``dedup_ratio`` is the fraction of submissions that coalesced
        onto an existing run: ``1 - runs / submits`` (0.0 when every
        request was unique).
        """
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS n, SUM(submits) AS submits, "
                "SUM(reclaims) AS reclaims FROM runs GROUP BY status"
            ).fetchall()
        by_status = {state: 0 for state in STATES}
        runs = submits = reclaims = 0
        for row in rows:
            by_status[row["status"]] = row["n"]
            runs += row["n"]
            submits += row["submits"] or 0
            reclaims += row["reclaims"] or 0
        return {
            "runs": runs,
            "submits": submits,
            "deduplicated": submits - runs,
            "dedup_ratio": (1.0 - runs / submits) if submits else 0.0,
            "reclaims": reclaims,
            "by_status": by_status,
        }

    # -- telemetry ------------------------------------------------------

    @staticmethod
    def timeline(row: Dict[str, Any]) -> Dict[str, Optional[float]]:
        """Derived latencies for one run row (None where not yet known).

        - ``queue_latency``: submission to claim (time spent queued);
        - ``exec_latency``: execution start to finish;
        - ``request_latency``: submission to finish, end to end.

        Reclaimed rows measure from the *winning* claim — the timeline
        answers "how long did the run that produced the result take",
        not "how long did every attempt take" (that is ``attempts``).
        """
        created = row.get("created")
        claimed_at = row.get("claimed_at")
        started = row.get("started")
        finished = row.get("finished")
        out: Dict[str, Optional[float]] = {
            "queue_latency": None, "exec_latency": None,
            "request_latency": None,
        }
        if created is not None and claimed_at is not None:
            out["queue_latency"] = max(0.0, claimed_at - created)
        if started is not None and finished is not None:
            out["exec_latency"] = max(0.0, finished - started)
        if created is not None and finished is not None:
            out["request_latency"] = max(0.0, finished - created)
        return out

    def run_latencies(self, run_id: str) -> Dict[str, Optional[float]]:
        """The derived timeline of one run (see :meth:`timeline`)."""
        row = self.get(run_id)
        if row is None:
            return {"queue_latency": None, "exec_latency": None,
                    "request_latency": None}
        return self.timeline(row)

    def latencies(self, limit: int = 5000) -> Dict[str, Histogram]:
        """Queue/exec/request latency histograms over finished runs.

        Computed from the table at call time — the API process scrapes
        these for ``/v1/metrics`` without ever having executed a run
        itself (worker-side in-process counters are invisible across
        the process boundary; the database is the shared truth).
        ``limit`` bounds the scan to the newest rows so a scrape stays
        O(recent fleet activity), not O(all time).
        """
        histograms = {
            "serve.run.queue_latency": Histogram(),
            "serve.run.exec_latency": Histogram(),
            "serve.run.request_latency": Histogram(),
        }
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT created, claimed_at, started, finished FROM runs "
                "WHERE status IN (?, ?) ORDER BY finished DESC LIMIT ?",
                (DONE, FAILED, limit),
            ).fetchall()
        for row in rows:
            timeline = self.timeline(dict(row))
            if timeline["queue_latency"] is not None:
                histograms["serve.run.queue_latency"].observe(
                    timeline["queue_latency"])
            if timeline["exec_latency"] is not None:
                histograms["serve.run.exec_latency"].observe(
                    timeline["exec_latency"])
            if timeline["request_latency"] is not None:
                histograms["serve.run.request_latency"].observe(
                    timeline["request_latency"])
        return histograms

    # -- worker heartbeats ----------------------------------------------

    def heartbeat(self, worker_id: str, jobs_done: int = 0,
                  jobs_failed: int = 0, batches: int = 0) -> None:
        """Upsert one worker's liveness row (deltas add to tallies)."""
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute(
                "INSERT INTO workers "
                "(worker_id, started, last_seen, jobs_done, jobs_failed, "
                " batches) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(worker_id) DO UPDATE SET "
                "last_seen = excluded.last_seen, "
                "jobs_done = jobs_done + excluded.jobs_done, "
                "jobs_failed = jobs_failed + excluded.jobs_failed, "
                "batches = batches + excluded.batches",
                (worker_id, now, now, jobs_done, jobs_failed, batches),
            )

    def workers(self, stale_seconds: float = WORKER_STALE_SECONDS
                ) -> List[Dict[str, Any]]:
        """Every known worker, newest heartbeat first, staleness flagged."""
        now = time.time()
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT * FROM workers ORDER BY last_seen DESC"
            ).fetchall()
        out = []
        for row in rows:
            record = dict(row)
            record["alive"] = (now - record["last_seen"]) < stale_seconds
            out.append(record)
        return out


# ---------------------------------------------------------------------------
# corpus snapshot store
# ---------------------------------------------------------------------------


class CorpusStore:
    """Content-addressed corpus snapshots under ``<root>/corpus/``.

    An upload is an *overlay*: the checked-in corpus is copied into a
    fresh snapshot directory and the uploaded files replace (or join)
    it, so clients ship only the units they changed.  The snapshot id
    is a sha256 over the resulting ``(filename, content sha)`` set —
    upload the same overlay twice and you get the same snapshot, which
    keeps request keys (and therefore dedup) content-stable.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.join(root, "corpus")
        os.makedirs(self.root, exist_ok=True)

    def path(self, corpus_id: str) -> str:
        """The snapshot directory for one corpus id (must exist)."""
        path = os.path.join(self.root, corpus_id)
        if not os.path.isdir(path):
            raise QueueError(f"unknown corpus snapshot {corpus_id!r}")
        return path

    def hashes(self, corpus_id: Optional[str]) -> Dict[str, str]:
        """filename -> source sha256 for one snapshot (None = default)."""
        if corpus_id is None:
            from repro.obs.manifest import corpus_hashes

            return corpus_hashes()
        out: Dict[str, str] = {}
        directory = self.path(corpus_id)
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".c"):
                continue
            with open(os.path.join(directory, name), "rb") as handle:
                out[name] = hashlib.sha256(handle.read()).hexdigest()
        return out

    def add(self, files: Dict[str, str]) -> str:
        """Store one overlay upload; returns its content-derived id."""
        from repro.corpus.loader import UNIT_COMPONENTS, corpus_path

        for name in files:
            if os.path.basename(name) != name or not name.endswith(".c"):
                raise QueueError(f"invalid corpus filename {name!r}")
        merged: Dict[str, bytes] = {}
        for name in UNIT_COMPONENTS:
            with open(corpus_path(name), "rb") as handle:
                merged[name] = handle.read()
        for name, source in files.items():
            merged[name] = source.encode("utf-8")
        digest = hashlib.sha256()
        for name in sorted(merged):
            sha = hashlib.sha256(merged[name]).hexdigest()
            digest.update(f"{name}={sha}\n".encode("utf-8"))
        corpus_id = digest.hexdigest()[:32]
        directory = os.path.join(self.root, corpus_id)
        if not os.path.isdir(directory):
            tmp = directory + ".tmp"
            os.makedirs(tmp, exist_ok=True)
            for name, blob in merged.items():
                with open(os.path.join(tmp, name), "wb") as handle:
                    handle.write(blob)
            try:
                os.replace(tmp, directory)
            except OSError:
                # A racing identical upload won the rename; same content.
                import shutil

                shutil.rmtree(tmp, ignore_errors=True)
        return corpus_id
