"""SQLite-backed ``runs`` queue and corpus snapshot store (no broker).

The database *is* the queue: submitting inserts a row, workers claim
rows inside one ``BEGIN IMMEDIATE`` transaction, and every state
transition is a guarded ``UPDATE``.  SQLite's writer lock plus WAL
journaling give the whole service its concurrency story — API threads
and worker processes coordinate through the file, with no broker
process to deploy or lose.

Queue states::

    queued ──claim──▶ claimed ──finish──▶ done
       ▲                 │└─────fail────▶ failed
       └── lease timeout ┘  (reclaim: stale claims are claimable again)

**Single-flight dedup.**  ``run_id`` *is* the content key
(:mod:`repro.serve.keys`), held ``UNIQUE``: a duplicate submission
lands on the existing row — whatever its state — bumps its ``submits``
tally, and returns the same run id.  Concurrent identical requests
therefore coalesce onto one execution and all read one result; a
duplicate of a *finished* run skips the queue entirely, which is the
≥5x duplicate-latency floor in ``bench_service.py``.

**Leases.**  A claim stamps ``claimed_by`` and ``lease_expires``; a
worker that dies mid-job simply stops renewing, and once the lease
lapses the row is claimable again (``attempts`` counts the tries).
``finish``/``fail`` are guarded by ``claimed_by`` so a worker whose
lease was reclaimed cannot clobber the reclaiming worker's result.

**Batching.**  :meth:`RunQueue.claim_batch` claims the oldest eligible
run plus up to ``limit-1`` more with the *same engine signature and
corpus* — jobs one warm process pool and one warm memo/analysis-store
set can serve back to back, so N small compatible requests cost one
pool warm-up and one shared extraction instead of N.

**Telemetry.**  Every row carries its full timeline — ``created``
(queued), ``claimed_at``, ``started`` (execution began), ``finished``
— so queue latency, execution latency, and end-to-end request latency
are derivable from the table alone; :meth:`RunQueue.latencies` folds
the finished rows into :class:`~repro.obs.metrics.Histogram` snapshots
that the API renders on ``GET /v1/metrics``.  This matters because the
API and the workers are *different processes*: in-process counters
cannot see each other, but every process sees the database.  Reclaims
(a claim of a lapsed lease) are counted per row and in aggregate, and
every state transition emits a structured service-log event
(:mod:`repro.obs.servicelog`) — a no-op until the process configures a
log path.  A ``workers`` side table records heartbeats so the fleet's
liveness is one query away.

**Connection reuse.**  Opening a SQLite connection costs a file open,
WAL handshake, and two pragmas — pure overhead when the API serves
thousands of requests per second over keep-alive connections.  Each
:class:`RunQueue` therefore keeps one cached connection *per thread*
(SQLite connections are not thread-safe to share, but are cheap to
hold): the pragmas run once per thread instead of once per call, and
``serve.db.conn_reuse`` counts the saved opens.  The cache is
pid-guarded — a forked child silently abandons (never closes) handles
inherited from its parent — and :meth:`RunQueue.close` invalidates
every cached handle so tests and shutdown paths release the file
promptly.  Claim semantics are unchanged: claims still run inside one
``BEGIN IMMEDIATE`` transaction, and the pooled context manager rolls
back on error so a failed transaction cannot leak into the next call
on the same cached handle.

**Change watching.**  :class:`QueueWatcher` turns the database into an
event source: one daemon thread polls ``PRAGMA data_version`` on a
dedicated connection (the pragma changes only when *another*
connection commits) and broadcasts a condition variable to every
registered waiter.  N long-polling API clients — or an idle worker
waiting for work — cost one poll per tick instead of N re-reads, and
``serve.wait.wakeups`` counts the broadcasts.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from contextlib import closing, contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import servicelog
from repro.obs.metrics import REGISTRY, Histogram

#: Queue states.
QUEUED = "queued"
CLAIMED = "claimed"
DONE = "done"
FAILED = "failed"

STATES = (QUEUED, CLAIMED, DONE, FAILED)

#: Seconds a claim stays valid without renewal.
DEFAULT_LEASE_SECONDS = 120.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        TEXT PRIMARY KEY,   -- the content key (single-flight dedup)
    tool          TEXT NOT NULL,
    params        TEXT NOT NULL,      -- canonical JSON
    engine        TEXT NOT NULL,      -- resolved engine-mode JSON
    corpus_id     TEXT,               -- NULL = the checked-in corpus
    status        TEXT NOT NULL,
    submits       INTEGER NOT NULL DEFAULT 1,
    attempts      INTEGER NOT NULL DEFAULT 0,
    reclaims      INTEGER NOT NULL DEFAULT 0,
    created       REAL NOT NULL,
    claimed_by    TEXT,
    claimed_at    REAL,
    started       REAL,               -- execution began (vs claim bookkeeping)
    lease_expires REAL,
    finished      REAL,
    result        TEXT,               -- JSON result payload (done runs)
    manifest_path TEXT,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS runs_status ON runs (status, created);
CREATE INDEX IF NOT EXISTS runs_finished ON runs (finished);
CREATE TABLE IF NOT EXISTS workers (
    worker_id   TEXT PRIMARY KEY,
    started     REAL NOT NULL,
    last_seen   REAL NOT NULL,
    jobs_done   INTEGER NOT NULL DEFAULT 0,
    jobs_failed INTEGER NOT NULL DEFAULT 0,
    batches     INTEGER NOT NULL DEFAULT 0
);
"""

#: Columns older databases may be missing, with their ALTER clauses —
#: a pre-telemetry service.db upgrades in place on first open.
_MIGRATIONS = (
    ("runs", "reclaims", "INTEGER NOT NULL DEFAULT 0"),
    ("runs", "started", "REAL"),
)

#: A worker whose heartbeat is older than this is shown as stale.
WORKER_STALE_SECONDS = 300.0


class QueueError(RuntimeError):
    """A queue operation could not be performed."""


def _row_dict(row: sqlite3.Row) -> Dict[str, Any]:
    out = dict(row)
    for field in ("params", "engine"):
        out[field] = json.loads(out[field])
    if out.get("result"):
        out["result"] = json.loads(out["result"])
    return out


class _PooledConn:
    """One thread's cached connection, stored in thread-local storage.

    When the owning thread dies its thread-local storage is torn down,
    this holder is garbage-collected, and ``__del__`` retires the
    connection — so short-lived API threads cannot leak file handles.
    """

    __slots__ = ("conn", "pid", "generation", "_retire")

    def __init__(self, conn: sqlite3.Connection, pid: int,
                 generation: int, retire) -> None:
        self.conn = conn
        self.pid = pid
        self.generation = generation
        self._retire = retire

    def __del__(self) -> None:
        try:
            self._retire(self.conn, self.pid)
        except Exception:
            pass


class RunQueue:
    """The ``runs`` table behind one SQLite file.

    One instance may be shared across API threads — each thread gets
    its own cached connection (see :meth:`_conn`) — and separate
    instances in separate worker processes coordinate through the same
    file.  ``pooling=False`` restores the original
    connection-per-call behaviour (the benchmark baseline, also useful
    when debugging locking issues).
    """

    def __init__(self, path: str, pooling: Optional[bool] = None) -> None:
        self.path = path
        if pooling is None:
            pooling = os.environ.get("REPRO_SERVE_POOL", "1") != "0"
        self.pooling = bool(pooling)
        self._local = threading.local()
        self._pool_lock = threading.Lock()
        self._pool: Dict[int, sqlite3.Connection] = {}
        self._pool_pid = os.getpid()
        self._generation = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with self._conn() as conn:
            conn.executescript(_SCHEMA)
            for table, column, clause in _MIGRATIONS:
                present = {row["name"] for row in conn.execute(
                    f"PRAGMA table_info({table})")}
                if column not in present:
                    conn.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {clause}")

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False: each cached connection is used by
        # exactly one thread (thread-local), but close() and the GC
        # finalizer must be able to close it from another thread.
        conn = sqlite3.connect(self.path, timeout=30.0,
                               isolation_level=None,
                               check_same_thread=False)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- connection pool ------------------------------------------------

    def _retire(self, conn: sqlite3.Connection, pid: int) -> None:
        """Drop one pooled connection; closes it only in its own pid.

        A connection inherited across ``fork`` must never be closed by
        the child — closing could flush parent-owned WAL state — so
        the child simply abandons the handle and lets the parent (or
        the OS) reclaim it.
        """
        with self._pool_lock:
            self._pool.pop(id(conn), None)
        if pid == os.getpid():
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def _cached_conn(self) -> sqlite3.Connection:
        pid = os.getpid()
        holder = getattr(self._local, "holder", None)
        if (holder is not None and holder.pid == pid
                and holder.generation == self._generation):
            REGISTRY.bump("serve.db.conn_reuse")
            return holder.conn
        if holder is not None:
            # Stale: closed by close() (generation bump) or inherited
            # across fork (pid mismatch).  Drop the reference; the
            # holder's finalizer knows not to close foreign-pid handles.
            self._local.holder = None
        with self._pool_lock:
            if self._pool_pid != pid:
                # First use after fork: the registry still lists the
                # parent's connections.  Abandon them all unclosed.
                self._pool = {}
                self._pool_pid = pid
        conn = self._connect()
        with self._pool_lock:
            if self._pool_pid == pid:
                self._pool[id(conn)] = conn
        self._local.holder = _PooledConn(conn, pid, self._generation,
                                         self._retire)
        REGISTRY.bump("serve.db.conn_opened")
        return conn

    @contextmanager
    def _conn(self) -> Iterator[sqlite3.Connection]:
        """This thread's cached connection (or a throwaway one).

        On error the cached connection is rolled back — a reused
        handle must never carry a half-open transaction into the next
        call — and if even the rollback fails the handle is retired so
        the next call starts fresh.
        """
        if not self.pooling:
            with closing(self._connect()) as conn:
                yield conn
            return
        conn = self._cached_conn()
        try:
            yield conn
        except BaseException:
            try:
                if conn.in_transaction:
                    conn.rollback()
            except sqlite3.Error:
                self._local.holder = None
                self._retire(conn, os.getpid())
            raise

    def close(self) -> None:
        """Close every pooled connection (graceful invalidation).

        Threads holding a cached handle see the generation bump and
        reopen on their next call; close() is a shutdown/test hook,
        not something to race against in-flight queries.
        """
        with self._pool_lock:
            if self._pool_pid == os.getpid():
                conns = list(self._pool.values())
            else:
                conns = []  # inherited handles: abandon, never close
            self._pool = {}
            self._generation += 1
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    # -- submission -----------------------------------------------------

    def submit(self, run_id: str, tool: str, params: Dict[str, Any],
               engine: Dict[str, str],
               corpus_id: Optional[str] = None) -> Tuple[Dict[str, Any], bool]:
        """Enqueue one request; returns ``(run row, created)``.

        ``created`` is False when an identical request already holds
        the row — the dedup hit: the existing row (whatever its state)
        comes back with its ``submits`` tally bumped.
        """
        now = time.time()
        with self._conn() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(
                "INSERT OR IGNORE INTO runs "
                "(run_id, tool, params, engine, corpus_id, status, created) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (run_id, tool,
                 json.dumps(params, sort_keys=True),
                 json.dumps(engine, sort_keys=True),
                 corpus_id, QUEUED, now),
            )
            created = cursor.rowcount == 1
            if not created:
                conn.execute(
                    "UPDATE runs SET submits = submits + 1 WHERE run_id = ?",
                    (run_id,),
                )
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            conn.execute("COMMIT")
        servicelog.emit("run.submitted", proc="queue", run_id=run_id,
                        tool=tool, deduped=not created)
        if not created:
            REGISTRY.bump("serve.deduped")
        return _row_dict(row), created

    # -- claiming -------------------------------------------------------

    def claim_batch(self, worker: str, limit: int = 1,
                    lease_seconds: float = DEFAULT_LEASE_SECONDS,
                    ) -> List[Dict[str, Any]]:
        """Atomically claim up to ``limit`` compatible runs.

        Eligible rows are ``queued`` plus ``claimed`` rows whose lease
        lapsed (their worker is presumed dead).  The batch is anchored
        on the oldest eligible row; the rest of the batch must share
        its engine signature and corpus so one warm pool and one warm
        memo set serve every job in the wave.
        """
        now = time.time()
        eligible = ("(status = ? OR (status = ? AND lease_expires IS NOT NULL"
                    " AND lease_expires < ?))")
        with self._conn() as conn:
            conn.execute("BEGIN IMMEDIATE")
            head = conn.execute(
                f"SELECT * FROM runs WHERE {eligible} "
                f"ORDER BY created, run_id LIMIT 1",
                (QUEUED, CLAIMED, now),
            ).fetchone()
            if head is None:
                conn.execute("COMMIT")
                return []
            rows = conn.execute(
                f"SELECT * FROM runs WHERE {eligible} "
                f"AND engine = ? AND corpus_id IS ? "
                f"ORDER BY created, run_id LIMIT ?",
                (QUEUED, CLAIMED, now, head["engine"], head["corpus_id"],
                 max(1, limit)),
            ).fetchall()
            claimed = []
            reclaimed = []
            for row in rows:
                # A row still CLAIMED here got past the eligibility
                # filter only because its lease lapsed: this claim is
                # a *reclaim* — a worker died or stalled mid-job.
                is_reclaim = row["status"] == CLAIMED
                conn.execute(
                    "UPDATE runs SET status = ?, claimed_by = ?, "
                    "claimed_at = ?, started = NULL, lease_expires = ?, "
                    "attempts = attempts + 1, reclaims = reclaims + ? "
                    "WHERE run_id = ?",
                    (CLAIMED, worker, now, now + lease_seconds,
                     1 if is_reclaim else 0, row["run_id"]),
                )
                claimed.append(row["run_id"])
                if is_reclaim:
                    reclaimed.append(row["run_id"])
            conn.execute("COMMIT")
            out = [
                _row_dict(conn.execute(
                    "SELECT * FROM runs WHERE run_id = ?", (run_id,)
                ).fetchone())
                for run_id in claimed
            ]
        for run_id in reclaimed:
            REGISTRY.bump("serve.lease_reclaimed")
            servicelog.emit("run.reclaimed", proc="queue", run_id=run_id,
                            worker=worker, reclaimed=True)
        for row_dict in out:
            servicelog.emit("run.claimed", proc="queue",
                            run_id=row_dict["run_id"], worker=worker,
                            attempt=row_dict["attempts"])
        return out

    def start(self, run_id: str, worker: str) -> bool:
        """Stamp execution start on a held claim; False when lost.

        ``claimed_at`` is queue bookkeeping; ``started`` is when the
        worker actually began executing the tool — the gap between them
        is lease renewal and batch setup, and the exec-latency
        histogram measures from here.
        """
        with self._conn() as conn:
            cursor = conn.execute(
                "UPDATE runs SET started = ? "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (time.time(), run_id, CLAIMED, worker),
            )
            started = cursor.rowcount == 1
        if started:
            servicelog.emit("run.started", proc="queue", run_id=run_id,
                            worker=worker)
        return started

    def renew(self, run_id: str, worker: str,
              lease_seconds: float = DEFAULT_LEASE_SECONDS) -> bool:
        """Extend a live claim's lease; False when no longer held."""
        with self._conn() as conn:
            cursor = conn.execute(
                "UPDATE runs SET lease_expires = ? "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (time.time() + lease_seconds, run_id, CLAIMED, worker),
            )
            renewed = cursor.rowcount == 1
        return renewed

    # -- completion -----------------------------------------------------

    def finish(self, run_id: str, worker: str, result: Dict[str, Any],
               manifest_path: Optional[str] = None) -> bool:
        """Mark one claimed run done; False when the claim was lost.

        The ``claimed_by`` guard means a worker whose lease was
        reclaimed (it stalled; another worker re-ran the job) cannot
        overwrite the reclaiming worker's result.
        """
        with self._conn() as conn:
            cursor = conn.execute(
                "UPDATE runs SET status = ?, finished = ?, result = ?, "
                "manifest_path = ?, error = NULL "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (DONE, time.time(), json.dumps(result, sort_keys=True),
                 manifest_path, run_id, CLAIMED, worker),
            )
            finished = cursor.rowcount == 1
        if finished:
            latency = self.run_latencies(run_id)
            servicelog.emit("run.finished", proc="queue", run_id=run_id,
                            worker=worker, status=DONE, **latency)
        return finished

    def fail(self, run_id: str, worker: str, error: str) -> bool:
        """Mark one claimed run failed; False when the claim was lost."""
        with self._conn() as conn:
            cursor = conn.execute(
                "UPDATE runs SET status = ?, finished = ?, error = ? "
                "WHERE run_id = ? AND status = ? AND claimed_by = ?",
                (FAILED, time.time(), error, run_id, CLAIMED, worker),
            )
            failed = cursor.rowcount == 1
        if failed:
            servicelog.emit("run.failed", proc="queue", run_id=run_id,
                            worker=worker, status=FAILED,
                            error=error[:500])
        return failed

    # -- inspection -----------------------------------------------------

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One run row, or None."""
        with self._conn() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return None if row is None else _row_dict(row)

    def list_runs(self, status: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        """Recent runs, optionally filtered by status."""
        with self._conn() as conn:
            if status is None:
                rows = conn.execute(
                    "SELECT * FROM runs ORDER BY created DESC LIMIT ?",
                    (limit,),
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT * FROM runs WHERE status = ? "
                    "ORDER BY created DESC LIMIT ?",
                    (status, limit),
                ).fetchall()
        return [_row_dict(row) for row in rows]

    def stats(self) -> Dict[str, Any]:
        """Queue depth by state plus the dedup tallies.

        ``dedup_ratio`` is the fraction of submissions that coalesced
        onto an existing run: ``1 - runs / submits`` (0.0 when every
        request was unique).
        """
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS n, SUM(submits) AS submits, "
                "SUM(reclaims) AS reclaims FROM runs GROUP BY status"
            ).fetchall()
        by_status = {state: 0 for state in STATES}
        runs = submits = reclaims = 0
        for row in rows:
            by_status[row["status"]] = row["n"]
            runs += row["n"]
            submits += row["submits"] or 0
            reclaims += row["reclaims"] or 0
        return {
            "runs": runs,
            "submits": submits,
            "deduplicated": submits - runs,
            "dedup_ratio": (1.0 - runs / submits) if submits else 0.0,
            "reclaims": reclaims,
            "by_status": by_status,
        }

    # -- telemetry ------------------------------------------------------

    @staticmethod
    def timeline(row: Dict[str, Any]) -> Dict[str, Optional[float]]:
        """Derived latencies for one run row (None where not yet known).

        - ``queue_latency``: submission to claim (time spent queued);
        - ``exec_latency``: execution start to finish;
        - ``request_latency``: submission to finish, end to end.

        Reclaimed rows measure from the *winning* claim — the timeline
        answers "how long did the run that produced the result take",
        not "how long did every attempt take" (that is ``attempts``).
        """
        created = row.get("created")
        claimed_at = row.get("claimed_at")
        started = row.get("started")
        finished = row.get("finished")
        out: Dict[str, Optional[float]] = {
            "queue_latency": None, "exec_latency": None,
            "request_latency": None,
        }
        if created is not None and claimed_at is not None:
            out["queue_latency"] = max(0.0, claimed_at - created)
        if started is not None and finished is not None:
            out["exec_latency"] = max(0.0, finished - started)
        if created is not None and finished is not None:
            out["request_latency"] = max(0.0, finished - created)
        return out

    def run_latencies(self, run_id: str) -> Dict[str, Optional[float]]:
        """The derived timeline of one run (see :meth:`timeline`)."""
        row = self.get(run_id)
        if row is None:
            return {"queue_latency": None, "exec_latency": None,
                    "request_latency": None}
        return self.timeline(row)

    def latencies(self, limit: int = 5000) -> Dict[str, Histogram]:
        """Queue/exec/request latency histograms over finished runs.

        Computed from the table at call time — the API process scrapes
        these for ``/v1/metrics`` without ever having executed a run
        itself (worker-side in-process counters are invisible across
        the process boundary; the database is the shared truth).
        ``limit`` bounds the window to the most recently finished rows
        and the ``runs_finished`` index serves the ``ORDER BY finished
        DESC`` directly, so a scrape walks at most ``limit`` index
        entries — O(recent fleet activity), not O(all time) — no
        matter how large the table grows.
        """
        histograms = {
            "serve.run.queue_latency": Histogram(),
            "serve.run.exec_latency": Histogram(),
            "serve.run.request_latency": Histogram(),
        }
        with self._conn() as conn:
            # INDEXED BY pins the plan: walk the finished index newest
            # first and stop at `limit` — without it SQLite prefers the
            # status index plus a temp-btree sort over *all* finished
            # rows, which is exactly the O(table) scrape this bounds.
            rows = conn.execute(
                "SELECT created, claimed_at, started, finished "
                "FROM runs INDEXED BY runs_finished "
                "WHERE finished IS NOT NULL AND status IN (?, ?) "
                "ORDER BY finished DESC LIMIT ?",
                (DONE, FAILED, limit),
            ).fetchall()
        for row in rows:
            timeline = self.timeline(dict(row))
            if timeline["queue_latency"] is not None:
                histograms["serve.run.queue_latency"].observe(
                    timeline["queue_latency"])
            if timeline["exec_latency"] is not None:
                histograms["serve.run.exec_latency"].observe(
                    timeline["exec_latency"])
            if timeline["request_latency"] is not None:
                histograms["serve.run.request_latency"].observe(
                    timeline["request_latency"])
        return histograms

    # -- worker heartbeats ----------------------------------------------

    def heartbeat(self, worker_id: str, jobs_done: int = 0,
                  jobs_failed: int = 0, batches: int = 0) -> None:
        """Upsert one worker's liveness row (deltas add to tallies)."""
        now = time.time()
        with self._conn() as conn:
            conn.execute(
                "INSERT INTO workers "
                "(worker_id, started, last_seen, jobs_done, jobs_failed, "
                " batches) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(worker_id) DO UPDATE SET "
                "last_seen = excluded.last_seen, "
                "jobs_done = jobs_done + excluded.jobs_done, "
                "jobs_failed = jobs_failed + excluded.jobs_failed, "
                "batches = batches + excluded.batches",
                (worker_id, now, now, jobs_done, jobs_failed, batches),
            )

    def workers(self, stale_seconds: float = WORKER_STALE_SECONDS
                ) -> List[Dict[str, Any]]:
        """Every known worker, newest heartbeat first, staleness flagged."""
        now = time.time()
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT * FROM workers ORDER BY last_seen DESC"
            ).fetchall()
        out = []
        for row in rows:
            record = dict(row)
            record["alive"] = (now - record["last_seen"]) < stale_seconds
            out.append(record)
        return out


# ---------------------------------------------------------------------------
# change watching
# ---------------------------------------------------------------------------


#: How often the watcher reads ``PRAGMA data_version`` while waiters
#: are registered.  This is the *only* recurring DB touch no matter
#: how many clients are blocked in a long-poll.
WATCH_POLL_SECONDS = 0.02

#: With no waiters the watcher parks on an event instead of polling;
#: this bounds how long it sleeps between wake-up checks.
WATCH_PARK_SECONDS = 0.5


class QueueWatcher:
    """One ``PRAGMA data_version`` poller fanned out to many waiters.

    ``data_version`` changes whenever *another* connection commits to
    the database, so a single persistent read-only connection can
    detect every state transition made by workers (or the API) without
    reading any rows.  Waiters grab a :meth:`token`, re-check their
    predicate (a run row, an empty claim query) and block in
    :meth:`wait` until the token goes stale — the re-check-after-token
    ordering means a missed broadcast costs latency, never
    correctness.

    With no waiters registered the poll thread parks on an event and
    touches nothing — an idle service does zero recurring DB reads.
    """

    def __init__(self, queue: RunQueue,
                 poll_seconds: float = WATCH_POLL_SECONDS) -> None:
        self.queue = queue
        self.poll_seconds = poll_seconds
        self._cond = threading.Condition()
        self._tick = 0
        self._waiters = 0
        self._stop = threading.Event()
        self._kick = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "QueueWatcher":
        """Start (or restart) the poll thread; idempotent."""
        with self._cond:
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run, name="repro-queue-watch", daemon=True)
                self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the poll thread and release every blocked waiter."""
        self._stop.set()
        self._kick.set()
        with self._cond:
            self._tick += 1  # wake blocked waiters so they re-check
            self._cond.notify_all()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- waiting --------------------------------------------------------

    def token(self) -> int:
        """The current change tick; take it *before* reading state."""
        with self._cond:
            return self._tick

    def changed(self, token: int) -> bool:
        """True when the database has changed since ``token``."""
        with self._cond:
            return self._tick != token

    def wait(self, token: int, timeout: float) -> int:
        """Block until a change after ``token`` (or timeout).

        Returns the current tick either way; callers re-read their
        predicate and loop with the fresh token.
        """
        with self._cond:
            self._waiters += 1
            REGISTRY.set_gauge("serve.wait.waiters", self._waiters)
            self._kick.set()
            try:
                self._cond.wait_for(lambda: self._tick != token,
                                    timeout=max(0.0, timeout))
                return self._tick
            finally:
                self._waiters -= 1
                REGISTRY.set_gauge("serve.wait.waiters", self._waiters)

    # -- the poll thread ------------------------------------------------

    def _data_version(self, conn: sqlite3.Connection) -> int:
        return int(conn.execute("PRAGMA data_version").fetchone()[0])

    def _run(self) -> None:
        # A dedicated connection: data_version is per-connection state
        # (it counts commits made by *other* connections), so the
        # baseline must live on one persistent handle — the pool's
        # per-call baseline mode would reset it every read.
        try:
            conn = self.queue._connect()
        except sqlite3.Error:
            return
        try:
            version = self._data_version(conn)
            while not self._stop.is_set():
                with self._cond:
                    waiting = self._waiters
                if not waiting:
                    # Nobody is listening: park.  The baseline persists
                    # across the park, so changes made meanwhile fire
                    # one (possibly spurious) wakeup on the next wait.
                    self._kick.wait(timeout=WATCH_PARK_SECONDS)
                    self._kick.clear()
                    continue
                REGISTRY.bump("serve.wait.polls")
                current = self._data_version(conn)
                if current != version:
                    version = current
                    with self._cond:
                        self._tick += 1
                        woken = self._waiters
                        self._cond.notify_all()
                    REGISTRY.bump("serve.wait.wakeups", max(1, woken))
                self._stop.wait(self.poll_seconds)
        except sqlite3.Error:
            pass  # db vanished under us (test teardown); waiters time out
        finally:
            try:
                conn.close()
            except sqlite3.Error:
                pass


# ---------------------------------------------------------------------------
# corpus snapshot store
# ---------------------------------------------------------------------------


class CorpusStore:
    """Content-addressed corpus snapshots under ``<root>/corpus/``.

    An upload is an *overlay*: the checked-in corpus is copied into a
    fresh snapshot directory and the uploaded files replace (or join)
    it, so clients ship only the units they changed.  The snapshot id
    is a sha256 over the resulting ``(filename, content sha)`` set —
    upload the same overlay twice and you get the same snapshot, which
    keeps request keys (and therefore dedup) content-stable.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.join(root, "corpus")
        os.makedirs(self.root, exist_ok=True)

    def path(self, corpus_id: str) -> str:
        """The snapshot directory for one corpus id (must exist)."""
        path = os.path.join(self.root, corpus_id)
        if not os.path.isdir(path):
            raise QueueError(f"unknown corpus snapshot {corpus_id!r}")
        return path

    def hashes(self, corpus_id: Optional[str]) -> Dict[str, str]:
        """filename -> source sha256 for one snapshot (None = default)."""
        if corpus_id is None:
            from repro.obs.manifest import corpus_hashes

            return corpus_hashes()
        out: Dict[str, str] = {}
        directory = self.path(corpus_id)
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".c"):
                continue
            with open(os.path.join(directory, name), "rb") as handle:
                out[name] = hashlib.sha256(handle.read()).hexdigest()
        return out

    def add(self, files: Dict[str, str]) -> str:
        """Store one overlay upload; returns its content-derived id."""
        from repro.corpus.loader import UNIT_COMPONENTS, corpus_path

        for name in files:
            if os.path.basename(name) != name or not name.endswith(".c"):
                raise QueueError(f"invalid corpus filename {name!r}")
        merged: Dict[str, bytes] = {}
        for name in UNIT_COMPONENTS:
            with open(corpus_path(name), "rb") as handle:
                merged[name] = handle.read()
        for name, source in files.items():
            merged[name] = source.encode("utf-8")
        digest = hashlib.sha256()
        for name in sorted(merged):
            sha = hashlib.sha256(merged[name]).hexdigest()
            digest.update(f"{name}={sha}\n".encode("utf-8"))
        corpus_id = digest.hexdigest()[:32]
        directory = os.path.join(self.root, corpus_id)
        if not os.path.isdir(directory):
            tmp = directory + ".tmp"
            os.makedirs(tmp, exist_ok=True)
            for name, blob in merged.items():
                with open(os.path.join(tmp, name), "wb") as handle:
                    handle.write(blob)
            try:
                os.replace(tmp, directory)
            except OSError:
                # A racing identical upload won the rename; same content.
                import shutil

                shutil.rmtree(tmp, ignore_errors=True)
        return corpus_id
