"""Workers: claim compatible job batches, execute them, record manifests.

A worker is a loop over :meth:`repro.serve.db.RunQueue.claim_batch`:
claim up to ``batch_limit`` compatible runs, execute them back to back,
mark each ``done``/``failed``.  Execution goes through the *real CLI
entry points* (``repro.cli.main_*``) with stdout captured — the
service's result bytes are, by construction, the bytes a direct CLI
invocation of the same request prints.  ``bench_service.py`` and the
CI service smoke assert that identity rather than trusting it.

Perf shape:

- the worker process is **warm**: in-process memos, the loaded corpus,
  and the persistent process pool (``--backend process``) survive
  across jobs, so only the first job of a configuration pays cold
  costs — every compatible job after it rides warm memos and the
  shared function-level analysis store;
- **batching**: a claimed batch shares one engine signature and
  corpus, so the batch executes as one warm wave — for extraction-
  shaped jobs that is one procpool dispatch wave (the first job
  populates the memos; the rest replay them);
- each run's manifest (the obs run record) is written into the service
  data dir and linked back into the ``runs`` row, carrying a ``run``
  section (run id, request key, worker, attempt) so ``repro-runs
  show``/``diff`` can treat service runs like any other run.

The tool registry below is the submission surface: every tool the
service accepts, the params it allows, and how they become argv.  The
API validates against it at submit time so bad requests fail at the
door, not in a worker.
"""

from __future__ import annotations

import io
import json
import os
import socket
import threading
import time
import traceback
from contextlib import redirect_stderr, redirect_stdout
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import servicelog, tracer as obs_tracer
from repro.obs.metrics import REGISTRY
from repro.perf.timers import bump
from repro.serve import keys as serve_keys
from repro.serve.db import CorpusStore, RunQueue

#: Default upper bound on jobs claimed per wave.
DEFAULT_BATCH_LIMIT = 8

#: Default claim lease; must exceed the slowest single job by a margin.
DEFAULT_LEASE_SECONDS = 120.0

#: Seconds between queue polls when idle.
DEFAULT_POLL_SECONDS = 0.2

#: Seconds between worker heartbeat upserts while idle.
HEARTBEAT_SECONDS = 5.0


def service_tracing_enabled() -> bool:
    """Whether service runs record per-run trace trees (default: yes).

    ``REPRO_SERVE_TRACE=0`` turns it off.  The trace goes to the run's
    record directory and its status lines to stderr, so the captured
    stdout — the service's result bytes — stays byte-identical to a
    direct CLI invocation either way.
    """
    return os.environ.get("REPRO_SERVE_TRACE", "1") != "0"


class RequestError(ValueError):
    """A submitted request names an unknown tool or invalid params."""


@dataclass(frozen=True)
class ToolSpec:
    """One service-invocable tool: its CLI main and allowed params."""

    name: str
    main: str  # attribute on repro.cli
    #: param name -> (python type, argv builder)
    params: Dict[str, Tuple[type, Callable[[Any], List[str]]]] = \
        field(default_factory=dict)

    def build_argv(self, params: Dict[str, Any]) -> List[str]:
        argv: List[str] = []
        for name in sorted(params):
            if name not in self.params:
                raise RequestError(
                    f"tool {self.name!r} does not accept param {name!r}")
            expected, build = self.params[name]
            value = params[name]
            if expected is int and isinstance(value, bool):
                raise RequestError(f"param {name!r} must be an integer")
            if not isinstance(value, expected):
                raise RequestError(
                    f"param {name!r} must be {expected.__name__}, "
                    f"got {type(value).__name__}")
            argv.extend(build(value))
        return argv


def _flag(option: str) -> Callable[[Any], List[str]]:
    return lambda value: [option] if value else []


def _opt(option: str) -> Callable[[Any], List[str]]:
    return lambda value: [option, str(value)]


_ENGINE_PARAMS = {
    "solver": (str, _opt("--solver")),
    "backend": (str, _opt("--backend")),
    "transport": (str, _opt("--transport")),
}

_CAMPAIGN_PARAMS = {
    "jobs": (int, _opt("--jobs")),
    "seed": (int, _opt("--seed")),
    "sample": (str, _opt("--sample")),
    "budget": (int, _opt("--budget")),
    "shards": (int, _opt("--shards")),
    "backend": (str, _opt("--backend")),
    "transport": (str, _opt("--transport")),
}

#: Every tool the service executes.  ``repro-runs`` and ``repro-demo``
#: style inspection stays client-side; these are the compute requests.
TOOLS: Dict[str, ToolSpec] = {
    "extract": ToolSpec("extract", "main_extract", {
        "jobs": (int, _opt("--jobs")),
        "list": (bool, _flag("--list")),
        **_ENGINE_PARAMS,
    }),
    "condocck": ToolSpec("condocck", "main_condocck", {}),
    "conhandleck": ToolSpec("conhandleck", "main_conhandleck", {
        "verbose": (bool, _flag("--verbose")),
        **_CAMPAIGN_PARAMS,
    }),
    "conbugck": ToolSpec("conbugck", "main_conbugck", {
        "count": (int, _opt("--count")),
        "fs_blocks": (int, _opt("--fs-blocks")),
        **_CAMPAIGN_PARAMS,
    }),
    "study": ToolSpec("study", "main_study", {}),
    "demo": ToolSpec("demo", "main_demo", {}),
}


def validate_request(tool: str, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Canonical params for one request; RequestError when invalid.

    Validation *is* argv building — a request is valid exactly when
    the worker could turn it into a CLI invocation.
    """
    spec = TOOLS.get(tool)
    if spec is None:
        raise RequestError(
            f"unknown tool {tool!r}; expected one of {', '.join(sorted(TOOLS))}")
    canonical = serve_keys.canonical_params(params)
    spec.build_argv(canonical)  # raises on unknown/ill-typed params
    return canonical


def resolved_engine(params: Dict[str, Any]) -> Dict[str, str]:
    """The engine modes a request would run under, params pinned.

    Part of the request key: two requests differing only in a pinned
    engine knob execute under different (if byte-identical) engines
    and keep distinct run records, mirroring the analysis-store key.
    """
    from repro.perf import modes

    overrides = {knob: params.get(knob)
                 for knob in ("solver", "backend", "transport")}
    try:
        return modes.resolve_modes(overrides)
    except ValueError as exc:
        raise RequestError(str(exc)) from None


#: Serializes tool execution within one process: the stdout capture is
#: process-global state, and the underlying pipeline is GIL-bound, so
#: overlapping jobs in threads would interleave output for no speedup.
#: Horizontal scale comes from worker *processes* (``repro-worker``).
_EXEC_LOCK = threading.Lock()


class Worker:
    """One queue consumer: claim, execute, record, repeat."""

    def __init__(self, db_path: str, data_dir: str,
                 worker_id: Optional[str] = None,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 poll_seconds: float = DEFAULT_POLL_SECONDS) -> None:
        self.queue = RunQueue(db_path)
        self.store = CorpusStore(data_dir)
        self.data_dir = data_dir
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.batch_limit = max(1, batch_limit)
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.jobs_done = 0
        self.jobs_failed = 0
        self.batches = 0

    # -- execution ------------------------------------------------------

    def execute(self, run: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
        """Run one claimed job; returns ``(result payload, manifest path)``.

        The job executes through its CLI main with stdout/stderr
        captured and ``--manifest`` pointed into the run's record
        directory; the manifest then gets the ``run`` linkage section.
        Exceptions propagate to the caller (which marks the run failed).
        """
        import repro.cli as cli
        from repro.obs.manifest import load_manifest, write_manifest

        spec = TOOLS[run["tool"]]
        argv = spec.build_argv(run["params"])
        run_dir = os.path.join(self.data_dir, "runs", run["run_id"])
        os.makedirs(run_dir, exist_ok=True)
        manifest_path = os.path.join(run_dir, "manifest.json")
        argv = argv + ["--manifest", manifest_path]
        # Per-run trace: the CLI main's own --trace machinery records
        # the span tree into the run directory, and the traceparent —
        # derived from the request key, so every process agrees on it
        # with no coordination — rides the TRACEPARENT environment
        # variable into the session (and from there, inside procpool
        # task envelopes, into the pool workers).  Deliberately not a
        # REPRO_* variable: those key the warm process pool.
        traceparent = obs_tracer.make_traceparent(
            run["run_id"], f"attempt-{int(run['attempts'])}")
        tracing = service_tracing_enabled()
        trace_path = os.path.join(run_dir, "trace.jsonl")
        if tracing:
            argv = argv + ["--trace", trace_path]
        main = getattr(cli, spec.main)
        out, err = io.StringIO(), io.StringIO()
        saved_corpus = os.environ.get("REPRO_CORPUS_DIR")
        saved_traceparent = os.environ.get(obs_tracer.TRACEPARENT_ENV)
        self.queue.start(run["run_id"], self.worker_id)
        started_wall = time.time()
        started = time.perf_counter()
        with _EXEC_LOCK:
            try:
                if run.get("corpus_id"):
                    os.environ["REPRO_CORPUS_DIR"] = \
                        self.store.path(run["corpus_id"])
                os.environ[obs_tracer.TRACEPARENT_ENV] = traceparent
                with redirect_stdout(out), redirect_stderr(err):
                    try:
                        exit_code = int(main(argv) or 0)
                    except SystemExit as exc:  # argparse-style exits
                        exit_code = int(exc.code or 0)
            finally:
                if run.get("corpus_id"):
                    if saved_corpus is None:
                        os.environ.pop("REPRO_CORPUS_DIR", None)
                    else:
                        os.environ["REPRO_CORPUS_DIR"] = saved_corpus
                if saved_traceparent is None:
                    os.environ.pop(obs_tracer.TRACEPARENT_ENV, None)
                else:
                    os.environ[obs_tracer.TRACEPARENT_ENV] = saved_traceparent
        wall = time.perf_counter() - started

        manifest = load_manifest(manifest_path)
        queue_latency = None
        if run.get("claimed_at") is not None and run.get("created") is not None:
            queue_latency = round(
                max(0.0, run["claimed_at"] - run["created"]), 6)
        manifest["run"] = {
            "id": run["run_id"],
            "request_key": run["run_id"],
            "worker": self.worker_id,
            "attempt": int(run["attempts"]),
            "traceparent": traceparent,
            "queued": run.get("created"),
            "claimed": run.get("claimed_at"),
            "started": started_wall,
            "finished": started_wall + wall,
            "queue_latency": queue_latency,
        }
        write_manifest(manifest, manifest_path)
        result = {
            "exit_code": exit_code,
            "output": out.getvalue(),
            "stderr": err.getvalue()[-4000:],
            "wall_seconds": round(wall, 6),
            "digest": (manifest.get("report") or {}).get("digest"),
            "manifest": os.path.relpath(manifest_path, self.data_dir),
        }
        return result, manifest_path

    def run_once(self) -> int:
        """Claim and execute one batch; returns the number of jobs run."""
        batch = self.queue.claim_batch(self.worker_id,
                                       limit=self.batch_limit,
                                       lease_seconds=self.lease_seconds)
        if not batch:
            return 0
        self.batches += 1
        bump("serve.batches")
        bump("serve.batch_jobs", len(batch))
        batch_done = batch_failed = 0
        for run in batch:
            try:
                result, manifest_path = self.execute(run)
            except BaseException as exc:
                self.jobs_failed += 1
                batch_failed += 1
                bump("serve.jobs_failed")
                detail = "".join(traceback.format_exception_only(
                    type(exc), exc)).strip()
                self.queue.fail(run["run_id"], self.worker_id, detail)
                if not isinstance(exc, Exception):
                    raise  # KeyboardInterrupt and friends still stop us
                continue
            self.jobs_done += 1
            batch_done += 1
            bump("serve.jobs_done")
            self.queue.finish(run["run_id"], self.worker_id, result,
                              manifest_path)
            # In-process latency view (the fleet view is derived from
            # the runs table by whoever serves /v1/metrics).
            REGISTRY.observe("serve.run.exec_latency",
                             result["wall_seconds"])
            timeline = self.queue.run_latencies(run["run_id"])
            if timeline["queue_latency"] is not None:
                REGISTRY.observe("serve.run.queue_latency",
                                 timeline["queue_latency"])
            # Renew the remaining claims: the lease covers the whole
            # batch, and a long job must not let its batchmates lapse.
            for waiting in batch:
                if waiting["run_id"] != run["run_id"]:
                    self.queue.renew(waiting["run_id"], self.worker_id,
                                     self.lease_seconds)
        self.queue.heartbeat(self.worker_id, jobs_done=batch_done,
                             jobs_failed=batch_failed, batches=1)
        return len(batch)

    def run_forever(self, stop: Optional[threading.Event] = None,
                    max_jobs: Optional[int] = None) -> int:
        """Poll-and-execute until ``stop`` is set (or ``max_jobs`` run)."""
        total = 0
        self.queue.heartbeat(self.worker_id)
        servicelog.emit("worker.online", worker=self.worker_id)
        last_beat = time.time()
        while stop is None or not stop.is_set():
            ran = self.run_once()
            total += ran
            if max_jobs is not None and total >= max_jobs:
                break
            if not ran:
                # Idle heartbeats, throttled: liveness without writing
                # the database once per poll tick.
                now = time.time()
                if now - last_beat >= HEARTBEAT_SECONDS:
                    self.queue.heartbeat(self.worker_id)
                    last_beat = now
                time.sleep(self.poll_seconds)
            else:
                last_beat = time.time()
        servicelog.emit("worker.offline", worker=self.worker_id)
        return total


def submit_request(queue: RunQueue, store: CorpusStore, tool: str,
                   params: Optional[Dict[str, Any]] = None,
                   corpus_id: Optional[str] = None,
                   ) -> Tuple[Dict[str, Any], bool]:
    """Validate, key, and enqueue one request (the API's submit path).

    Returns ``(run row, created)`` — ``created`` False is the dedup
    hit.  Shared by the HTTP API and in-process callers (tests,
    benchmarks) so both enqueue byte-for-byte identical rows.
    """
    canonical = validate_request(tool, params)
    engine = resolved_engine(canonical)
    corpus = store.hashes(corpus_id)
    run_id = serve_keys.request_key(tool, canonical, corpus, engine)
    row, created = queue.submit(run_id, tool, canonical, engine,
                                corpus_id=corpus_id)
    bump("serve.submits")
    if not created:
        bump("serve.dedup_hits")
    return row, created
