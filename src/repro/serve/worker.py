"""Workers: claim compatible job batches, execute them, record manifests.

A worker is a loop over :meth:`repro.serve.db.RunQueue.claim_batch`:
claim up to ``batch_limit`` compatible runs, execute them — back to
back with one exec slot, in concurrent waves with several — and mark
each ``done``/``failed``.  Execution goes through the *real CLI entry
points* (``repro.cli.main_*``) with stdout captured per thread
(:func:`capture_output`) — the service's result bytes are, by
construction, the bytes a direct CLI invocation of the same request
prints.  ``bench_service.py`` and the CI service smoke assert that
identity rather than trusting it.

Perf shape:

- the worker process is **warm**: in-process memos, the loaded corpus,
  and the persistent process pool (``--backend process``) survive
  across jobs, so only the first job of a configuration pays cold
  costs — every compatible job after it rides warm memos and the
  shared function-level analysis store;
- **batching**: a claimed batch shares one engine signature and
  corpus, so the batch executes as one warm wave — for extraction-
  shaped jobs that is one procpool dispatch wave (the first job
  populates the memos; the rest replay them);
- each run's manifest (the obs run record) is written into the service
  data dir and linked back into the ``runs`` row, carrying a ``run``
  section (run id, request key, worker, attempt) so ``repro-runs
  show``/``diff`` can treat service runs like any other run.

The tool registry below is the submission surface: every tool the
service accepts, the params it allows, and how they become argv.  The
API validates against it at submit time so bad requests fail at the
door, not in a worker.
"""

from __future__ import annotations

import io
import json
import os
import socket
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs import servicelog, tracer as obs_tracer
from repro.obs.metrics import REGISTRY
from repro.perf.timers import bump
from repro.serve import keys as serve_keys
from repro.serve.db import CorpusStore, QueueWatcher, RunQueue

#: Default upper bound on jobs claimed per wave.
DEFAULT_BATCH_LIMIT = 8

#: Default claim lease; must exceed the slowest single job by a margin.
DEFAULT_LEASE_SECONDS = 120.0

#: Seconds between queue polls when idle.
DEFAULT_POLL_SECONDS = 0.2

#: Seconds between worker heartbeat upserts while idle.
HEARTBEAT_SECONDS = 5.0

#: Event-driven idle cap: with a queue watcher, the claim query only
#: reruns on a database change, with a safety-net re-poll this often.
IDLE_WAIT_SECONDS = 5.0

#: Slice width for the stop-aware idle wait — bounds both shutdown
#: latency and work-pickup latency once the watcher fires.
IDLE_SLICE_SECONDS = 0.05


def service_tracing_enabled() -> bool:
    """Whether service runs record per-run trace trees (default: yes).

    ``REPRO_SERVE_TRACE=0`` turns it off.  The trace goes to the run's
    record directory and its status lines to stderr, so the captured
    stdout — the service's result bytes — stays byte-identical to a
    direct CLI invocation either way.
    """
    return os.environ.get("REPRO_SERVE_TRACE", "1") != "0"


class RequestError(ValueError):
    """A submitted request names an unknown tool or invalid params."""


@dataclass(frozen=True)
class ToolSpec:
    """One service-invocable tool: its CLI main and allowed params."""

    name: str
    main: str  # attribute on repro.cli
    #: param name -> (python type, argv builder)
    params: Dict[str, Tuple[type, Callable[[Any], List[str]]]] = \
        field(default_factory=dict)

    def build_argv(self, params: Dict[str, Any]) -> List[str]:
        argv: List[str] = []
        for name in sorted(params):
            if name not in self.params:
                raise RequestError(
                    f"tool {self.name!r} does not accept param {name!r}")
            expected, build = self.params[name]
            value = params[name]
            if expected is int and isinstance(value, bool):
                raise RequestError(f"param {name!r} must be an integer")
            if not isinstance(value, expected):
                raise RequestError(
                    f"param {name!r} must be {expected.__name__}, "
                    f"got {type(value).__name__}")
            argv.extend(build(value))
        return argv


def _flag(option: str) -> Callable[[Any], List[str]]:
    return lambda value: [option] if value else []


def _opt(option: str) -> Callable[[Any], List[str]]:
    return lambda value: [option, str(value)]


_ENGINE_PARAMS = {
    "solver": (str, _opt("--solver")),
    "backend": (str, _opt("--backend")),
    "transport": (str, _opt("--transport")),
}

_CAMPAIGN_PARAMS = {
    "jobs": (int, _opt("--jobs")),
    "seed": (int, _opt("--seed")),
    "sample": (str, _opt("--sample")),
    "budget": (int, _opt("--budget")),
    "shards": (int, _opt("--shards")),
    "backend": (str, _opt("--backend")),
    "transport": (str, _opt("--transport")),
}

#: Every tool the service executes.  ``repro-runs`` and ``repro-demo``
#: style inspection stays client-side; these are the compute requests.
TOOLS: Dict[str, ToolSpec] = {
    "extract": ToolSpec("extract", "main_extract", {
        "jobs": (int, _opt("--jobs")),
        "list": (bool, _flag("--list")),
        **_ENGINE_PARAMS,
    }),
    "condocck": ToolSpec("condocck", "main_condocck", {}),
    "conhandleck": ToolSpec("conhandleck", "main_conhandleck", {
        "verbose": (bool, _flag("--verbose")),
        **_CAMPAIGN_PARAMS,
    }),
    "conbugck": ToolSpec("conbugck", "main_conbugck", {
        "count": (int, _opt("--count")),
        "fs_blocks": (int, _opt("--fs-blocks")),
        **_CAMPAIGN_PARAMS,
    }),
    "study": ToolSpec("study", "main_study", {}),
    "demo": ToolSpec("demo", "main_demo", {}),
}


def validate_request(tool: str, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Canonical params for one request; RequestError when invalid.

    Validation *is* argv building — a request is valid exactly when
    the worker could turn it into a CLI invocation.
    """
    spec = TOOLS.get(tool)
    if spec is None:
        raise RequestError(
            f"unknown tool {tool!r}; expected one of {', '.join(sorted(TOOLS))}")
    canonical = serve_keys.canonical_params(params)
    spec.build_argv(canonical)  # raises on unknown/ill-typed params
    return canonical


def resolved_engine(params: Dict[str, Any]) -> Dict[str, str]:
    """The engine modes a request would run under, params pinned.

    Part of the request key: two requests differing only in a pinned
    engine knob execute under different (if byte-identical) engines
    and keep distinct run records, mirroring the analysis-store key.
    """
    from repro.perf import modes

    overrides = {knob: params.get(knob)
                 for knob in ("solver", "backend", "transport")}
    try:
        return modes.resolve_modes(overrides)
    except ValueError as exc:
        raise RequestError(str(exc)) from None


class _OutputRouter(io.TextIOBase):
    """A stdout/stderr stand-in that routes writes per thread.

    ``contextlib.redirect_stdout`` swaps ``sys.stdout`` process-wide,
    which forced the old ``_EXEC_LOCK``: only one captured job could
    run at a time.  The router keeps ``sys.stdout`` swapped *once* and
    routes each ``write`` by the calling thread's ident — registered
    exec threads hit their own job buffer, everyone else falls through
    to the real stream — so N jobs capture concurrently without ever
    seeing each other's bytes.
    """

    def __init__(self, fallback) -> None:
        self.fallback = fallback
        #: thread ident -> capture buffer; mutated under _CAPTURE_LOCK,
        #: read lock-free on the write path (dict get is atomic).
        self.routes: Dict[int, io.StringIO] = {}

    def _target(self):
        return self.routes.get(threading.get_ident(), self.fallback)

    def write(self, text: str) -> int:
        return self._target().write(text)

    def flush(self) -> None:
        self._target().flush()

    def writable(self) -> bool:  # pragma: no cover - io plumbing
        return True

    def isatty(self) -> bool:
        return False


#: Guards installation/teardown of the routers and route registration.
_CAPTURE_LOCK = threading.Lock()

#: Live capture state: routers installed while any capture is active.
_CAPTURE = {"depth": 0, "stdout": None, "stderr": None}


@contextmanager
def capture_output() -> Iterator[Tuple[io.StringIO, io.StringIO]]:
    """Capture this thread's stdout/stderr into private buffers.

    Re-entrant across threads: the first active capture installs the
    routers, the last one restores the original streams (unless
    someone else has since replaced ``sys.stdout`` — then it is left
    alone).  Unlike ``redirect_stdout`` this never serializes callers,
    which is what lets a worker's exec slots run jobs concurrently.
    """
    out, err = io.StringIO(), io.StringIO()
    ident = threading.get_ident()
    with _CAPTURE_LOCK:
        if _CAPTURE["depth"] == 0:
            _CAPTURE["stdout"] = _OutputRouter(sys.stdout)
            _CAPTURE["stderr"] = _OutputRouter(sys.stderr)
            sys.stdout = _CAPTURE["stdout"]
            sys.stderr = _CAPTURE["stderr"]
        _CAPTURE["depth"] += 1
        _CAPTURE["stdout"].routes[ident] = out
        _CAPTURE["stderr"].routes[ident] = err
    try:
        yield out, err
    finally:
        with _CAPTURE_LOCK:
            _CAPTURE["stdout"].routes.pop(ident, None)
            _CAPTURE["stderr"].routes.pop(ident, None)
            _CAPTURE["depth"] -= 1
            if _CAPTURE["depth"] == 0:
                if sys.stdout is _CAPTURE["stdout"]:
                    sys.stdout = _CAPTURE["stdout"].fallback
                if sys.stderr is _CAPTURE["stderr"]:
                    sys.stderr = _CAPTURE["stderr"].fallback
                _CAPTURE["stdout"] = _CAPTURE["stderr"] = None


class Worker:
    """One queue consumer: claim, execute, record, repeat.

    ``exec_slots`` is the in-process concurrency width: a worker with
    N > 1 slots runs up to N compatible batchmates at once on a thread
    pool (their per-job output capture is thread-routed, see
    :func:`capture_output`).  The payoff comes when the jobs dispatch
    real work to the persistent *process* pool — the slots keep that
    pool saturated — so slots default to 1 and are worth raising only
    for ``--backend process`` traffic on a multi-core host.
    """

    def __init__(self, db_path: str, data_dir: str,
                 worker_id: Optional[str] = None,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 poll_seconds: float = DEFAULT_POLL_SECONDS,
                 exec_slots: Optional[int] = None,
                 watch: Optional[bool] = None) -> None:
        self.queue = RunQueue(db_path)
        self.store = CorpusStore(data_dir)
        self.data_dir = data_dir
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.batch_limit = max(1, batch_limit)
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        if exec_slots is None:
            exec_slots = int(os.environ.get("REPRO_SERVE_SLOTS", "1") or 1)
        self.exec_slots = max(1, exec_slots)
        if watch is None:
            watch = os.environ.get("REPRO_SERVE_WATCH", "1") != "0"
        self.watch = bool(watch)
        self.jobs_done = 0
        self.jobs_failed = 0
        self.batches = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._watcher: Optional[QueueWatcher] = None

    def close(self) -> None:
        """Release the exec pool, the watcher, and pooled connections."""
        if self._watcher is not None:
            self._watcher.stop()
            self._watcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.queue.close()

    # -- execution ------------------------------------------------------

    @contextmanager
    def _corpus_env(self, corpus_id: Optional[str]) -> Iterator[None]:
        """Point ``REPRO_CORPUS_DIR`` at one snapshot for the body.

        No-op when the variable already points there (the batch loop
        sets it once for the whole batch — batchmates share a corpus
        by :meth:`RunQueue.claim_batch` construction — so concurrent
        jobs never fight over the process-global environment).
        """
        if not corpus_id:
            yield
            return
        target = self.store.path(corpus_id)
        if os.environ.get("REPRO_CORPUS_DIR") == target:
            yield
            return
        saved = os.environ.get("REPRO_CORPUS_DIR")
        os.environ["REPRO_CORPUS_DIR"] = target
        try:
            yield
        finally:
            if saved is None:
                os.environ.pop("REPRO_CORPUS_DIR", None)
            else:
                os.environ["REPRO_CORPUS_DIR"] = saved

    def execute(self, run: Dict[str, Any],
                tracing: Optional[bool] = None) -> Tuple[Dict[str, Any], str]:
        """Run one claimed job; returns ``(result payload, manifest path)``.

        The job executes through its CLI main with stdout/stderr
        captured and ``--manifest`` pointed into the run's record
        directory; the manifest then gets the ``run`` linkage section.
        Exceptions propagate to the caller (which marks the run failed).

        ``tracing=None`` follows :func:`service_tracing_enabled`; the
        batch loop passes False for jobs sharing a concurrent wave
        (the trace session is one-per-process, so overlapping traced
        jobs would interleave their span trees).
        """
        import repro.cli as cli
        from repro.obs.manifest import load_manifest, write_manifest

        spec = TOOLS[run["tool"]]
        argv = spec.build_argv(run["params"])
        run_dir = os.path.join(self.data_dir, "runs", run["run_id"])
        os.makedirs(run_dir, exist_ok=True)
        manifest_path = os.path.join(run_dir, "manifest.json")
        argv = argv + ["--manifest", manifest_path]
        # Per-run trace: the CLI main's own --trace machinery records
        # the span tree into the run directory, and the traceparent —
        # derived from the request key, so every process agrees on it
        # with no coordination — rides a thread-scoped override
        # (:func:`repro.obs.tracer.traceparent_scope`) into the
        # session, and from there inside procpool task envelopes into
        # the pool workers.  The old process-global TRACEPARENT export
        # would race between concurrent exec slots.
        traceparent = obs_tracer.make_traceparent(
            run["run_id"], f"attempt-{int(run['attempts'])}")
        if tracing is None:
            tracing = service_tracing_enabled()
        trace_path = os.path.join(run_dir, "trace.jsonl")
        if tracing:
            argv = argv + ["--trace", trace_path]
        main = getattr(cli, spec.main)
        self.queue.start(run["run_id"], self.worker_id)
        started_wall = time.time()
        started = time.perf_counter()
        with self._corpus_env(run.get("corpus_id")), \
                obs_tracer.traceparent_scope(traceparent), \
                capture_output() as (out, err):
            try:
                exit_code = int(main(argv) or 0)
            except SystemExit as exc:  # argparse-style exits
                exit_code = int(exc.code or 0)
        wall = time.perf_counter() - started

        manifest = load_manifest(manifest_path)
        queue_latency = None
        if run.get("claimed_at") is not None and run.get("created") is not None:
            queue_latency = round(
                max(0.0, run["claimed_at"] - run["created"]), 6)
        manifest["run"] = {
            "id": run["run_id"],
            "request_key": run["run_id"],
            "worker": self.worker_id,
            "attempt": int(run["attempts"]),
            "traceparent": traceparent,
            "queued": run.get("created"),
            "claimed": run.get("claimed_at"),
            "started": started_wall,
            "finished": started_wall + wall,
            "queue_latency": queue_latency,
        }
        write_manifest(manifest, manifest_path)
        result = {
            "exit_code": exit_code,
            "output": out.getvalue(),
            "stderr": err.getvalue()[-4000:],
            "wall_seconds": round(wall, 6),
            "digest": (manifest.get("report") or {}).get("digest"),
            "manifest": os.path.relpath(manifest_path, self.data_dir),
        }
        return result, manifest_path

    # -- batch orchestration --------------------------------------------

    def _wave_key(self, run: Dict[str, Any]) -> Tuple[Any, ...]:
        """Which batchmates may safely share a concurrent wave.

        Process-backend jobs share the persistent process pool, which
        is keyed by its ``--jobs`` width: a concurrent job with a
        *different* width would retire the pool out from under its
        wavemates, so only equal widths ride one wave together.
        """
        if run["engine"].get("backend") == "process":
            return ("process", run["params"].get("jobs"))
        return ("inproc",)

    def _waves(self, batch: List[Dict[str, Any]]) -> List[List[Dict[str, Any]]]:
        """Partition a claimed batch into concurrency-safe waves."""
        if self.exec_slots <= 1:
            return [[run] for run in batch]
        waves: List[List[Dict[str, Any]]] = []
        last_key: Optional[Tuple[Any, ...]] = None
        for run in batch:
            key = self._wave_key(run)
            if waves and key == last_key:
                waves[-1].append(run)
            else:
                waves.append([run])
                last_key = key
        return waves

    def _exec_pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.exec_slots,
                thread_name_prefix=f"exec-{self.worker_id}")
        return self._executor

    def _job_outcome(self, run: Dict[str, Any], tracing: Optional[bool]
                     ) -> Tuple[Optional[Dict[str, Any]], Optional[str],
                                Optional[BaseException]]:
        """Execute one job, trapping everything (futures-safe)."""
        try:
            result, manifest_path = self.execute(run, tracing=tracing)
            return result, manifest_path, None
        except BaseException as exc:
            return None, None, exc

    def _complete(self, run: Dict[str, Any],
                  outcome: Tuple[Optional[Dict[str, Any]], Optional[str],
                                 Optional[BaseException]],
                  outstanding: List[str]) -> bool:
        """Record one finished job; returns True when it failed.

        Also renews every still-outstanding claim in the batch: the
        lease covers the whole batch, and a long job must not let its
        batchmates lapse.
        """
        run_id = run["run_id"]
        if run_id in outstanding:
            outstanding.remove(run_id)
        result, manifest_path, exc = outcome
        if exc is not None:
            self.jobs_failed += 1
            bump("serve.jobs_failed")
            detail = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
            self.queue.fail(run_id, self.worker_id, detail)
        else:
            self.jobs_done += 1
            bump("serve.jobs_done")
            self.queue.finish(run_id, self.worker_id, result, manifest_path)
            # In-process latency view (the fleet view is derived from
            # the runs table by whoever serves /v1/metrics).
            REGISTRY.observe("serve.run.exec_latency",
                             result["wall_seconds"])
            timeline = self.queue.run_latencies(run_id)
            if timeline["queue_latency"] is not None:
                REGISTRY.observe("serve.run.queue_latency",
                                 timeline["queue_latency"])
        for waiting_id in outstanding:
            self.queue.renew(waiting_id, self.worker_id, self.lease_seconds)
        return exc is not None

    def run_once(self) -> int:
        """Claim and execute one batch; returns the number of jobs run.

        Waves of compatible batchmates (see :meth:`_wave_key`) run
        concurrently on the exec pool when ``exec_slots > 1``; a
        single-job wave runs inline with tracing enabled, exactly as
        a one-slot worker would.
        """
        batch = self.queue.claim_batch(self.worker_id,
                                       limit=self.batch_limit,
                                       lease_seconds=self.lease_seconds)
        if not batch:
            return 0
        self.batches += 1
        bump("serve.batches")
        bump("serve.batch_jobs", len(batch))
        batch_done = batch_failed = 0
        outstanding = [run["run_id"] for run in batch]
        interrupt: Optional[BaseException] = None

        def record(run: Dict[str, Any], outcome) -> None:
            nonlocal batch_done, batch_failed, interrupt
            if self._complete(run, outcome, outstanding):
                batch_failed += 1
            else:
                batch_done += 1
            exc = outcome[2]
            if exc is not None and not isinstance(exc, Exception):
                interrupt = exc

        try:
            # The corpus env is set once around the whole batch (all
            # batchmates share one corpus by claim_batch construction):
            # a per-job set/restore would yank the process-global
            # variable out from under a concurrent wavemate mid-run.
            with self._corpus_env(batch[0].get("corpus_id")):
                for wave in self._waves(batch):
                    if len(wave) == 1:
                        run = wave[0]
                        record(run, self._job_outcome(run, None))
                    else:
                        bump("serve.concurrent_waves")
                        # Concurrent wave: per-run tracing off — the
                        # trace session is one-per-process and
                        # overlapping jobs would interleave their span
                        # trees.  Result bytes are unaffected (traces
                        # never touch stdout).  Each job is recorded
                        # as it completes, so an early finisher's
                        # waiters wake while its wavemates still run.
                        futures = {
                            self._exec_pool().submit(
                                self._job_outcome, run, False): run
                            for run in wave}
                        for future in as_completed(futures):
                            record(futures[future], future.result())
                    if interrupt is not None:
                        break
        finally:
            self.queue.heartbeat(self.worker_id, jobs_done=batch_done,
                                 jobs_failed=batch_failed, batches=1)
        if interrupt is not None:
            raise interrupt  # KeyboardInterrupt and friends still stop us
        return len(batch)

    # -- the long-running loop ------------------------------------------

    def _get_watcher(self) -> Optional[QueueWatcher]:
        if not self.watch:
            return None
        if self._watcher is None:
            self._watcher = QueueWatcher(self.queue)
        if not self._watcher.running:
            self._watcher.start()
        return self._watcher

    def _idle_wait(self, stop: Optional[threading.Event]) -> None:
        """Block until the queue may have work (or the poll cap).

        With a watcher the claim query only reruns when the database
        actually changed (or every :data:`IDLE_WAIT_SECONDS` as a
        safety net); without one this is the plain poll sleep.  Either
        way ``stop`` interrupts the wait immediately — shutdown never
        waits out a poll interval.
        """
        watcher = self._get_watcher()
        if watcher is None:
            if stop is not None:
                stop.wait(self.poll_seconds)
            else:
                time.sleep(self.poll_seconds)
            return
        token = watcher.token()
        deadline = time.monotonic() + max(self.poll_seconds,
                                          IDLE_WAIT_SECONDS)
        if stop is None:
            watcher.wait(token, deadline - time.monotonic())
            return
        while not stop.is_set() and not watcher.changed(token):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            stop.wait(min(IDLE_SLICE_SECONDS, remaining))

    def run_forever(self, stop: Optional[threading.Event] = None,
                    max_jobs: Optional[int] = None) -> int:
        """Poll-and-execute until ``stop`` is set (or ``max_jobs`` run)."""
        total = 0
        self.queue.heartbeat(self.worker_id)
        servicelog.emit("worker.online", worker=self.worker_id)
        last_beat = time.time()
        while stop is None or not stop.is_set():
            ran = self.run_once()
            total += ran
            if max_jobs is not None and total >= max_jobs:
                break
            if not ran:
                # Idle heartbeats, throttled: liveness without writing
                # the database once per poll tick.
                now = time.time()
                if now - last_beat >= HEARTBEAT_SECONDS:
                    self.queue.heartbeat(self.worker_id)
                    last_beat = now
                self._idle_wait(stop)
            else:
                last_beat = time.time()
        servicelog.emit("worker.offline", worker=self.worker_id)
        return total


def submit_request(queue: RunQueue, store: CorpusStore, tool: str,
                   params: Optional[Dict[str, Any]] = None,
                   corpus_id: Optional[str] = None,
                   ) -> Tuple[Dict[str, Any], bool]:
    """Validate, key, and enqueue one request (the API's submit path).

    Returns ``(run row, created)`` — ``created`` False is the dedup
    hit.  Shared by the HTTP API and in-process callers (tests,
    benchmarks) so both enqueue byte-for-byte identical rows.
    """
    canonical = validate_request(tool, params)
    engine = resolved_engine(canonical)
    corpus = store.hashes(corpus_id)
    run_id = serve_keys.request_key(tool, canonical, corpus, engine)
    row, created = queue.submit(run_id, tool, canonical, engine,
                                corpus_id=corpus_id)
    bump("serve.submits")
    if not created:
        bump("serve.dedup_hits")
    return row, created
