"""The service HTTP API (stdlib ``ThreadingHTTPServer``, no new deps).

Routes (all JSON unless noted):

- ``GET  /healthz``                 liveness probe
- ``GET  /v1/stats``                queue depth by state + dedup tallies
- ``GET  /v1/metrics``              Prometheus text exposition: queue
  gauges, dedup ratio, lease reclaims, worker heartbeats, and the
  queue/exec/request latency histograms derived from the runs table
- ``POST /v1/runs``                 submit ``{"tool", "params", "corpus"}``
  → 201 with the new run, or 200 with the existing run when the
  content key deduplicated the request (``deduplicated: true``)
- ``GET  /v1/runs``                 recent runs (``?status=``, ``?limit=``)
- ``GET  /v1/runs/<id>``            one run; ``?wait=<seconds>`` long-polls
  until the run reaches ``done``/``failed`` (or the wait lapses)
- ``GET  /v1/runs/<id>/result``     the run's output bytes
  (``text/plain``; byte-identical to the CLI's stdout) — 409 until done
- ``GET  /v1/runs/<id>/manifest``   the run's obs manifest (the run record)
- ``POST /v1/corpus``               upload ``{"files": {name: source}}``
  → content-addressed corpus snapshot id for later submissions

The API never executes jobs; it validates requests at the door
(against the :mod:`repro.serve.worker` tool registry), keys them
(:mod:`repro.serve.keys`), and enqueues.  Workers — separate
processes, possibly separate machines sharing the database file's
filesystem — do the computing.  That split is what lets the service
absorb submission bursts: enqueue is a millisecond-scale SQLite
insert regardless of how long the work itself takes.

**The read hot path.**  A run finishes once and is fetched many times
(dedup aims traffic at exactly that shape), so finished result and
manifest bytes live in a bounded in-memory LRU (:class:`HotCache`):
a hot ``GET .../result`` touches neither the database nor the disk.
Both routes carry a strong ``ETag`` (the content sha) and honor
``If-None-Match`` with ``304 Not Modified`` — safe because ``done``
is a terminal state, a run's bytes never change — so a re-validating
client pays headers, not body bytes.  Long-polls ride the
:class:`~repro.serve.db.QueueWatcher` condition variable instead of
per-waiter sleep loops: N blocked clients cost one ``data_version``
poll per tick, and every completion wakes them all at once.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs import prom, servicelog
from repro.obs.metrics import REGISTRY
from repro.serve.db import (DONE, FAILED, STATES, CorpusStore, QueueError,
                            QueueWatcher, RunQueue)
from repro.serve.worker import RequestError, submit_request

#: Cap on long-poll waits so a stuck client cannot pin an API thread.
MAX_WAIT_SECONDS = 60.0

#: Seconds between run-row re-reads while long-polling *without* a
#: queue watcher (``watch=False``); with one, waits are event-driven.
_WAIT_POLL_SECONDS = 0.05

#: Upload size cap (corpus sources are tens of KB; 8 MB is generous).
MAX_BODY_BYTES = 8 << 20

#: Default hot-cache budget (``REPRO_SERVE_CACHE_BYTES`` overrides).
DEFAULT_CACHE_BYTES = 32 << 20


class HotCache:
    """Bounded LRU over finished-run response bytes.

    Keys are ``(run_id, kind)``; an entry carries the body, its strong
    ``ETag`` (the content sha — ``done`` is terminal, so the bytes are
    immutable), the content type, and any extra response headers.
    Eviction is LRU by total body bytes against ``max_bytes``; an
    evicted entry simply falls back to the database/disk read path.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], Dict[str, Any]]" = \
            OrderedDict()
        self._bytes = 0

    def _publish_gauges(self) -> None:
        REGISTRY.set_gauge("serve.cache.bytes", self._bytes)
        REGISTRY.set_gauge("serve.cache.entries", len(self._entries))

    def get(self, key: Tuple[str, str]) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: Tuple[str, str], body: bytes, etag: str,
            content_type: str,
            headers: Sequence[Tuple[str, str]] = ()) -> None:
        if len(body) > self.max_bytes:
            return  # larger than the whole budget: never cacheable
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old["body"])
            self._entries[key] = {"body": body, "etag": etag,
                                  "content_type": content_type,
                                  "headers": tuple(headers)}
            self._bytes += len(body)
            while self._bytes > self.max_bytes and self._entries:
                _evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted["body"])
                REGISTRY.bump("serve.cache.evictions")
            self._publish_gauges()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def render_metrics(queue: RunQueue) -> str:
    """The ``/v1/metrics`` exposition text for one queue.

    Three sources fold into one scrape:

    - **queue gauges** from :meth:`RunQueue.stats` — depth by status
      (labelled), dedup ratio, lease reclaims, worker liveness — the
      database is the only view shared by every process in the fleet;
    - **run-latency histograms** from :meth:`RunQueue.latencies`,
      derived from the queued/claimed/started/finished timestamps of
      finished rows (the API never executed those runs itself, so
      in-process counters cannot know them);
    - **this process's registry** — HTTP request counters and the
      request-latency histogram the handler below records.
    """
    stats = queue.stats()
    workers = queue.workers()
    exp = prom.Exposition()
    for state, depth in sorted(stats["by_status"].items()):
        exp.add("repro_serve_queue_depth", "gauge", depth,
                labels={"status": state},
                help_text="Runs currently in each queue state.")
    exp.add("repro_serve_submits", "gauge", stats["submits"],
            help_text="Total submissions (including deduplicated).")
    exp.add("repro_serve_dedup_ratio", "gauge", stats["dedup_ratio"],
            help_text="Fraction of submissions coalesced onto an "
                      "existing run.")
    exp.add("repro_serve_lease_reclaims", "gauge", stats["reclaims"],
            help_text="Claims of lapsed leases (worker died or "
                      "stalled mid-job).")
    exp.add("repro_serve_workers_alive", "gauge",
            sum(1 for worker in workers if worker["alive"]),
            help_text="Workers with a recent heartbeat.")
    now = time.time()
    for worker in workers:
        exp.add("repro_serve_worker_heartbeat_age_seconds", "gauge",
                max(0.0, now - worker["last_seen"]),
                labels={"worker": worker["worker_id"]},
                help_text="Seconds since each worker's last heartbeat.")
        exp.add("repro_serve_worker_jobs_done", "gauge",
                worker["jobs_done"],
                labels={"worker": worker["worker_id"]},
                help_text="Jobs completed per worker.")
    for name, hist in sorted(queue.latencies().items()):
        exp.add_histogram(f"repro_{name}_seconds", hist,
                          help_text=f"Latency histogram {name!r} derived "
                                    "from the runs table.")
    for name, value in sorted(REGISTRY.counters().items()):
        exp.add(f"repro_{name}_total", "counter", value,
                help_text=f"Monotonic counter {name!r} (API process).")
    for name, value in sorted(REGISTRY.gauges().items()):
        exp.add(f"repro_{name}", "gauge", value,
                help_text=f"Gauge {name!r} (API process).")
    for name, hist in sorted(REGISTRY.histograms().items()):
        if name.startswith("serve.run."):
            continue  # fleet view above is authoritative for run latencies
        exp.add_histogram(f"repro_{name}_seconds", hist,
                          help_text=f"Latency histogram {name!r} "
                                    "(API process).")
    return exp.render()


def _public_run(run: Dict[str, Any]) -> Dict[str, Any]:
    """The externally visible shape of one run row."""
    out = {key: run.get(key) for key in (
        "run_id", "tool", "params", "engine", "corpus_id", "status",
        "submits", "attempts", "reclaims", "created", "claimed_at",
        "started", "finished", "error")}
    result = run.get("result")
    if result is not None:
        out["result"] = {key: value for key, value in result.items()
                         if key != "output"}
    return out


class ServiceHandler(BaseHTTPRequestHandler):
    """Request dispatch over the queue/store the server carries."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    @property
    def queue(self) -> RunQueue:
        return self.server.queue  # type: ignore[attr-defined]

    @property
    def store(self) -> CorpusStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        """Per-response access record: structured, not a stderr line.

        Every ``send_response`` lands here, so this is the single choke
        point for HTTP request telemetry — the service log gets a
        schema-validated event with method/path/status/duration, the
        registry gets a counter bump and a latency observation, and
        stderr gets the classic access line only under ``--verbose``.
        """
        try:
            status: Any = int(code)
        except (TypeError, ValueError):
            status = str(code)
        duration = time.perf_counter() - getattr(
            self, "_began", time.perf_counter())
        path = urlparse(self.path).path if self.path else "?"
        REGISTRY.bump("serve.http.requests")
        REGISTRY.observe("serve.http.latency", duration)
        servicelog.emit("http.request", method=str(self.command),
                        path=path, status=status,
                        duration=round(duration, 6))
        if getattr(self.server, "verbose", False):
            # The classic access line, without re-entering our
            # log_message override (which would double-emit).
            BaseHTTPRequestHandler.log_message(
                self, '"%s" %s %s', self.requestline, str(code), str(size))

    def log_message(self, format: str, *args: Any) -> None:
        """Handler diagnostics (errors etc.) go to the service log too."""
        servicelog.emit("http.log", detail=format % args)
        if getattr(self.server, "verbose", False):  # quiet by default
            super().log_message(format, *args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, payload: Any) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(code, body, "application/json; charset=utf-8")

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, f"body too large ({length} bytes)")
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw or b"{}")
        except ValueError:
            self._error(400, "body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._error(400, "body must be a JSON object")
            return None
        return payload

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {key: values[-1]
                 for key, values in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    # -- GET ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        self._began = time.perf_counter()
        path, query = self._route()
        if path == "/healthz":
            self._json(200, {"ok": True, "time": time.time()})
            return
        if path == "/v1/stats":
            self._json(200, self.queue.stats())
            return
        if path == "/v1/metrics":
            body = render_metrics(self.queue).encode("utf-8")
            self._send(200, body, prom.CONTENT_TYPE)
            return
        if path == "/v1/runs":
            status = query.get("status")
            if status is not None and status not in STATES:
                self._error(400, f"unknown status {status!r}")
                return
            limit = min(int(query.get("limit", 100)), 1000)
            runs = self.queue.list_runs(status=status, limit=limit)
            self._json(200, {"runs": [_public_run(run) for run in runs]})
            return
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "runs":
            run_id = parts[3]
            if len(parts) == 5 and parts[4] in ("result", "manifest"):
                # Hot path first: a cached entry answers without
                # touching the database (or waiting) at all — the run
                # is necessarily done, or it would not be cached.
                if self._send_cached(run_id, parts[4]):
                    return
            run = self._wait_for(run_id, query)
            if run is None:
                self._error(404, f"unknown run {run_id!r}")
                return
            if len(parts) == 4:
                self._json(200, _public_run(run))
                return
            if len(parts) == 5 and parts[4] == "result":
                self._send_result(run)
                return
            if len(parts) == 5 and parts[4] == "manifest":
                self._send_manifest(run)
                return
        self._error(404, f"no route {path!r}")

    def _wait_for(self, run_id: str,
                  query: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The run row, long-polled to a terminal state when asked.

        With a queue watcher the wait is event-driven: take a change
        token, re-read the row (*after* the token, so a completion
        racing the read is never missed — at worst the wakeup is
        spurious), and block on the shared condition variable until
        the database changes or the deadline lapses.
        """
        run = self.queue.get(run_id)
        try:
            wait = min(float(query.get("wait", 0)), MAX_WAIT_SECONDS)
        except ValueError:
            wait = 0.0
        if (wait <= 0 or run is None
                or run["status"] in (DONE, FAILED)):
            return run
        deadline = time.monotonic() + wait
        watcher = self.server.get_watcher()  # type: ignore[attr-defined]
        while run is not None and run["status"] not in (DONE, FAILED):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if watcher is None:
                time.sleep(min(_WAIT_POLL_SECONDS, remaining))
            else:
                token = watcher.token()
                run = self.queue.get(run_id)
                if run is None or run["status"] in (DONE, FAILED):
                    break
                watcher.wait(token, remaining)
            run = self.queue.get(run_id)
        return run

    # -- results & manifests (the read hot path) ------------------------

    @property
    def cache(self) -> Optional[HotCache]:
        return getattr(self.server, "cache", None)

    def _conditional_send(self, body: bytes, etag: str, content_type: str,
                          headers: Sequence[Tuple[str, str]] = ()) -> None:
        """200 with an ``ETag``, or bodyless 304 on a validator match."""
        if self.headers.get("If-None-Match") == etag:
            REGISTRY.bump("serve.cache.304s")
            self.send_response(304)
            self.send_header("ETag", etag)
            for name, value in headers:
                self.send_header(name, value)
            self.end_headers()
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("ETag", etag)
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_cached(self, run_id: str, kind: str) -> bool:
        """Serve one result/manifest from the hot cache; False on miss."""
        cache = self.cache
        if cache is None:
            return False
        entry = cache.get((run_id, kind))
        if entry is None:
            return False
        REGISTRY.bump("serve.cache.hits")
        self._conditional_send(entry["body"], entry["etag"],
                               entry["content_type"], entry["headers"])
        return True

    @staticmethod
    def _etag(body: bytes) -> str:
        return f'"{hashlib.sha256(body).hexdigest()}"'

    def _send_result(self, run: Dict[str, Any]) -> None:
        if run["status"] != DONE or not isinstance(run.get("result"), dict):
            self._error(409, f"run is {run['status']}, result not available")
            return
        body = run["result"].get("output", "").encode("utf-8")
        headers = (("X-Repro-Exit-Code",
                    str(run["result"].get("exit_code", 0))),)
        cache = self.cache
        if cache is None:
            # Baseline shape (cache disabled): plain 200, no validator.
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
            return
        REGISTRY.bump("serve.cache.misses")
        etag = self._etag(body)
        cache.put((run["run_id"], "result"), body, etag,
                  "text/plain; charset=utf-8", headers)
        self._conditional_send(body, etag, "text/plain; charset=utf-8",
                               headers)

    def _send_manifest(self, run: Dict[str, Any]) -> None:
        path = run.get("manifest_path")
        if run["status"] != DONE or not path or not os.path.exists(path):
            self._error(409, f"run is {run['status']}, manifest not available")
            return
        with open(path, "rb") as handle:
            body = handle.read()
        cache = self.cache
        if cache is None:
            self._send(200, body, "application/json; charset=utf-8")
            return
        REGISTRY.bump("serve.cache.misses")
        etag = self._etag(body)
        cache.put((run["run_id"], "manifest"), body, etag,
                  "application/json; charset=utf-8")
        self._conditional_send(body, etag, "application/json; charset=utf-8")

    # -- POST -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        self._began = time.perf_counter()
        path, _query = self._route()
        body = self._read_body()
        if body is None:
            return
        if path == "/v1/runs":
            self._submit(body)
            return
        if path == "/v1/corpus":
            self._upload_corpus(body)
            return
        self._error(404, f"no route {path!r}")

    def _submit(self, body: Dict[str, Any]) -> None:
        tool = body.get("tool")
        params = body.get("params") or {}
        corpus_id = body.get("corpus")
        if not isinstance(tool, str):
            self._error(400, "missing tool name")
            return
        if not isinstance(params, dict):
            self._error(400, "params must be an object")
            return
        try:
            run, created = submit_request(self.queue, self.store, tool,
                                          params, corpus_id=corpus_id)
        except (RequestError, QueueError) as exc:
            self._error(400, str(exc))
            return
        self._json(201 if created else 200,
                   {"run": _public_run(run), "deduplicated": not created})

    def _upload_corpus(self, body: Dict[str, Any]) -> None:
        files = body.get("files")
        if (not isinstance(files, dict) or not files
                or not all(isinstance(k, str) and isinstance(v, str)
                           for k, v in files.items())):
            self._error(400, "files must map filename -> source text")
            return
        try:
            corpus_id = self.store.add(files)
        except QueueError as exc:
            self._error(400, str(exc))
            return
        self._json(201, {"corpus": corpus_id,
                         "files": sorted(files)})


class Service(ThreadingHTTPServer):
    """The HTTP front end bound to one queue + corpus store.

    Hot-path knobs (all default on; each has an env override so the
    deployed service is tunable without code):

    - ``cache_bytes`` — :class:`HotCache` budget for finished-run
      result/manifest bytes (``REPRO_SERVE_CACHE_BYTES``; 0 disables
      the cache *and* ``ETag`` emission — the benchmark baseline);
    - ``pooling`` — per-thread DB connection reuse in the queue
      (``REPRO_SERVE_POOL=0`` disables);
    - ``watch`` — the single :class:`QueueWatcher` behind event-driven
      long-polls (``REPRO_SERVE_WATCH=0`` falls back to sleep-polls).
    """

    daemon_threads = True
    #: TCP_NODELAY: a 200 on a kept-alive connection is two small
    #: writes (headers, then body); with Nagle on, the second write
    #: can stall ~40ms behind the peer's delayed ACK.
    disable_nagle_algorithm = True

    def __init__(self, address: Tuple[str, int], db_path: str,
                 data_dir: str, verbose: bool = False,
                 cache_bytes: Optional[int] = None,
                 pooling: Optional[bool] = None,
                 watch: Optional[bool] = None) -> None:
        super().__init__(address, ServiceHandler)
        self.queue = RunQueue(db_path, pooling=pooling)
        self.store = CorpusStore(data_dir)
        self.verbose = verbose
        if cache_bytes is None:
            cache_bytes = int(os.environ.get("REPRO_SERVE_CACHE_BYTES",
                                             DEFAULT_CACHE_BYTES))
        self.cache = HotCache(cache_bytes) if cache_bytes > 0 else None
        if watch is None:
            watch = os.environ.get("REPRO_SERVE_WATCH", "1") != "0"
        self._watch = bool(watch)
        self._watcher: Optional[QueueWatcher] = None
        self._watcher_lock = threading.Lock()

    def get_watcher(self) -> Optional[QueueWatcher]:
        """The shared queue watcher, started on first use (or None)."""
        if not self._watch:
            return None
        with self._watcher_lock:
            if self._watcher is None:
                self._watcher = QueueWatcher(self.queue)
            if not self._watcher.running:
                self._watcher.start()
            return self._watcher

    def server_close(self) -> None:
        super().server_close()
        with self._watcher_lock:
            if self._watcher is not None:
                self._watcher.stop()
                self._watcher = None
        self.queue.close()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_in_thread(db_path: str, data_dir: str,
                    host: str = "127.0.0.1", port: int = 0,
                    **kwargs: Any) -> Tuple[Service, threading.Thread]:
    """Boot a service on a background thread (tests and benchmarks).

    Extra keyword arguments (``cache_bytes``, ``pooling``, ``watch``)
    pass through to :class:`Service` so benchmarks can boot the
    baseline configuration next to the hot one.
    """
    service = Service((host, port), db_path, data_dir, **kwargs)
    thread = threading.Thread(target=service.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    return service, thread
