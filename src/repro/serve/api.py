"""The service HTTP API (stdlib ``ThreadingHTTPServer``, no new deps).

Routes (all JSON unless noted):

- ``GET  /healthz``                 liveness probe
- ``GET  /v1/stats``                queue depth by state + dedup tallies
- ``GET  /v1/metrics``              Prometheus text exposition: queue
  gauges, dedup ratio, lease reclaims, worker heartbeats, and the
  queue/exec/request latency histograms derived from the runs table
- ``POST /v1/runs``                 submit ``{"tool", "params", "corpus"}``
  → 201 with the new run, or 200 with the existing run when the
  content key deduplicated the request (``deduplicated: true``)
- ``GET  /v1/runs``                 recent runs (``?status=``, ``?limit=``)
- ``GET  /v1/runs/<id>``            one run; ``?wait=<seconds>`` long-polls
  until the run reaches ``done``/``failed`` (or the wait lapses)
- ``GET  /v1/runs/<id>/result``     the run's output bytes
  (``text/plain``; byte-identical to the CLI's stdout) — 409 until done
- ``GET  /v1/runs/<id>/manifest``   the run's obs manifest (the run record)
- ``POST /v1/corpus``               upload ``{"files": {name: source}}``
  → content-addressed corpus snapshot id for later submissions

The API never executes jobs; it validates requests at the door
(against the :mod:`repro.serve.worker` tool registry), keys them
(:mod:`repro.serve.keys`), and enqueues.  Workers — separate
processes, possibly separate machines sharing the database file's
filesystem — do the computing.  That split is what lets the service
absorb submission bursts: enqueue is a millisecond-scale SQLite
insert regardless of how long the work itself takes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs import prom, servicelog
from repro.obs.metrics import REGISTRY
from repro.serve.db import DONE, FAILED, STATES, CorpusStore, QueueError, RunQueue
from repro.serve.worker import RequestError, submit_request

#: Cap on long-poll waits so a stuck client cannot pin an API thread.
MAX_WAIT_SECONDS = 60.0

#: Seconds between run-row re-reads while long-polling.
_WAIT_POLL_SECONDS = 0.05

#: Upload size cap (corpus sources are tens of KB; 8 MB is generous).
MAX_BODY_BYTES = 8 << 20


def render_metrics(queue: RunQueue) -> str:
    """The ``/v1/metrics`` exposition text for one queue.

    Three sources fold into one scrape:

    - **queue gauges** from :meth:`RunQueue.stats` — depth by status
      (labelled), dedup ratio, lease reclaims, worker liveness — the
      database is the only view shared by every process in the fleet;
    - **run-latency histograms** from :meth:`RunQueue.latencies`,
      derived from the queued/claimed/started/finished timestamps of
      finished rows (the API never executed those runs itself, so
      in-process counters cannot know them);
    - **this process's registry** — HTTP request counters and the
      request-latency histogram the handler below records.
    """
    stats = queue.stats()
    workers = queue.workers()
    exp = prom.Exposition()
    for state, depth in sorted(stats["by_status"].items()):
        exp.add("repro_serve_queue_depth", "gauge", depth,
                labels={"status": state},
                help_text="Runs currently in each queue state.")
    exp.add("repro_serve_submits", "gauge", stats["submits"],
            help_text="Total submissions (including deduplicated).")
    exp.add("repro_serve_dedup_ratio", "gauge", stats["dedup_ratio"],
            help_text="Fraction of submissions coalesced onto an "
                      "existing run.")
    exp.add("repro_serve_lease_reclaims", "gauge", stats["reclaims"],
            help_text="Claims of lapsed leases (worker died or "
                      "stalled mid-job).")
    exp.add("repro_serve_workers_alive", "gauge",
            sum(1 for worker in workers if worker["alive"]),
            help_text="Workers with a recent heartbeat.")
    now = time.time()
    for worker in workers:
        exp.add("repro_serve_worker_heartbeat_age_seconds", "gauge",
                max(0.0, now - worker["last_seen"]),
                labels={"worker": worker["worker_id"]},
                help_text="Seconds since each worker's last heartbeat.")
        exp.add("repro_serve_worker_jobs_done", "gauge",
                worker["jobs_done"],
                labels={"worker": worker["worker_id"]},
                help_text="Jobs completed per worker.")
    for name, hist in sorted(queue.latencies().items()):
        exp.add_histogram(f"repro_{name}_seconds", hist,
                          help_text=f"Latency histogram {name!r} derived "
                                    "from the runs table.")
    for name, value in sorted(REGISTRY.counters().items()):
        exp.add(f"repro_{name}_total", "counter", value,
                help_text=f"Monotonic counter {name!r} (API process).")
    for name, hist in sorted(REGISTRY.histograms().items()):
        if name.startswith("serve.run."):
            continue  # fleet view above is authoritative for run latencies
        exp.add_histogram(f"repro_{name}_seconds", hist,
                          help_text=f"Latency histogram {name!r} "
                                    "(API process).")
    return exp.render()


def _public_run(run: Dict[str, Any]) -> Dict[str, Any]:
    """The externally visible shape of one run row."""
    out = {key: run.get(key) for key in (
        "run_id", "tool", "params", "engine", "corpus_id", "status",
        "submits", "attempts", "reclaims", "created", "claimed_at",
        "started", "finished", "error")}
    result = run.get("result")
    if result is not None:
        out["result"] = {key: value for key, value in result.items()
                         if key != "output"}
    return out


class ServiceHandler(BaseHTTPRequestHandler):
    """Request dispatch over the queue/store the server carries."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    @property
    def queue(self) -> RunQueue:
        return self.server.queue  # type: ignore[attr-defined]

    @property
    def store(self) -> CorpusStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        """Per-response access record: structured, not a stderr line.

        Every ``send_response`` lands here, so this is the single choke
        point for HTTP request telemetry — the service log gets a
        schema-validated event with method/path/status/duration, the
        registry gets a counter bump and a latency observation, and
        stderr gets the classic access line only under ``--verbose``.
        """
        try:
            status: Any = int(code)
        except (TypeError, ValueError):
            status = str(code)
        duration = time.perf_counter() - getattr(
            self, "_began", time.perf_counter())
        path = urlparse(self.path).path if self.path else "?"
        REGISTRY.bump("serve.http.requests")
        REGISTRY.observe("serve.http.latency", duration)
        servicelog.emit("http.request", method=str(self.command),
                        path=path, status=status,
                        duration=round(duration, 6))
        if getattr(self.server, "verbose", False):
            # The classic access line, without re-entering our
            # log_message override (which would double-emit).
            BaseHTTPRequestHandler.log_message(
                self, '"%s" %s %s', self.requestline, str(code), str(size))

    def log_message(self, format: str, *args: Any) -> None:
        """Handler diagnostics (errors etc.) go to the service log too."""
        servicelog.emit("http.log", detail=format % args)
        if getattr(self.server, "verbose", False):  # quiet by default
            super().log_message(format, *args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, payload: Any) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(code, body, "application/json; charset=utf-8")

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, f"body too large ({length} bytes)")
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw or b"{}")
        except ValueError:
            self._error(400, "body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._error(400, "body must be a JSON object")
            return None
        return payload

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {key: values[-1]
                 for key, values in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    # -- GET ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        self._began = time.perf_counter()
        path, query = self._route()
        if path == "/healthz":
            self._json(200, {"ok": True, "time": time.time()})
            return
        if path == "/v1/stats":
            self._json(200, self.queue.stats())
            return
        if path == "/v1/metrics":
            body = render_metrics(self.queue).encode("utf-8")
            self._send(200, body, prom.CONTENT_TYPE)
            return
        if path == "/v1/runs":
            status = query.get("status")
            if status is not None and status not in STATES:
                self._error(400, f"unknown status {status!r}")
                return
            limit = min(int(query.get("limit", 100)), 1000)
            runs = self.queue.list_runs(status=status, limit=limit)
            self._json(200, {"runs": [_public_run(run) for run in runs]})
            return
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "runs":
            run_id = parts[3]
            run = self._wait_for(run_id, query)
            if run is None:
                self._error(404, f"unknown run {run_id!r}")
                return
            if len(parts) == 4:
                self._json(200, _public_run(run))
                return
            if len(parts) == 5 and parts[4] == "result":
                self._send_result(run)
                return
            if len(parts) == 5 and parts[4] == "manifest":
                self._send_manifest(run)
                return
        self._error(404, f"no route {path!r}")

    def _wait_for(self, run_id: str,
                  query: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The run row, long-polled to a terminal state when asked."""
        run = self.queue.get(run_id)
        try:
            wait = min(float(query.get("wait", 0)), MAX_WAIT_SECONDS)
        except ValueError:
            wait = 0.0
        deadline = time.monotonic() + wait
        while (run is not None and wait > 0
               and run["status"] not in (DONE, FAILED)
               and time.monotonic() < deadline):
            time.sleep(_WAIT_POLL_SECONDS)
            run = self.queue.get(run_id)
        return run

    def _send_result(self, run: Dict[str, Any]) -> None:
        if run["status"] != DONE or not isinstance(run.get("result"), dict):
            self._error(409, f"run is {run['status']}, result not available")
            return
        body = run["result"].get("output", "").encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Exit-Code",
                         str(run["result"].get("exit_code", 0)))
        self.end_headers()
        self.wfile.write(body)

    def _send_manifest(self, run: Dict[str, Any]) -> None:
        path = run.get("manifest_path")
        if run["status"] != DONE or not path or not os.path.exists(path):
            self._error(409, f"run is {run['status']}, manifest not available")
            return
        with open(path, "rb") as handle:
            body = handle.read()
        self._send(200, body, "application/json; charset=utf-8")

    # -- POST -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        self._began = time.perf_counter()
        path, _query = self._route()
        body = self._read_body()
        if body is None:
            return
        if path == "/v1/runs":
            self._submit(body)
            return
        if path == "/v1/corpus":
            self._upload_corpus(body)
            return
        self._error(404, f"no route {path!r}")

    def _submit(self, body: Dict[str, Any]) -> None:
        tool = body.get("tool")
        params = body.get("params") or {}
        corpus_id = body.get("corpus")
        if not isinstance(tool, str):
            self._error(400, "missing tool name")
            return
        if not isinstance(params, dict):
            self._error(400, "params must be an object")
            return
        try:
            run, created = submit_request(self.queue, self.store, tool,
                                          params, corpus_id=corpus_id)
        except (RequestError, QueueError) as exc:
            self._error(400, str(exc))
            return
        self._json(201 if created else 200,
                   {"run": _public_run(run), "deduplicated": not created})

    def _upload_corpus(self, body: Dict[str, Any]) -> None:
        files = body.get("files")
        if (not isinstance(files, dict) or not files
                or not all(isinstance(k, str) and isinstance(v, str)
                           for k, v in files.items())):
            self._error(400, "files must map filename -> source text")
            return
        try:
            corpus_id = self.store.add(files)
        except QueueError as exc:
            self._error(400, str(exc))
            return
        self._json(201, {"corpus": corpus_id,
                         "files": sorted(files)})


class Service(ThreadingHTTPServer):
    """The HTTP front end bound to one queue + corpus store."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], db_path: str,
                 data_dir: str, verbose: bool = False) -> None:
        super().__init__(address, ServiceHandler)
        self.queue = RunQueue(db_path)
        self.store = CorpusStore(data_dir)
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_in_thread(db_path: str, data_dir: str,
                    host: str = "127.0.0.1", port: int = 0,
                    ) -> Tuple[Service, threading.Thread]:
    """Boot a service on a background thread (tests and benchmarks)."""
    service = Service((host, port), db_path, data_dir)
    thread = threading.Thread(target=service.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    return service, thread
