"""Stdlib HTTP client for the service (``repro-submit``, benches, CI).

Thin by design: every method is one request, JSON in / JSON out, with
:meth:`ServiceClient.wait` layering the long-poll loop on top.  Errors
surface as :class:`ServiceError` carrying the HTTP status and the
server's ``error`` message, so callers never parse HTML tracebacks.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.serve.db import DONE, FAILED


class ServiceError(RuntimeError):
    """An HTTP request to the service failed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint, addressed by base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read()
            try:
                message = json.loads(detail).get("error", "")
            except ValueError:
                message = detail.decode("utf-8", "replace")[:200]
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {url}: {exc.reason}") \
                from None
        return body if raw else json.loads(body)

    # -- API ------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition text from ``/v1/metrics``."""
        return self._request("GET", "/v1/metrics", raw=True) \
            .decode("utf-8")

    def metrics(self) -> Dict[Any, float]:
        """The scrape parsed into ``{(name, labels): value}`` samples."""
        from repro.obs import prom

        return prom.parse(self.metrics_text())

    def submit(self, tool: str, params: Optional[Dict[str, Any]] = None,
               corpus: Optional[str] = None) -> Dict[str, Any]:
        """Submit one request; returns ``{"run": ..., "deduplicated": ...}``."""
        body: Dict[str, Any] = {"tool": tool, "params": params or {}}
        if corpus is not None:
            body["corpus"] = corpus
        return self._request("POST", "/v1/runs", body)

    def run(self, run_id: str, wait: Optional[float] = None) -> Dict[str, Any]:
        """One run row; ``wait`` long-polls toward a terminal state."""
        path = f"/v1/runs/{run_id}"
        if wait:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def runs(self, status: Optional[str] = None,
             limit: int = 100) -> List[Dict[str, Any]]:
        path = f"/v1/runs?limit={limit}"
        if status:
            path += f"&status={status}"
        return self._request("GET", path)["runs"]

    def result_bytes(self, run_id: str) -> bytes:
        """The run's output, byte-identical to the CLI's stdout."""
        return self._request("GET", f"/v1/runs/{run_id}/result", raw=True)

    def manifest(self, run_id: str) -> Dict[str, Any]:
        """The run's obs manifest (the run record)."""
        return self._request("GET", f"/v1/runs/{run_id}/manifest")

    def upload_corpus(self, files: Dict[str, str]) -> str:
        """Upload a corpus overlay; returns the snapshot id."""
        return self._request("POST", "/v1/corpus", {"files": files})["corpus"]

    # -- composite helpers ---------------------------------------------

    def wait_done(self, run_id: str, timeout: float = 120.0) -> Dict[str, Any]:
        """Long-poll one run to ``done``; ServiceError on fail/timeout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(0, f"run {run_id} still pending after "
                                      f"{timeout:g}s")
            run = self.run(run_id, wait=min(remaining, 10.0))
            if run["status"] == DONE:
                return run
            if run["status"] == FAILED:
                raise ServiceError(0, f"run {run_id} failed: {run.get('error')}")

    def submit_and_wait(self, tool: str,
                        params: Optional[Dict[str, Any]] = None,
                        corpus: Optional[str] = None,
                        timeout: float = 120.0) -> Dict[str, Any]:
        """Submit, block until done, return the final run row."""
        submitted = self.submit(tool, params, corpus=corpus)
        return self.wait_done(submitted["run"]["run_id"], timeout=timeout)
