"""Stdlib HTTP client for the service (``repro-submit``, benches, CI).

Thin by design: every method is one request, JSON in / JSON out, with
:meth:`ServiceClient.wait` layering the long-poll loop on top.  Errors
surface as :class:`ServiceError` carrying the HTTP status and the
server's ``error`` message, so callers never parse HTML tracebacks.

Two hot-path behaviours (both on by default, both switchable):

- **keep-alive**: one persistent ``http.client.HTTPConnection`` per
  thread instead of a fresh TCP connect per call.  The server is a
  thread-per-connection ``ThreadingHTTPServer``, so a reused client
  connection also pins a reused server thread — and with it that
  thread's cached database connection;
- **conditional GETs**: result/manifest fetches remember the last
  ``ETag`` and body per run and send ``If-None-Match``; a ``304``
  answer reuses the remembered bytes without shipping the body again
  (``not_modified`` counts the hits).

A request that fails on a stale kept-alive socket (the server closed
it between calls) is retried once on a fresh connection — safe because
every request here is idempotent: submissions are content-keyed
(resubmitting is the dedup no-op) and everything else is a read.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.serve.db import DONE, FAILED

#: Remembered (etag, body) pairs per client, LRU-bounded.
MAX_ETAG_ENTRIES = 256


class ServiceError(RuntimeError):
    """An HTTP request to the service failed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint, addressed by base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 conditional: bool = True, keepalive: bool = True) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.conditional = conditional
        #: ``keepalive=False`` reconnects per request — the benchmark
        #: baseline against which connection reuse is measured.
        self.keepalive = keepalive
        #: Conditional-GET hits answered from remembered bytes.
        self.not_modified = 0
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ServiceError(0, f"unsupported scheme {split.scheme!r}")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self._prefix = split.path.rstrip("/")
        self._local = threading.local()
        self._etag_lock = threading.Lock()
        self._etags: "OrderedDict[Tuple[str, str], Tuple[str, bytes]]" = \
            OrderedDict()

    # -- plumbing -------------------------------------------------------

    def _connection(self, fresh: bool = False) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if fresh and conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            conn = None
        if conn is None:
            conn = http.client.HTTPConnection(self._host, self._port,
                                              timeout=self.timeout)
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's kept-alive connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self._local.conn = None

    def _http(self, method: str, path: str,
              body: Optional[bytes] = None,
              headers: Optional[Dict[str, str]] = None,
              ) -> Tuple[int, Dict[str, str], bytes]:
        """One round trip on the kept-alive connection, retried once.

        Returns ``(status, headers, body)`` without interpreting the
        status — conditional-GET callers need the 304 as data, not as
        an error.
        """
        send_headers = {"Accept": "application/json"}
        if body is not None:
            send_headers["Content-Type"] = "application/json"
        if headers:
            send_headers.update(headers)
        url = self._prefix + path
        last_error: Optional[Exception] = None
        for attempt in (0, 1):
            conn = self._connection(fresh=attempt > 0 or not self.keepalive)
            try:
                conn.request(method, url, body=body, headers=send_headers)
                response = conn.getresponse()
                payload = response.read()
                result = (response.status,
                          {k.title(): v for k, v in response.getheaders()},
                          payload)
                if not self.keepalive:
                    self.close()
                return result
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                # A stale keep-alive socket fails here; one fresh
                # retry distinguishes that from a dead server.
                last_error = exc
                continue
        raise ServiceError(
            0, f"cannot reach {self.base_url}{path}: {last_error}") from None

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        data = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
        status, _headers, body = self._http(method, path, body=data)
        if status >= 400:
            try:
                message = json.loads(body).get("error", "")
            except ValueError:
                message = body.decode("utf-8", "replace")[:200]
            raise ServiceError(status, message)
        return body if raw else json.loads(body)

    def _conditional_get(self, kind: str, run_id: str,
                         path: str) -> Tuple[bytes, Dict[str, str]]:
        """GET with ``If-None-Match`` revalidation from remembered bytes."""
        key = (kind, run_id)
        remembered: Optional[Tuple[str, bytes]] = None
        headers: Dict[str, str] = {}
        if self.conditional:
            with self._etag_lock:
                remembered = self._etags.get(key)
                if remembered is not None:
                    self._etags.move_to_end(key)
            if remembered is not None:
                headers["If-None-Match"] = remembered[0]
        status, resp_headers, body = self._http("GET", path, headers=headers)
        if status == 304 and remembered is not None:
            self.not_modified += 1
            return remembered[1], resp_headers
        if status >= 400:
            try:
                message = json.loads(body).get("error", "")
            except ValueError:
                message = body.decode("utf-8", "replace")[:200]
            raise ServiceError(status, message)
        etag = resp_headers.get("Etag")
        if self.conditional and etag:
            with self._etag_lock:
                self._etags[key] = (etag, body)
                self._etags.move_to_end(key)
                while len(self._etags) > MAX_ETAG_ENTRIES:
                    self._etags.popitem(last=False)
        return body, resp_headers

    # -- API ------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition text from ``/v1/metrics``."""
        return self._request("GET", "/v1/metrics", raw=True) \
            .decode("utf-8")

    def metrics(self) -> Dict[Any, float]:
        """The scrape parsed into ``{(name, labels): value}`` samples."""
        from repro.obs import prom

        return prom.parse(self.metrics_text())

    def submit(self, tool: str, params: Optional[Dict[str, Any]] = None,
               corpus: Optional[str] = None) -> Dict[str, Any]:
        """Submit one request; returns ``{"run": ..., "deduplicated": ...}``."""
        body: Dict[str, Any] = {"tool": tool, "params": params or {}}
        if corpus is not None:
            body["corpus"] = corpus
        return self._request("POST", "/v1/runs", body)

    def run(self, run_id: str, wait: Optional[float] = None) -> Dict[str, Any]:
        """One run row; ``wait`` long-polls toward a terminal state."""
        path = f"/v1/runs/{run_id}"
        if wait:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def runs(self, status: Optional[str] = None,
             limit: int = 100) -> List[Dict[str, Any]]:
        path = f"/v1/runs?limit={limit}"
        if status:
            path += f"&status={status}"
        return self._request("GET", path)["runs"]

    def result_bytes(self, run_id: str) -> bytes:
        """The run's output, byte-identical to the CLI's stdout."""
        body, _headers = self._conditional_get(
            "result", run_id, f"/v1/runs/{run_id}/result")
        return body

    def manifest(self, run_id: str) -> Dict[str, Any]:
        """The run's obs manifest (the run record)."""
        body, _headers = self._conditional_get(
            "manifest", run_id, f"/v1/runs/{run_id}/manifest")
        return json.loads(body)

    def upload_corpus(self, files: Dict[str, str]) -> str:
        """Upload a corpus overlay; returns the snapshot id."""
        return self._request("POST", "/v1/corpus", {"files": files})["corpus"]

    # -- composite helpers ---------------------------------------------

    def wait_done(self, run_id: str, timeout: float = 120.0) -> Dict[str, Any]:
        """Long-poll one run to ``done``; ServiceError on fail/timeout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(0, f"run {run_id} still pending after "
                                      f"{timeout:g}s")
            run = self.run(run_id, wait=min(remaining, 10.0))
            if run["status"] == DONE:
                return run
            if run["status"] == FAILED:
                raise ServiceError(0, f"run {run_id} failed: {run.get('error')}")

    def submit_and_wait(self, tool: str,
                        params: Optional[Dict[str, Any]] = None,
                        corpus: Optional[str] = None,
                        timeout: float = 120.0) -> Dict[str, Any]:
        """Submit, block until done, return the final run row."""
        submitted = self.submit(tool, params, corpus=corpus)
        return self.wait_done(submitted["run"]["run_id"], timeout=timeout)
