"""Tier 8: the serving layer — HTTP API + DB-backed worker queue.

Turns the CLI-only pipeline into a long-lived service:

- :mod:`repro.serve.api`    — stdlib ``ThreadingHTTPServer`` accepting
  corpus uploads and extraction/checker/campaign requests;
- :mod:`repro.serve.db`     — the SQLite ``runs`` queue
  (queued→claimed→done/failed, leases with timeout reclaim, no
  broker) plus the content-addressed corpus snapshot store;
- :mod:`repro.serve.worker` — worker processes that claim compatible
  job batches and execute them on the existing procpool+shm backend,
  writing obs manifests as the run records;
- :mod:`repro.serve.keys`   — the content-keyed request identity
  (sha256 of corpus shas + resolved engine modes + request params)
  that gives **single-flight dedup**: concurrent identical requests
  coalesce onto one run id and all read its one result;
- :mod:`repro.serve.client` — stdlib ``urllib`` client used by
  ``repro-submit``, the benchmarks, and the CI service smoke.

The perf contract (enforced by ``benchmarks/bench_service.py``):
duplicate-request latency ≥5x below a cold run, a sustained-throughput
floor on a mixed workload, and service responses byte-identical to
direct CLI runs of the same request.
"""

from repro.serve.keys import request_key  # noqa: F401
