"""Content-keyed request identity: the dedup backbone of the service.

A run is identified by what it would *compute*, not by who asked or
when: sha256 over the serve schema version, the tool name, the
canonicalized request params, the corpus content hashes, and the
resolved engine modes.  This mirrors the analysis-store key discipline
(:func:`repro.corpus.cache.analysis_key`) — content in, identity out —
so two submissions that would produce byte-identical results collapse
onto one ``runs`` row, one execution, one manifest.

Canonicalization drops ``None``-valued params (absent and "defaulted"
spell the same request) and validates every name/value against the
tool registry in :mod:`repro.serve.worker`, so a key can never cover
two requests the worker would run differently.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

#: Bump when the request→execution mapping changes (new tool semantics,
#: changed argv building) — orphans every queued/done run's identity at
#: once, exactly like a frontend-version bump orphans IR cache entries.
SERVE_SCHEMA = 1


def canonical_params(params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Params with ``None`` entries dropped and keys sorted.

    ``{"jobs": None}`` and ``{}`` describe the same request; after
    canonicalization they produce the same key.
    """
    return {key: params[key] for key in sorted(params or {})
            if params[key] is not None}


def request_key(tool: str,
                params: Optional[Dict[str, Any]],
                corpus: Dict[str, str],
                engine: Dict[str, str]) -> str:
    """The content key of one service request.

    ``corpus`` maps unit filename -> source sha256 (the corpus the run
    would analyze); ``engine`` is the fully resolved mode dict
    (:func:`repro.perf.modes.resolve_modes` with the request's pinned
    knobs applied).  Any difference that could change what executes —
    a corpus edit, a flipped solver, an extra param — changes the key;
    anything that cannot (submission time, client identity, which API
    thread handled it) is absent from it.
    """
    payload = {
        "schema": SERVE_SCHEMA,
        "tool": tool,
        "params": canonical_params(params),
        "corpus": {name: corpus[name] for name in sorted(corpus)},
        "engine": {name: engine[name] for name in sorted(engine)},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
