"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  The hierarchy mirrors the major
subsystems: the simulated block device and ext4 image, the ecosystem
utilities (which model real exit-with-usage behaviour), the mini-C
frontend, and the static analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# ---------------------------------------------------------------------------
# fsimage layer
# ---------------------------------------------------------------------------


class BlockDeviceError(ReproError):
    """Base class for simulated block-device failures."""


class OutOfRangeIO(BlockDeviceError):
    """A read or write touched blocks outside the device."""


class DeviceClosedError(BlockDeviceError):
    """I/O was attempted on a closed device."""


class ImageError(ReproError):
    """Base class for ext4 image format errors."""


class BadSuperblock(ImageError):
    """The superblock is missing, has a bad magic, or fails validation."""


class BadGroupDescriptor(ImageError):
    """A block-group descriptor is inconsistent with the superblock."""


class AllocationError(ImageError):
    """Block or inode allocation failed (no free space)."""


class CorruptionDetected(ImageError):
    """A consistency check found corrupted metadata.

    Raised by :mod:`repro.ecosystem.e2fsck` when a check fails and the
    run is not in fix-it mode.
    """


# ---------------------------------------------------------------------------
# ecosystem utilities
# ---------------------------------------------------------------------------


class UsageError(ReproError):
    """A utility was invoked with invalid parameters.

    Models the real utilities' ``usage(); exit(1)`` path: the message is
    what the utility would print.  ``component`` names the utility.
    """

    def __init__(self, component: str, message: str) -> None:
        super().__init__(f"{component}: {message}")
        self.component = component
        self.message = message


class MountError(ReproError):
    """ext4_fill_super rejected the mount (models -EINVAL at mount time)."""


class NotMountedError(ReproError):
    """An online operation was attempted on an unmounted file system."""


class AlreadyMountedError(ReproError):
    """An offline utility was run against a mounted file system."""


# ---------------------------------------------------------------------------
# mini-C frontend
# ---------------------------------------------------------------------------


class FrontendError(ReproError):
    """Base class for mini-C frontend errors; carries a source location."""

    def __init__(self, message: str, filename: str = "<input>", line: int = 0, col: int = 0) -> None:
        super().__init__(f"{filename}:{line}:{col}: {message}")
        self.plain_message = message
        self.filename = filename
        self.line = line
        self.col = col


class LexError(FrontendError):
    """The lexer met a character sequence it cannot tokenize."""


class ParseError(FrontendError):
    """The parser met a token sequence outside the mini-C grammar."""


class SemanticError(FrontendError):
    """Semantic analysis failed (unknown name, type mismatch, ...)."""


class LoweringError(ReproError):
    """AST-to-IR lowering met a construct it cannot translate."""


# ---------------------------------------------------------------------------
# static analysis
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for static-analysis failures."""


class UnknownComponentError(AnalysisError):
    """A scenario referenced a component with no corpus translation unit."""


class UnknownFunctionError(AnalysisError):
    """A pre-selected function name was not found in the corpus."""


class SourceAnnotationError(AnalysisError):
    """A configuration-source annotation does not match the corpus."""


# ---------------------------------------------------------------------------
# study / tools
# ---------------------------------------------------------------------------


class DatasetError(ReproError):
    """The bug-patch dataset is malformed or fails its invariants."""


class ManualError(ReproError):
    """A manual page referenced by ConDocCk is missing or malformed."""
