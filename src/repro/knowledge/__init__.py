"""Cross-file-system configuration-method knowledge base (Table 1)."""

from repro.knowledge.fstable import FS_CONFIG_METHODS, FileSystemEntry, config_method_table

__all__ = ["FS_CONFIG_METHODS", "FileSystemEntry", "config_method_table"]
