"""Configuration methods of popular file systems (paper Table 1).

Eight file systems across four operating systems, each configurable at
the four stages of Figure 2 (create / mount / online / offline).  The
entries name the real utilities the paper cites; MINIX has no online
reconfiguration utility, matching the '-' cell in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class FileSystemEntry:
    """One Table-1 row."""

    fs: str
    os: str
    create: Tuple[str, ...]
    mount: Tuple[str, ...]
    online: Tuple[str, ...]
    offline: Tuple[str, ...]

    def label(self) -> str:
        """The row label, e.g. 'Ext4 (Linux)'."""
        return f"{self.fs} ({self.os})"

    def stage_cells(self) -> Tuple[str, str, str, str]:
        """The four stage cells, '-' for an empty stage."""
        def render(utils: Tuple[str, ...]) -> str:
            return ", ".join(utils) if utils else "-"
        return (render(self.create), render(self.mount),
                render(self.online), render(self.offline))


FS_CONFIG_METHODS: Tuple[FileSystemEntry, ...] = (
    FileSystemEntry(
        "Ext4", "Linux",
        create=("mke2fs",), mount=("mount",),
        online=("e4defrag", "resize2fs"), offline=("e2fsck", "resize2fs"),
    ),
    FileSystemEntry(
        "XFS", "Linux",
        create=("mkfs.xfs",), mount=("mount",),
        online=("xfs_fsr", "xfs_growfs"), offline=("xfs_admin", "xfs_repair"),
    ),
    FileSystemEntry(
        "BtrFS", "Linux",
        create=("mkfs.btrfs",), mount=("mount",),
        online=("btrfs-balance", "btrfs-scrub"), offline=("btrfs-check",),
    ),
    FileSystemEntry(
        "UFS", "FreeBSD",
        create=("newfs",), mount=("mount",),
        online=("growfs", "restore"), offline=("dump", "fsck_ufs"),
    ),
    FileSystemEntry(
        "ZFS", "FreeBSD",
        create=("zfs-create",), mount=("zfs-mount",),
        online=("zfs-set", "zfs-rollback"), offline=("zfs-destroy",),
    ),
    FileSystemEntry(
        "MINIX", "Minix",
        create=("mkfs",), mount=("mount",),
        online=(), offline=("fsck",),
    ),
    FileSystemEntry(
        "NTFS", "Windows",
        create=("format",), mount=("mountvol",),
        online=("chkdsk", "defrag"), offline=("chkdsk", "shrink"),
    ),
    FileSystemEntry(
        "APFS", "MacOS",
        create=("diskutil",), mount=("diskutil", "mount_apfs"),
        online=("diskutil",), offline=("diskutil", "fsck_apfs"),
    ),
)


def config_method_table() -> List[FileSystemEntry]:
    """All Table-1 rows, in the paper's order."""
    return list(FS_CONFIG_METHODS)
