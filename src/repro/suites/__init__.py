"""Test-suite models and configuration-coverage computation (Table 2)."""

from repro.suites.xfstest import XFSTEST_SUITE
from repro.suites.e2fsprogs_test import E2FSCK_SUITE, RESIZE2FS_SUITE
from repro.suites.coverage import CoverageRow, compute_coverage, coverage_table

__all__ = [
    "XFSTEST_SUITE",
    "E2FSCK_SUITE",
    "RESIZE2FS_SUITE",
    "CoverageRow",
    "compute_coverage",
    "coverage_table",
]
