"""Configuration-coverage computation (Table 2).

Coverage = |parameters a suite uses| / |registry total|.  Every used
parameter must exist in the target registry — a typo in a suite model
fails loudly instead of inflating coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.ecosystem.params import ALL_REGISTRIES
from repro.suites.xfstest import SuiteModel, XFSTEST_SUITE
from repro.suites.e2fsprogs_test import E2FSCK_SUITE, RESIZE2FS_SUITE

#: The three Table-2 rows.
DEFAULT_SUITES = (XFSTEST_SUITE, E2FSCK_SUITE, RESIZE2FS_SUITE)

#: Target software labels, as printed in the paper's Table 2.
_TARGET_LABELS = {"ext4": "Ext4", "e2fsck": "e2fsck", "resize2fs": "resize2fs"}

#: The paper's published lower bounds on the totals (">85" etc.).
PAPER_TOTAL_BOUNDS = {"ext4": 85, "e2fsck": 35, "resize2fs": 15}


@dataclass
class CoverageRow:
    """One Table-2 row."""

    suite: str
    target: str
    total: int
    used: int

    @property
    def used_fraction(self) -> float:
        """used / total against our concrete registry."""
        return self.used / self.total if self.total else 0.0

    @property
    def paper_bound(self) -> int:
        """The paper's published lower bound for this target."""
        return PAPER_TOTAL_BOUNDS.get(self.target.lower(), self.total)

    @property
    def paper_style_pct(self) -> float:
        """Percentage against the paper's lower bound (e.g. 29/85)."""
        bound = self.paper_bound
        return 100.0 * self.used / bound if bound else 0.0


def compute_coverage(suite: SuiteModel) -> CoverageRow:
    """Coverage of one suite against its target registry."""
    registry = ALL_REGISTRIES[suite.target]
    seen = set()
    for component, name in suite.used:
        registry.get(component, name)  # raises KeyError on a bad model
        seen.add((component, name))
    return CoverageRow(
        suite=suite.name,
        target=_TARGET_LABELS.get(suite.target, suite.target),
        total=len(registry),
        used=len(seen),
    )


def coverage_table(suites: Optional[Sequence[SuiteModel]] = None) -> List[CoverageRow]:
    """All Table-2 rows."""
    return [compute_coverage(s) for s in (suites or DEFAULT_SUITES)]
