"""Models of the e2fsprogs regression suite's configuration usage.

The e2fsprogs tree ships test directories (``tests/f_*``, ``tests/r_*``)
that run e2fsck and resize2fs against prepared images.  The models list
the options those scripts actually pass (Table 2: 6 of >35 e2fsck
parameters, 7 of >15 resize2fs parameters).
"""

from __future__ import annotations

from repro.suites.xfstest import SuiteModel

E2FSCK_SUITE = SuiteModel(
    name="e2fsprogs-test",
    target="e2fsck",
    used=(
        ("e2fsck", "preen_mode"),     # -p, ubiquitous in f_* tests
        ("e2fsck", "assume_yes"),     # -y, second pass of every f_* test
        ("e2fsck", "force"),          # -f
        ("e2fsck", "no_changes"),     # -n, read-only checks
        ("e2fsck", "superblock"),     # -b, backup superblock tests
        ("e2fsck", "blocksize"),      # -B, paired with -b
    ),
)

RESIZE2FS_SUITE = SuiteModel(
    name="e2fsprogs-test",
    target="resize2fs",
    used=(
        ("resize2fs", "size"),            # explicit sizes in r_* tests
        ("resize2fs", "minimize"),        # -M
        ("resize2fs", "progress"),        # -p
        ("resize2fs", "force"),           # -f
        ("resize2fs", "enable_64bit"),    # -b, r_64bit_big_expand
        ("resize2fs", "disable_64bit"),   # -s
        ("resize2fs", "print_min_size"),  # -P
    ),
)
