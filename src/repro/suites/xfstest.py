"""Model of the xfstests suite's Ext4 configuration usage.

xfstests drives Ext4 through MKFS_OPTIONS / MOUNT_OPTIONS environment
blocks and a set of ext4-specific test groups.  The model lists which
of the Ext4 ecosystem's parameters the suite actually exercises — the
paper's finding is that this is less than half of the surface
(Table 2: 29 of >85 parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SuiteModel:
    """Which parameters of which registry a test suite exercises."""

    name: str
    target: str  # registry name in repro.ecosystem.params.ALL_REGISTRIES
    used: Tuple[Tuple[str, str], ...]  # (component, parameter)


XFSTEST_SUITE = SuiteModel(
    name="xfstest",
    target="ext4",
    used=(
        # features exercised via MKFS_OPTIONS="-O ..."
        ("mke2fs", "extent"),
        ("mke2fs", "bigalloc"),
        ("mke2fs", "inline_data"),
        ("mke2fs", "metadata_csum"),
        ("mke2fs", "64bit"),
        ("mke2fs", "has_journal"),
        ("mke2fs", "flex_bg"),
        ("mke2fs", "uninit_bg"),
        ("mke2fs", "dir_index"),
        ("mke2fs", "quota"),
        ("mke2fs", "casefold"),
        ("mke2fs", "encrypt"),
        ("mke2fs", "verity"),
        # mke2fs options
        ("mke2fs", "blocksize"),
        ("mke2fs", "inode_size"),
        ("mke2fs", "cluster_size"),
        ("mke2fs", "features"),
        ("mke2fs", "label"),
        ("mke2fs", "quiet"),
        ("mke2fs", "force"),
        # mount options exercised via MOUNT_OPTIONS="-o ..."
        ("mount", "ro"),
        ("mount", "data"),
        ("mount", "commit"),
        ("mount", "dax"),
        ("mount", "discard"),
        ("mount", "errors"),
        ("mount", "user_xattr"),
        ("mount", "acl"),
        ("mount", "delalloc"),
    ),
)
