"""Deterministic fan-out helpers (the ``--jobs`` knob).

``run_ordered`` maps a function over items with a thread pool but
returns results in submission order, so parallel extraction merges
byte-identically to a sequential run.  Threads (not processes) are the
right fit: the per-function analyses are small, all memo tables are
shared in-process, and the IR modules never need to cross a process
boundary.

When tracing is enabled (:mod:`repro.obs.tracer`), the submitting
thread's current span is captured and explicitly handed to every
worker: spans opened inside a worker parent to the span that was open
at fan-out time, so a ``--jobs N`` run produces the same single rooted
span tree as a sequential one.  With tracing disabled the handoff is a
single ``None`` check.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.obs import tracer

#: Environment override for the default job count.
JOBS_ENV = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_JOBS``, else 1.

    ``0`` (or the env value ``auto``) means "one worker per CPU".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip().lower()
        if not raw:
            return 1
        jobs = 0 if raw == "auto" else int(raw)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_ordered(jobs: int, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    """Apply ``fn`` to every item, results in submission order.

    With ``jobs <= 1`` (or one item) this is a plain sequential loop —
    no pool, no overhead — which is also the reference ordering the
    parallel path must reproduce.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    parent = tracer.capture()
    if parent is not None:
        inner = fn

        def fn(item: T) -> R:  # type: ignore[no-redef]
            with tracer.adopt(parent):
                return inner(item)
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))
