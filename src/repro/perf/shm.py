"""mmap-backed result arena for the shared-memory transport.

The process pool's queues pickle every message, so shipping each
analyzed function's codec blob through them pays pickle + copy twice
per result — enough to erase the multi-core win on small functions.
Under ``REPRO_TRANSPORT=shm`` workers instead append their encoded
results to per-worker **arena segments** (plain files under a
pool-owned directory, mapped read-only by the parent) and send only a
:class:`Descriptor` — ``(segment, offset, length, sha)`` — over the
queue.  The parent decodes lazily from an mmap view, so result bytes
cross the process boundary through the page cache exactly once and
the queue carries a few dozen bytes per batch.

Layout and lifecycle:

- each worker owns its segments (``seg-w<idx>-<n>.bin``), so writers
  never contend: a segment is append-only, rolled over when it would
  exceed ``REPRO_SHM_SEGMENT_BYTES``, and flushed before the
  descriptor is sent — the queue message is the happens-before edge;
- frames are self-contained :mod:`repro.perf.codec` encodings
  (``dump_into`` frames reset their back-reference table per call), so
  any descriptor decodes independently of its neighbors;
- the parent validates every view against the descriptor's length and
  sha prefix and raises a loud :exc:`~repro.perf.codec.CodecError` on
  any mismatch — a torn write or recycled segment degrades to a
  recompute, never to a silently wrong result;
- the pool that created the arena directory unlinks every segment on
  shutdown (normal retirement, ``atexit``, and the worker-death error
  path alike), so crashed workers cannot leak arena files.
"""

from __future__ import annotations

import hashlib
import mmap
import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.perf import modes
from repro.perf.codec import CodecError
from repro.perf.timers import bump

#: Segment filenames: ``seg-<writer tag>-<index>.bin``.
SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".bin"

#: Hex digits of sha256 kept in a descriptor — 64 bits of checksum,
#: plenty to catch torn writes while keeping descriptors tiny.
SHA_PREFIX_LEN = 16


def frame_sha(blob) -> str:
    """The checksum recorded in (and checked against) a descriptor."""
    return hashlib.sha256(blob).hexdigest()[:SHA_PREFIX_LEN]


@dataclass(frozen=True)
class Descriptor:
    """Coordinates of one encoded frame inside an arena segment.

    This — not the frame — is what crosses the result queue: a segment
    filename, the frame's offset and length within it, and a sha256
    prefix of the frame bytes.
    """

    segment: str
    offset: int
    length: int
    sha: str


class ArenaWriter:
    """Worker-side append-only segment writer with size-based rollover.

    One writer per worker process, tagged so segment names never
    collide across workers sharing an arena directory.  A frame larger
    than the segment target gets a segment to itself rather than an
    error — the target bounds churn, it is not a hard frame limit.
    """

    def __init__(self, root: str, tag: str,
                 segment_bytes: Optional[int] = None) -> None:
        self.root = root
        self.tag = tag
        self.segment_bytes = modes.resolve_int("shm_segment_bytes",
                                               segment_bytes)
        self._index = -1
        self._file = None
        self._name = ""
        self._offset = 0

    def _roll(self) -> None:
        if self._file is not None:
            self._file.close()
        self._index += 1
        self._name = f"{SEGMENT_PREFIX}{self.tag}-{self._index}{SEGMENT_SUFFIX}"
        os.makedirs(self.root, exist_ok=True)
        self._file = open(os.path.join(self.root, self._name), "wb")
        self._offset = 0

    def write(self, blob) -> Descriptor:
        """Append one frame; returns its descriptor (flushed, readable)."""
        length = len(blob)
        if (self._file is None
                or (self._offset and self._offset + length > self.segment_bytes)):
            self._roll()
        offset = self._offset
        self._file.write(blob)
        self._file.flush()
        self._offset += length
        return Descriptor(self._name, offset, length, frame_sha(blob))

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class ArenaReader:
    """Parent-side lazy mmap over arena segments, remapping on growth.

    Segments are append-only, so a cached map only ever goes stale by
    being too *short*; a descriptor reaching past the mapped length
    triggers one re-mmap of the grown file.  Every view is validated
    (existence, length, sha) before it is returned — callers must
    ``release()`` the view once decoded, before the reader is closed.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._maps: Dict[str, mmap.mmap] = {}

    def view(self, desc: Descriptor) -> memoryview:
        """A zero-copy view of one frame; CodecError on any mismatch."""
        end = desc.offset + desc.length
        mm = self._maps.get(desc.segment)
        if mm is None or len(mm) < end:
            if mm is not None:
                try:
                    mm.close()
                except BufferError:
                    pass  # a leaked view pins the old map; replace anyway
            path = os.path.join(self.root, desc.segment)
            try:
                size = os.path.getsize(path)
            except OSError:
                raise CodecError(
                    f"arena segment missing: {desc.segment}"
                ) from None
            if size < end:
                raise CodecError(
                    f"arena segment {desc.segment} too short: "
                    f"{size} < {end}"
                )
            with open(path, "rb") as handle:
                mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            self._maps[desc.segment] = mm
            bump("shm.segments_mapped")
        view = memoryview(mm)[desc.offset:end]
        if frame_sha(view) != desc.sha:
            view.release()
            raise CodecError(
                f"arena frame checksum mismatch in {desc.segment} "
                f"at {desc.offset}+{desc.length}"
            )
        return view

    def close(self) -> None:
        for mm in self._maps.values():
            try:
                mm.close()
            except BufferError:
                pass
        self._maps.clear()


def unlink_segments(root: str) -> int:
    """Remove every arena segment under ``root``; returns the count.

    Best-effort by design: the reclaim runs on every pool-retirement
    path including worker-death error handling, where raising over a
    half-removed directory would mask the original failure.
    """
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    removed = 0
    for name in names:
        if not (name.startswith(SEGMENT_PREFIX)
                and name.endswith(SEGMENT_SUFFIX)):
            continue
        try:
            os.unlink(os.path.join(root, name))
            removed += 1
        except OSError:
            pass
    return removed
