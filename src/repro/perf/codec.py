"""Compact binary codec for analysis results (the pickle replacement).

The function-level analysis store (:mod:`repro.corpus.cache`) persists
one ``(TaintState, FunctionFindings)`` pair per analyzed function.
Pickle round-trips those objects but pays for generality: per-object
class lookup by qualified name, protocol framing, and no sharing of the
label strings that dominate the payload.  This codec serializes exactly
the closed set of types the analysis pipeline produces:

- scalars (``None``, bools, ints, floats, strings),
- containers (list/tuple/dict/set/frozenset),
- the registered dataclasses of the IR and analysis layers, encoded as
  a class index plus field values in ``dataclasses.fields`` order,
- ``enum.Enum`` members of registered enums.

Three properties the store relies on:

**Aliasing is preserved.**  Registered-class instances, frozensets and
strings are written once and back-referenced afterwards, so the decoded
graph shares objects exactly where the encoded graph did (the same
:class:`~repro.lang.ir.Instr` appearing in ``trace`` and ``defs``
decodes to one object, and the interned label sets stay shared).

**Corruption is loud.**  Every malformed input — truncated stream,
unknown tag, bad back-reference, trailing bytes, wrong magic — raises
:exc:`CodecError`; the store treats that as a cache miss and recomputes.

**Shape changes are visible.**  :data:`SCHEMA` fingerprints the wire
format *and* every registered class's field list, so editing a
dataclass (or reordering the registry) changes the fingerprint and the
store keys built from it — stale entries become unreachable instead of
mis-decoding.

The registry is closed on purpose: encoding an unregistered type raises
``CodecError`` immediately, which keeps "pickle arbitrary objects"
bugs out of the cache layer.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import struct
from typing import Any, Dict, List, Tuple, Type

#: Leading magic + wire-format version.  Bump the digit when the tag
#: scheme or framing changes incompatibly.
MAGIC = b"RAC1"


class CodecError(Exception):
    """Raised for any malformed, truncated, or unencodable input."""


def _registry() -> Tuple[type, ...]:
    """The closed set of encodable classes, in fixed wire order.

    Imported lazily so ``repro.perf`` (which imports this module's
    package) never cycles with the analysis layer.  Appending to the
    end is backward compatible in spirit, but any change still rotates
    :data:`SCHEMA` — by design.
    """
    from repro.analysis import constraints as C
    from repro.analysis import model as M
    from repro.analysis import taint as T
    from repro.lang import ir as I

    return (
        # IR values
        I.Temp, I.Var, I.Const, I.StrConst,
        # IR instructions
        I.Move, I.BinOp, I.UnOp, I.LoadField, I.StoreField,
        I.LoadIndex, I.StoreIndex, I.CallInstr, I.Branch, I.Jump, I.Ret,
        # IR containers
        I.BasicBlock, I.Function, I.Module,
        # analysis model
        M.ParamRef, M.Evidence, M.Dependency,
        # taint layer
        T.FieldTaint, T.FieldWrite, T.FieldRead, T.TaintState,
        # constraint layer
        C.CmpAtom, C.FlagAtom, C.BranchUse, C.FunctionFindings,
    )


def _enums() -> Tuple[Type[enum.Enum], ...]:
    from repro.analysis import model as M

    return (M.SubKind, M.Category)


#: Fields excluded from the wire format per class name; decoded
#: instances get the dataclass default back (caches re-derive lazily).
_SKIP_FIELDS = {"TaintState": frozenset({"_mpm_cache"})}

_CLASSES: Tuple[type, ...] = ()
_ENUM_CLASSES: Tuple[Type[enum.Enum], ...] = ()
_CLASS_INDEX: Dict[type, int] = {}
_ENUM_INDEX: Dict[type, int] = {}
_CLASS_FIELDS: List[Tuple[str, ...]] = []
#: Per class: (skipped-field defaults, may the decoder bypass __init__?).
#: Bypass (``__new__`` + direct ``__dict__`` fill, pickle's own strategy)
#: is used for plain dataclasses; classes with ``__post_init__`` or
#: ``__slots__`` keep the constructor path so their invariants run.
_CLASS_BUILD: List[Tuple[Tuple[Tuple[str, Any, Any], ...], bool]] = []
_SCHEMA: str = ""


def _ensure_registry() -> None:
    global _CLASSES, _ENUM_CLASSES, _SCHEMA
    if _CLASSES:
        return
    _CLASSES = _registry()
    _ENUM_CLASSES = _enums()
    for index, cls in enumerate(_CLASSES):
        _CLASS_INDEX[cls] = index
        skip = _SKIP_FIELDS.get(cls.__name__, frozenset())
        _CLASS_FIELDS.append(tuple(
            f.name for f in dataclasses.fields(cls) if f.name not in skip
        ))
        skipped = []
        for f in dataclasses.fields(cls):
            if f.name not in skip:
                continue
            if f.default_factory is not dataclasses.MISSING:
                skipped.append((f.name, None, f.default_factory))
            elif f.default is not dataclasses.MISSING:
                skipped.append((f.name, f.default, None))
            else:
                raise CodecError(
                    f"skipped field {cls.__name__}.{f.name} has no default"
                )
        fast = (not hasattr(cls, "__post_init__")
                and not hasattr(cls, "__slots__"))
        _CLASS_BUILD.append((tuple(skipped), fast))
    for index, cls in enumerate(_ENUM_CLASSES):
        _ENUM_INDEX[cls] = index
    shape = ";".join(
        f"{cls.__name__}({','.join(fields)})"
        for cls, fields in zip(_CLASSES, _CLASS_FIELDS)
    ) + "|" + ";".join(
        f"{cls.__name__}({','.join(m.name for m in cls)})"
        for cls in _ENUM_CLASSES
    )
    _SCHEMA = (MAGIC.decode("ascii") + ":"
               + hashlib.sha256(shape.encode("utf-8")).hexdigest()[:16])


def schema() -> str:
    """Fingerprint of the wire format + every registered class shape."""
    _ensure_registry()
    return _SCHEMA


# ---------------------------------------------------------------------------
# wire tags
# ---------------------------------------------------------------------------

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3        # zigzag varint
_T_FLOAT = 4      # 8 bytes, little-endian IEEE 754
_T_STR = 5        # varint byte length + utf-8; enters the ref table
_T_LIST = 6       # varint count + items
_T_TUPLE = 7
_T_DICT = 8       # varint count + alternating key/value
_T_SET = 9
_T_FROZENSET = 10  # enters the ref table
_T_OBJ = 11       # varint class index + field values; enters the ref table
_T_ENUM = 12      # varint enum index + value string; enters the ref table
_T_REF = 13       # varint back-reference into the ref table
_T_BYTES = 14


# Both coder loops below are written closure-style — byte cursor and
# ref table live in closed-over locals, varints are inlined — because
# the store decodes every warm-run entry on the critical path and a
# per-byte bound-method call (the obvious implementation) made decode
# slower than the fixpoints it replaces.

#: Open-slot marker in the decoder's ref table (``None`` is a value).
_OPEN = object()


class _Encoder:
    def __init__(self, out: bytearray = None) -> None:
        self.out = bytearray() if out is None else out
        self.obj_refs: Dict[int, int] = {}   # id(obj) -> table index
        self.str_refs: Dict[str, int] = {}   # value -> table index
        self.pins: List[Any] = []            # keeps ids alive while encoding
        self.next_ref = 0

    def _reserve(self) -> int:
        index = self.next_ref
        self.next_ref += 1
        return index

    def _varint(self, value: int) -> None:
        append = self.out.append
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                append(byte | 0x80)
            else:
                append(byte)
                return

    def encode(self, value: Any) -> None:
        out = self.out
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif type(value) is int:
            out.append(_T_INT)
            # Zigzag without magnitude limits: Python ints are unbounded.
            self._varint((value << 1) if value >= 0
                         else ((-value) << 1) - 1)
        elif type(value) is float:
            out.append(_T_FLOAT)
            out.extend(struct.pack("<d", value))
        elif type(value) is str:
            ref = self.str_refs.get(value)
            if ref is not None:
                out.append(_T_REF)
                self._varint(ref)
                return
            self.str_refs[value] = self._reserve()
            raw = value.encode("utf-8")
            out.append(_T_STR)
            self._varint(len(raw))
            out.extend(raw)
        elif type(value) is bytes:
            out.append(_T_BYTES)
            self._varint(len(value))
            out.extend(value)
        elif type(value) is list:
            out.append(_T_LIST)
            self._varint(len(value))
            for item in value:
                self.encode(item)
        elif type(value) is tuple:
            out.append(_T_TUPLE)
            self._varint(len(value))
            for item in value:
                self.encode(item)
        elif type(value) is dict:
            out.append(_T_DICT)
            self._varint(len(value))
            for key, item in value.items():
                self.encode(key)
                self.encode(item)
        elif type(value) is set:
            out.append(_T_SET)
            self._varint(len(value))
            for item in value:
                self.encode(item)
        elif type(value) is frozenset:
            ref = self.obj_refs.get(id(value))
            if ref is not None:
                out.append(_T_REF)
                self._varint(ref)
                return
            self.obj_refs[id(value)] = self._reserve()
            self.pins.append(value)
            out.append(_T_FROZENSET)
            self._varint(len(value))
            for item in value:
                self.encode(item)
        elif isinstance(value, enum.Enum):
            ref = self.obj_refs.get(id(value))
            if ref is not None:
                out.append(_T_REF)
                self._varint(ref)
                return
            enum_index = _ENUM_INDEX.get(type(value))
            if enum_index is None:
                raise CodecError(f"unregistered enum {type(value).__name__}")
            self.obj_refs[id(value)] = self._reserve()
            self.pins.append(value)
            out.append(_T_ENUM)
            self._varint(enum_index)
            self.encode(value.name)
        else:
            class_index = _CLASS_INDEX.get(type(value))
            if class_index is None:
                raise CodecError(
                    f"unencodable type {type(value).__name__}: not in the "
                    f"codec registry"
                )
            ref = self.obj_refs.get(id(value))
            if ref is not None:
                out.append(_T_REF)
                self._varint(ref)
                return
            self.obj_refs[id(value)] = self._reserve()
            self.pins.append(value)
            out.append(_T_OBJ)
            self._varint(class_index)
            for name in _CLASS_FIELDS[class_index]:
                self.encode(getattr(value, name))


def _decode_stream(data) -> Tuple[Any, int]:
    """Decode one value; returns ``(value, bytes consumed)``."""
    table: List[Any] = []
    table_append = table.append
    size = len(data)
    pos = 0
    classes = _CLASSES
    class_fields = _CLASS_FIELDS
    class_build = _CLASS_BUILD
    enum_classes = _ENUM_CLASSES
    unpack_float = struct.Struct("<d").unpack_from

    def varint_rest(first: int) -> int:
        """Continuation bytes of a multi-byte varint (the rare case)."""
        nonlocal pos
        result = first & 0x7F
        shift = 7
        while True:
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 128:
                raise CodecError("varint too long")

    # Out-of-range reads surface as IndexError/struct.error, which
    # :func:`loads` converts to CodecError — per-byte bounds checks in
    # this loop cost more than the whole fixpoint they'd be guarding.
    def decode() -> Any:
        nonlocal pos
        tag = data[pos]
        pos += 1
        # Tag tests ordered by frequency in real analysis payloads:
        # back-references and strings dominate, then ints and objects.
        if tag == _T_REF:
            ref = data[pos]
            pos += 1
            if ref >= 0x80:
                ref = varint_rest(ref)
            value = table[ref]
            if value is _OPEN:
                raise CodecError(f"back-reference {ref} into open object")
            return value
        if tag == _T_STR:
            length = data[pos]
            pos += 1
            if length >= 0x80:
                length = varint_rest(length)
            end = pos + length
            if end > size:
                raise CodecError("truncated stream")
            try:
                # str(buf, ...) decodes bytes and memoryview slices
                # alike, so one loop serves owned blobs and arena views.
                value = str(data[pos:end], "utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(f"bad utf-8 in string: {exc}") from None
            pos = end
            table_append(value)
            return value
        if tag == _T_INT:
            raw = data[pos]
            pos += 1
            if raw >= 0x80:
                raw = varint_rest(raw)
            return (raw >> 1) if not (raw & 1) else -((raw + 1) >> 1)
        if tag == _T_OBJ:
            index = len(table)
            table_append(_OPEN)
            class_index = data[pos]
            pos += 1
            if class_index >= 0x80:
                class_index = varint_rest(class_index)
            if class_index >= len(classes):
                raise CodecError(f"bad class index {class_index}")
            cls = classes[class_index]
            skipped, fast = class_build[class_index]
            if fast:
                value = cls.__new__(cls)
                fill = value.__dict__
                for name in class_fields[class_index]:
                    fill[name] = decode()
                for name, default, factory in skipped:
                    fill[name] = factory() if factory is not None else default
            else:
                kwargs = {name: decode()
                          for name in class_fields[class_index]}
                try:
                    value = cls(**kwargs)
                except (TypeError, ValueError) as exc:
                    raise CodecError(
                        f"cannot rebuild {cls.__name__}: {exc}"
                    ) from None
            table[index] = value
            return value
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_FROZENSET:
            index = len(table)
            table_append(_OPEN)
            count = data[pos]
            pos += 1
            if count >= 0x80:
                count = varint_rest(count)
            value = frozenset([decode() for _ in range(count)])
            table[index] = value
            return value
        if tag in (_T_LIST, _T_TUPLE, _T_SET):
            count = data[pos]
            pos += 1
            if count >= 0x80:
                count = varint_rest(count)
            items = [decode() for _ in range(count)]
            if tag == _T_LIST:
                return items
            return tuple(items) if tag == _T_TUPLE else set(items)
        if tag == _T_DICT:
            count = data[pos]
            pos += 1
            if count >= 0x80:
                count = varint_rest(count)
            out: Dict[Any, Any] = {}
            for _ in range(count):
                key = decode()
                out[key] = decode()
            return out
        if tag == _T_ENUM:
            index = len(table)
            table_append(_OPEN)
            enum_index = data[pos]
            pos += 1
            if enum_index >= 0x80:
                enum_index = varint_rest(enum_index)
            if enum_index >= len(enum_classes):
                raise CodecError(f"bad enum index {enum_index}")
            name = decode()
            try:
                member = enum_classes[enum_index][name]
            except KeyError:
                raise CodecError(f"unknown enum member {name!r}") from None
            table[index] = member
            return member
        if tag == _T_FLOAT:
            value = unpack_float(data, pos)[0]
            pos += 8
            return value
        if tag == _T_BYTES:
            length = data[pos]
            pos += 1
            if length >= 0x80:
                length = varint_rest(length)
            end = pos + length
            if end > size:
                raise CodecError("truncated stream")
            value = bytes(data[pos:end])
            pos = end
            return value
        raise CodecError(f"unknown tag {tag}")

    return decode(), pos


def dump_into(value: Any, out: bytearray) -> Tuple[int, int]:
    """Append one magic-framed encoding of ``value`` to ``out``.

    Returns ``(offset, length)`` of the frame within ``out`` — the
    shape a shared-memory arena descriptor needs — so a worker can
    encode straight into its segment buffer and ship coordinates
    instead of bytes.  Each frame is self-contained (the back-reference
    table resets per call), so any frame decodes independently of its
    neighbors in the same buffer.
    """
    _ensure_registry()
    offset = len(out)
    out += MAGIC
    _Encoder(out).encode(value)
    return offset, len(out) - offset


def dumps(value: Any) -> bytes:
    """Serialize ``value`` (registered types only) to bytes."""
    out = bytearray()
    dump_into(value, out)
    return bytes(out)


def loads(data) -> Any:
    """Rebuild a value from :func:`dumps`/:func:`dump_into` output.

    ``data`` may be ``bytes`` or any buffer (``memoryview``,
    ``bytearray``, an mmap view) — decoding from a view copies only
    the strings and bytes it materializes, never the frame itself,
    which is what lets the parent decode worker results lazily out of
    a shared-memory arena.  Raises :exc:`CodecError` for anything
    malformed — wrong magic, truncation, unknown tags or indexes,
    trailing bytes.
    """
    _ensure_registry()
    if data[:len(MAGIC)] != MAGIC:
        raise CodecError("bad magic: not a codec stream")
    body = data[len(MAGIC):]
    try:
        value, consumed = _decode_stream(body)
    except CodecError:
        raise
    except (IndexError, struct.error, OverflowError, MemoryError) as exc:
        raise CodecError(f"malformed stream: {exc}") from None
    if consumed != len(body):
        raise CodecError(
            f"trailing garbage: {len(body) - consumed} bytes"
        )
    return value
