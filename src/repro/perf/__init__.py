"""Performance substrate for the analysis pipeline and the checkers.

Five small pieces:

- :mod:`repro.perf.timers` — context-manager phase timers and named
  counters, rendered as a text table by the ``--profile`` CLI flag
  (storage lives in :data:`repro.obs.metrics.REGISTRY`, so manifests
  and span attrs read the same numbers);
- :mod:`repro.perf.parallel` — the ``--jobs``/``REPRO_JOBS`` fan-out
  helper with deterministic (submission-order) result merging;
- :mod:`repro.perf.campaign` — the checker campaign engine: parallel
  fan-out with spec-order merging plus the post-mkfs snapshot cache;
- :mod:`repro.perf.lattice` — the hash-consed label-set lattice the
  sparse taint solver runs on (interned ``frozenset``s + memoized
  binary join);
- the memo registry below — every process-level memo table in the
  analyzer registers a clear callback here so
  :func:`repro.corpus.loader.clear_cache` can drop them all without
  import cycles.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.perf.campaign import SnapshotCache, run_campaign
from repro.perf.parallel import resolve_jobs, run_ordered
from repro.perf.timers import (
    bump,
    counters,
    hit_rates,
    register_counter_source,
    render_profile,
    reset_profile,
    stats,
    timed,
)
from repro.perf import lattice

__all__ = [
    "bump",
    "counters",
    "clear_memos",
    "hit_rates",
    "lattice",
    "register_counter_source",
    "register_memo",
    "render_profile",
    "reset_profile",
    "resolve_jobs",
    "run_campaign",
    "run_ordered",
    "SnapshotCache",
    "stats",
    "timed",
]

#: name -> clear callback for every registered memo table.
_MEMO_REGISTRY: Dict[str, Callable[[], None]] = {}


def register_memo(name: str, clear: Callable[[], None]) -> None:
    """Register a memo table's clear callback under ``name``."""
    _MEMO_REGISTRY[name] = clear


def clear_memos() -> None:
    """Clear every registered memo table (taint, constraints, CFG...)."""
    for clear in _MEMO_REGISTRY.values():
        clear()


# The lattice's intern/join tables are one memo (identity keys from the
# join table point into the intern table), and its lock-free tallies
# surface in ``--profile`` output through the counter-source hook.
# Registration is keyed, so re-importing this module (or anything that
# re-runs it) replaces the entry instead of double-counting.
register_memo("perf.lattice", lattice.clear)
register_counter_source(lattice.counters, lattice.reset_tallies,
                        name="perf.lattice")
