"""Single source of truth for the engine-mode knobs.

Every switchable engine in the pipeline — taint solver, lexer, parser,
label lattice, execution backend, result transport — follows the same
contract: an
explicit argument wins, else a ``REPRO_*`` environment variable, else
the first (default) mode; anything else is a loud error.  That
resolution logic used to be restated in each engine module and again in
:mod:`repro.obs.manifest`; this module holds the one knob registry they
all delegate to, so adding a knob (or changing a default) happens in
exactly one place.

The registry also powers two consumers that need *all* knobs at once:

- :func:`resolve_modes` — the resolved mode dict recorded in run
  manifests and compared by ``repro-runs diff``;
- :func:`env_signature` — a snapshot of every ``REPRO_*`` variable,
  used by :mod:`repro.perf.procpool` to decide whether a persistent
  worker pool is still consistent with the parent's environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Knob:
    """One engine-mode knob: its env var and recognized modes."""

    name: str
    env: str
    modes: Tuple[str, ...]  # first entry is the default

    @property
    def default(self) -> str:
        return self.modes[0]


#: The engine-mode registry.  Order is presentation order (manifests,
#: docs); the first mode of each knob is its default.
KNOBS: Tuple[Knob, ...] = (
    Knob("solver", "REPRO_SOLVER", ("sparse", "dense")),
    Knob("lex", "REPRO_LEX", ("regex", "scan")),
    Knob("parser", "REPRO_PARSER", ("climb", "ladder")),
    Knob("lattice", "REPRO_LATTICE", ("intern", "plain")),
    Knob("backend", "REPRO_BACKEND", ("thread", "process")),
    Knob("transport", "REPRO_TRANSPORT", ("shm", "pickle")),
)

_BY_NAME: Dict[str, Knob] = {knob.name: knob for knob in KNOBS}


@dataclass(frozen=True)
class IntKnob:
    """One integer tuning knob: env var, default, and lower bound."""

    name: str
    env: str
    default: int
    minimum: int = 1


#: Integer tuning knobs.  Unlike the enumerated engine modes these do
#: not change *what* runs, only how work is chunked — but they still
#: resolve explicit > env > default with loud errors, and their env
#: vars share the ``REPRO_`` prefix so :func:`env_signature` (and the
#: process-pool keying built on it) covers them automatically.
INT_KNOBS: Tuple[IntKnob, ...] = (
    # Target payload bytes per worker dispatch: the batcher packs
    # consecutive small functions until their estimated source size
    # crosses this, amortizing queue round-trips.
    IntKnob("batch_bytes", "REPRO_BATCH_BYTES", 16384),
    # Arena segment rollover size for the shm result transport.
    IntKnob("shm_segment_bytes", "REPRO_SHM_SEGMENT_BYTES", 1 << 20),
)

_INT_BY_NAME: Dict[str, IntKnob] = {knob.name: knob for knob in INT_KNOBS}


def int_knob(name: str) -> IntKnob:
    """The registry entry for one integer knob; KeyError when unknown."""
    return _INT_BY_NAME[name]


def resolve_int(name: str, explicit: Optional[int] = None) -> int:
    """Resolve one integer knob: explicit arg, else env var, else default.

    Raises ``ValueError`` (never a silent fallback) when the value is
    not an integer or falls below the knob's minimum.
    """
    entry = _INT_BY_NAME[name]
    if explicit is not None:
        value = explicit
    else:
        raw = os.environ.get(entry.env, "").strip()
        if not raw:
            return entry.default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{entry.env} must be an integer, got {raw!r}"
            ) from None
    if value < entry.minimum:
        raise ValueError(
            f"{entry.name} must be >= {entry.minimum}, got {value}"
        )
    return value


def knob(name: str) -> Knob:
    """The registry entry for one knob; KeyError when unknown."""
    return _BY_NAME[name]


def resolve_mode(name: str, explicit: Optional[str] = None) -> str:
    """Resolve one knob: ``explicit`` arg, else its env var, else default.

    Raises ``ValueError`` (never a silent fallback) when the requested
    mode is not one of the knob's recognized modes.
    """
    entry = _BY_NAME[name]
    mode = (explicit or os.environ.get(entry.env, "").strip().lower()
            or entry.default)
    if mode not in entry.modes:
        raise ValueError(
            f"unknown {entry.name} mode {mode!r}; expected one of "
            f"{', '.join(entry.modes)}"
        )
    return mode


def resolve_modes(overrides: Optional[Dict[str, Optional[str]]] = None,
                  ) -> Dict[str, str]:
    """Every knob resolved, with ``overrides`` pinning explicit choices.

    ``overrides`` maps knob name to an explicit mode (``None`` entries
    mean "not pinned" and fall through to the environment).
    """
    overrides = overrides or {}
    return {
        entry.name: resolve_mode(entry.name, overrides.get(entry.name))
        for entry in KNOBS
    }


def env_signature() -> Tuple[Tuple[str, str], ...]:
    """Sorted snapshot of every ``REPRO_*`` environment variable.

    Two processes with equal signatures resolve every knob — and every
    cache/corpus location — identically, which is the consistency
    condition for reusing a persistent worker pool.
    """
    return tuple(sorted(
        (key, value) for key, value in os.environ.items()
        if key.startswith("REPRO_")
    ))
