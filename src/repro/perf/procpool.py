"""Spawn-safe persistent process pool (the ``--backend process`` engine).

The thread backend (:mod:`repro.perf.parallel`) shares every memo table
but executes Python under one GIL, so CPU-bound phases — the mini-C
frontend and the taint fixpoints — serialize no matter how many workers
run.  This pool puts those phases on real cores:

- **spawn, not fork** — workers start from a clean interpreter, so the
  pool behaves identically on every platform and never inherits
  half-initialized locks or memo tables;
- **warm workers** — each worker imports the pipeline once and keeps
  its in-process memos and loaded corpus across tasks, so per-task cost
  is the task, not interpreter startup;
- **lean envelopes** — tasks cross the boundary as ``(handler name,
  small payload)``; results come back as arena descriptors
  (:mod:`repro.perf.shm`), compact :mod:`repro.perf.codec` blobs, or
  tiny primitives, never whole IR modules;
- **per-worker task queues** — round-robin dispatch plus the ability to
  *broadcast* a control task to every worker (``pool.reset`` lets the
  cold benchmarks drop worker memos without respawning);
- **submit/wait dispatch** — :meth:`ProcessPool.submit` returns a
  sequence id immediately and :meth:`ProcessPool.wait` /
  :meth:`ProcessPool.wait_any` collect later, which is what lets the
  extractor overlap compile and analyze waves;
  :meth:`ProcessPool.run_ordered` keeps the submission-order contract
  of :func:`repro.perf.parallel.run_ordered` on top, so callers stay
  byte-identical regardless of completion order;
- **result arena** — the pool owns a shared-memory arena directory;
  workers write encoded results there under ``REPRO_TRANSPORT=shm``
  and the parent decodes lazily through :attr:`ProcessPool.reader`.
  Every retirement path — normal shutdown, ``atexit``, the
  :class:`ProcessPoolError` raised when a worker dies, and (for
  long-lived service processes that call
  :func:`install_signal_cleanup`) SIGINT/SIGTERM — unlinks every
  segment the pool created, so crashes and interrupts cannot leak
  arena files;
- **span handoff** — when tracing is enabled, each worker runs its task
  under a fresh :class:`~repro.obs.tracer.Tracer`, ships the finished
  spans back with the result, and the parent grafts them under the span
  that was open at submit time: one rooted tree per run, same as the
  thread backend.

Workers see the parent's ``REPRO_*`` environment (snapshotted at spawn)
and the pool is keyed by that snapshot — flip any knob and the next
:func:`get_pool` builds a fresh, consistent pool.  The pool registers
an ``atexit`` hook, so interactive callers never leak worker processes.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_mod
import tempfile
import threading
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.obs import tracer
from repro.perf import modes, shm
from repro.perf.parallel import resolve_jobs
from repro.perf.timers import bump

#: Seconds between liveness checks while waiting on results.
_POLL_SECONDS = 0.25

#: Seconds to wait for workers to drain their queues on shutdown.
_SHUTDOWN_GRACE = 5.0

#: Batch-planning weight for a function whose source size is unknown.
DEFAULT_TASK_BYTES = 2048


class ProcessPoolError(RuntimeError):
    """A worker died or the pool is unusable."""


def plan_batches(items: Sequence[Any], size_of: Callable[[Any], int],
                 target: int) -> List[List[Any]]:
    """Group consecutive ``items`` into batches of roughly ``target`` size.

    Greedy and order-preserving: a batch closes when adding the next
    item would push its accumulated ``size_of`` weight past ``target``,
    so small functions amortize queue round-trips while a single large
    function still gets a batch to itself.  Every item lands in exactly
    one batch; concatenating the batches reproduces ``items``.
    """
    batches: List[List[Any]] = []
    current: List[Any] = []
    total = 0
    for item in items:
        size = max(1, size_of(item))
        if current and total + size > target:
            batches.append(current)
            current, total = [], 0
        current.append(item)
        total += size
    if current:
        batches.append(current)
    return batches


# ---------------------------------------------------------------------------
# task handlers (executed in workers)
# ---------------------------------------------------------------------------
#
# Handlers are module-level so the spawned child resolves them by name
# after importing this module — no closures cross the process boundary.

#: The worker's arena writer, created by :func:`_worker_main` before
#: any task runs (None in the parent process).
_WORKER_ARENA: Optional[shm.ArenaWriter] = None


def _h_ping(_payload: Any) -> str:
    """Liveness/warmup probe; imports the pipeline as a side effect."""
    import repro.analysis.extractor  # noqa: F401  (warm the import graph)

    return "pong"


def _h_reset(_payload: Any) -> str:
    """Drop the worker's in-memory state (memos + loaded units).

    Broadcast by cold benchmarks so a "cold" measurement over a warm
    pool really recomputes instead of serving worker memos.  The disk
    caches are left alone — cold benches isolate those via
    ``REPRO_CACHE_DIR``/``REPRO_NO_DISK_CACHE``.
    """
    from repro.corpus.loader import clear_cache

    clear_cache()
    return "reset"


def _h_compile(payload: Any) -> Tuple[str, Dict[str, str], Dict[str, int]]:
    """Compile one corpus unit; returns (filename, slice hashes, sizes).

    Warms the shared disk IR cache, and ships back the unit's
    per-function slice hashes (so the parent can run invalidation
    without compiling anything itself) and source-slice byte sizes
    (the batch-planning weights).
    """
    from repro.corpus import cache as disk
    from repro.corpus.loader import load_unit, unit_slices

    (filename,) = payload
    unit = load_unit(filename)
    sizes = disk.function_sizes(
        unit.source,
        {name: fn.line for name, fn in unit.module.functions.items()},
    )
    return filename, dict(unit_slices(unit)), sizes


def _h_extract_batch(payload: Any) -> Tuple[str, List[Any], Dict[str, Any]]:
    """Analyze a batch of pre-selected functions from one unit.

    Each function runs the exact memo → store → compute path of the
    thread backend (:meth:`repro.analysis.extractor.Extractor`
    ``_analyze_one_blob``), so store entries written by workers are the
    same entries the thread backend writes — and the store flush reuses
    the already-encoded bytes, never a second encode.  Returns
    ``(transport, results, graph records)`` where results are arena
    descriptors under the shm transport and raw codec blobs under
    pickle; graph records are drained and shipped back — the parent is
    the single flusher.
    """
    from repro.analysis.extractor import Extractor
    from repro.corpus import cache as disk

    filename, fn_names, solver, transport = payload
    extractor = Extractor(jobs=1, solver=solver, transport=transport)
    blobs = [extractor._analyze_one_blob((filename, fn_name))
             for fn_name in fn_names]
    records = disk.take_pending()
    if transport == "shm":
        assert _WORKER_ARENA is not None
        return "shm", [_WORKER_ARENA.write(blob) for blob in blobs], records
    return "pickle", blobs, records


def _h_campaign_shard(payload: Any) -> Tuple[str, Any]:
    """Run one campaign shard and ship its aggregate payload back.

    The payload is ``(runner, spec, transport)`` — ``runner`` names a
    :data:`repro.perf.campaign.SHARD_RUNNERS` module whose
    ``run_shard(spec)`` drives the spec's config range and returns a
    bounded, plain-container aggregate.  The wall-clock of the shard
    (sampling + driving, not queue time) is stamped into the payload so
    the parent can record per-shard timings in run manifests.  Returns
    ``("shm", descriptor)`` under the arena transport, else
    ``("pickle", blob)``.
    """
    import importlib
    import time as _time

    from repro.perf import campaign, codec

    runner, spec, transport = payload
    module = importlib.import_module(campaign.SHARD_RUNNERS[runner])
    started = _time.perf_counter()
    result = module.run_shard(spec)
    result["seconds"] = _time.perf_counter() - started
    blob = codec.dumps(result)
    if transport == "shm":
        assert _WORKER_ARENA is not None
        return "shm", _WORKER_ARENA.write(blob)
    return "pickle", blob


_HANDLERS: Dict[str, Callable[[Any], Any]] = {
    "pool.ping": _h_ping,
    "pool.reset": _h_reset,
    "corpus.compile": _h_compile,
    "extract.batch": _h_extract_batch,
    "campaign.shard": _h_campaign_shard,
}


def _worker_main(index: int, env: Dict[str, str], arena_dir: str,
                 task_queue: Any, result_queue: Any) -> None:
    """Worker loop: apply handlers to envelopes until the None sentinel."""
    # Re-assert the parent's REPRO_* snapshot: inherited environment is
    # already correct for spawn, this just makes the contract explicit
    # and immune to platform quirks.
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)
    global _WORKER_ARENA
    _WORKER_ARENA = shm.ArenaWriter(arena_dir, f"w{index}")
    while True:
        envelope = task_queue.get()
        if envelope is None:
            _WORKER_ARENA.close()
            return
        seq, handler_name, payload, trace_requested, traceparent = envelope
        spans: List[Dict[str, Any]] = []
        try:
            handler = _HANDLERS[handler_name]
            if trace_requested:
                local = tracer.Tracer(f"worker-{index}",
                                      traceparent=traceparent)
                with tracer.enabled(local):
                    result = handler(payload)
                spans = tracer.export_spans(local)
            else:
                result = handler(payload)
        except BaseException as exc:  # ship the failure, keep serving
            # mp.Queue pickles in a feeder thread, where a pickling
            # failure would silently drop the message and hang the
            # parent — so prove the exception picklable *here* and
            # degrade to a description when it is not.
            import pickle

            try:
                pickle.dumps(exc)
                shipped: BaseException = exc
            except Exception:
                shipped = ProcessPoolError(f"{type(exc).__name__}: {exc}")
            result_queue.put((seq, "err", shipped, spans))
            continue
        result_queue.put((seq, "ok", result, spans))


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


class ProcessPool:
    """A fixed set of warm spawn workers with submit/wait dispatch."""

    def __init__(self, jobs: int) -> None:
        import multiprocessing as mp

        self.jobs = max(1, jobs)
        self.env = {k: v for k, v in os.environ.items()
                    if k.startswith("REPRO_")}
        self.arena_dir = tempfile.mkdtemp(prefix="repro-arena-")
        self._reader: Optional[shm.ArenaReader] = None
        self._ctx = mp.get_context("spawn")
        self._result_queue = self._ctx.Queue()
        self._task_queues = []
        self._workers = []
        self._seq = 0
        self._rr = 0
        self._lock = threading.Lock()
        self._closed = False
        #: seq -> parent-span token captured at submit time.
        self._outstanding: Dict[int, Any] = {}
        #: seq -> (status, payload, spans) arrived but not yet waited on.
        self._buffer: Dict[int, Tuple[str, Any, list]] = {}
        for index in range(self.jobs):
            task_queue = self._ctx.Queue()
            worker = self._ctx.Process(
                target=_worker_main,
                args=(index, self.env, self.arena_dir, task_queue,
                      self._result_queue),
                daemon=True,
                name=f"repro-worker-{index}",
            )
            worker.start()
            self._task_queues.append(task_queue)
            self._workers.append(worker)

    # -- dispatch -------------------------------------------------------

    @property
    def reader(self) -> shm.ArenaReader:
        """Lazy parent-side view of this pool's result arena."""
        if self._reader is None:
            self._reader = shm.ArenaReader(self.arena_dir)
        return self._reader

    def submit(self, handler_name: str, payload: Any,
               worker: Optional[int] = None,
               trace: Optional[bool] = None) -> int:
        """Enqueue one ``(handler, payload)`` envelope; returns its seq.

        Dispatch is round-robin over the per-worker queues unless
        ``worker`` pins one.  The caller collects with :meth:`wait` /
        :meth:`wait_any`; the span open right now is remembered so the
        worker's spans graft under it at collection time.
        """
        if self._closed:
            raise ProcessPoolError("pool is shut down")
        trace_requested = tracer.is_enabled() if trace is None else trace
        parent_span = tracer.capture()
        # Trace context rides the envelope, not the environment: the
        # pool is keyed by the REPRO_* snapshot, and a per-run value in
        # the environment would respawn the warm pool on every run.
        active = tracer.active()
        traceparent = active.traceparent if active is not None else None
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._outstanding[seq] = parent_span
            if worker is None:
                worker = self._rr % self.jobs
                self._rr += 1
        self._task_queues[worker].put(
            (seq, handler_name, payload, trace_requested, traceparent)
        )
        return seq

    def _pump(self) -> None:
        """Move one result (if any) from the queue into the buffer.

        Detecting a dead worker here is the leaked-segment choke point:
        the pool shuts down — reclaiming every arena segment — *before*
        the :class:`ProcessPoolError` propagates, so a killed worker
        can fail the run but never leak arena files.
        """
        try:
            seq, status, payload, spans = self._result_queue.get(
                timeout=_POLL_SECONDS
            )
        except queue_mod.Empty:
            dead = [w.name for w in self._workers if not w.is_alive()]
            if dead:
                reclaimed = self.shutdown()
                raise ProcessPoolError(
                    f"worker(s) died while tasks were pending: {dead} "
                    f"(reclaimed {reclaimed} arena segment(s))"
                ) from None
            return
        if seq in self._outstanding:
            self._buffer[seq] = (status, payload, spans)
        # else: a stale result from an abandoned call; drop it.

    def wait(self, seq: int) -> Any:
        """Block for one submitted seq; re-raises its worker exception."""
        while seq not in self._buffer:
            if self._closed:
                raise ProcessPoolError("pool is shut down")
            self._pump()
        status, payload, spans = self._buffer.pop(seq)
        parent_span = self._outstanding.pop(seq, None)
        active = tracer.active()
        if active is not None and spans:
            tracer.graft(spans, active, parent_span)
        if status == "err":
            raise payload
        return payload

    def wait_any(self, seqs: Iterable[int]) -> Tuple[int, Any]:
        """Block until any seq in ``seqs`` completes; ``(seq, result)``."""
        seqs = list(seqs)
        while True:
            for seq in seqs:
                if seq in self._buffer:
                    return seq, self.wait(seq)
            if self._closed:
                raise ProcessPoolError("pool is shut down")
            self._pump()

    def forget(self, seqs: Iterable[int]) -> None:
        """Abandon submitted calls; late results are silently dropped."""
        for seq in seqs:
            self._outstanding.pop(seq, None)
            self._buffer.pop(seq, None)

    def run_ordered(self, calls: Sequence[Tuple[str, Any]]) -> List[Any]:
        """Run ``(handler name, payload)`` envelopes; results in call order.

        The merge collects by submission sequence, so ordering never
        depends on which worker finished first.  The first failing call
        (in submission order) re-raises its worker-side exception in
        the parent.
        """
        seqs = [self.submit(handler_name, payload)
                for handler_name, payload in calls]
        try:
            return [self.wait(seq) for seq in seqs]
        except BaseException:
            self.forget(seqs)
            raise

    def broadcast(self, handler_name: str, payload: Any = None) -> List[Any]:
        """Run one control task on *every* worker; results in worker order."""
        seqs = [self.submit(handler_name, payload, worker=index, trace=False)
                for index in range(self.jobs)]
        try:
            return [self.wait(seq) for seq in seqs]
        except BaseException:
            self.forget(seqs)
            raise

    def warm(self) -> None:
        """Block until every worker has imported the pipeline."""
        self.broadcast("pool.ping")

    def reset_workers(self) -> None:
        """Drop all worker in-memory memos (cold-measurement support)."""
        self.broadcast("pool.reset")

    # -- lifecycle ------------------------------------------------------

    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return not self._closed and all(w.is_alive() for w in self._workers)

    def shutdown(self) -> int:
        """Stop the workers and reclaim the arena; idempotent.

        Returns the number of arena segments unlinked — every segment
        this pool's workers ever created, whatever the exit path.
        """
        if self._closed:
            return 0
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:
                pass
        for worker in self._workers:
            worker.join(timeout=_SHUTDOWN_GRACE)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=_SHUTDOWN_GRACE)
        for task_queue in self._task_queues:
            task_queue.close()
        self._result_queue.close()
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        reclaimed = shm.unlink_segments(self.arena_dir)
        if reclaimed:
            bump("shm.segments_reclaimed", reclaimed)
        try:
            os.rmdir(self.arena_dir)
        except OSError:
            pass
        return reclaimed


# ---------------------------------------------------------------------------
# module-global pool reuse
# ---------------------------------------------------------------------------

#: (jobs, REPRO_* snapshot) -> the live pool.  One consistent pool per
#: configuration; flipping an engine knob or the cache/corpus dir makes
#: the old pool unreachable (and shut down) rather than subtly stale.
_POOLS: Dict[Tuple[int, Tuple[Tuple[str, str], ...]], ProcessPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(jobs: Optional[int] = None, warm: bool = True) -> ProcessPool:
    """The shared pool for the current configuration (created on demand).

    ``jobs`` resolves through :func:`repro.perf.parallel.resolve_jobs`.
    A configuration change (any ``REPRO_*`` variable, or a different
    job count) shuts the old pool down and builds a fresh one — workers
    must agree with the parent on every knob, cache path, and corpus
    location or ordered-merge identity would quietly break.
    """
    resolved = resolve_jobs(jobs)
    key = (resolved, modes.env_signature())
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and pool.alive():
            # The serving layer's cross-job reuse metric: a warm wave
            # of compatible requests should count one create and many
            # reuses, never a respawn per job.
            bump("procpool.reused")
            return pool
        # Retire every other configuration: workers with a stale
        # environment can only produce stale answers.
        for old in _POOLS.values():
            old.shutdown()
        _POOLS.clear()
        pool = ProcessPool(resolved)
        _POOLS[key] = pool
        bump("procpool.created")
    if warm:
        pool.warm()
    return pool


def shutdown_pools() -> None:
    """Shut down every pool (atexit hook; also used by tests)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)


#: Whether :func:`install_signal_cleanup` already ran in this process.
_SIGNALS_INSTALLED = False


def install_signal_cleanup() -> bool:
    """Sweep pools (and their arena segments) on SIGINT/SIGTERM too.

    ``atexit`` covers normal interpreter exit and the worker-death
    error path covers crashes, but a long-lived service worker stopped
    with SIGTERM (or a ^C that unwinds past the atexit machinery) used
    to leave its mmap arena files behind.  The installed handler shuts
    every pool down — unlinking every segment — then re-delivers the
    signal through the previous handler (or the default action), so
    process semantics (exit status, KeyboardInterrupt) are preserved.

    Must run on the main thread (CPython restricts ``signal.signal``).
    Idempotent; returns False when the handlers were already installed.
    Called by the ``repro-serve``/``repro-worker`` entry points — plain
    CLI runs are short-lived and keep the lighter atexit-only story.
    """
    global _SIGNALS_INSTALLED
    if _SIGNALS_INSTALLED:
        return False
    import signal

    def _install(sig: int) -> None:
        previous = signal.getsignal(sig)

        def _handler(signum, frame):
            shutdown_pools()
            if callable(previous) and previous not in (
                    signal.SIG_IGN, signal.SIG_DFL):
                previous(signum, frame)
            else:
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)

        signal.signal(sig, _handler)

    for sig in (signal.SIGINT, signal.SIGTERM):
        _install(sig)
    _SIGNALS_INSTALLED = True
    return True
