"""Spawn-safe persistent process pool (the ``--backend process`` engine).

The thread backend (:mod:`repro.perf.parallel`) shares every memo table
but executes Python under one GIL, so CPU-bound phases — the mini-C
frontend and the taint fixpoints — serialize no matter how many workers
run.  This pool puts those phases on real cores:

- **spawn, not fork** — workers start from a clean interpreter, so the
  pool behaves identically on every platform and never inherits
  half-initialized locks or memo tables;
- **warm workers** — each worker imports the pipeline once and keeps
  its in-process memos and loaded corpus across tasks, so per-task cost
  is the task, not interpreter startup;
- **lean envelopes** — tasks cross the boundary as ``(handler name,
  small payload)``; results come back as compact
  :mod:`repro.perf.codec` blobs or tiny primitives, never whole IR
  modules;
- **per-worker task queues** — round-robin dispatch plus the ability to
  *broadcast* a control task to every worker (``pool.reset`` lets the
  cold benchmarks drop worker memos without respawning);
- **ordered merge** — :meth:`ProcessPool.run_ordered` returns results
  in submission order, the same contract as
  :func:`repro.perf.parallel.run_ordered`, so callers stay
  byte-identical regardless of completion order;
- **span handoff** — when tracing is enabled, each worker runs its task
  under a fresh :class:`~repro.obs.tracer.Tracer`, ships the finished
  spans back with the result, and the parent grafts them under the span
  that was open at fan-out time: one rooted tree per run, same as the
  thread backend.

Workers see the parent's ``REPRO_*`` environment (snapshotted at spawn)
and the pool is keyed by that snapshot — flip any knob and the next
:func:`get_pool` builds a fresh, consistent pool.  The pool registers
an ``atexit`` hook, so interactive callers never leak worker processes.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_mod
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracer
from repro.perf import modes
from repro.perf.parallel import resolve_jobs

#: Seconds between liveness checks while waiting on results.
_POLL_SECONDS = 0.25

#: Seconds to wait for workers to drain their queues on shutdown.
_SHUTDOWN_GRACE = 5.0


class ProcessPoolError(RuntimeError):
    """A worker died or the pool is unusable."""


# ---------------------------------------------------------------------------
# task handlers (executed in workers)
# ---------------------------------------------------------------------------
#
# Handlers are module-level so the spawned child resolves them by name
# after importing this module — no closures cross the process boundary.


def _h_ping(_payload: Any) -> str:
    """Liveness/warmup probe; imports the pipeline as a side effect."""
    import repro.analysis.extractor  # noqa: F401  (warm the import graph)

    return "pong"


def _h_reset(_payload: Any) -> str:
    """Drop the worker's in-memory state (memos + loaded units).

    Broadcast by cold benchmarks so a "cold" measurement over a warm
    pool really recomputes instead of serving worker memos.  The disk
    caches are left alone — cold benches isolate those via
    ``REPRO_CACHE_DIR``/``REPRO_NO_DISK_CACHE``.
    """
    from repro.corpus.loader import clear_cache

    clear_cache()
    return "reset"


def _h_compile(payload: Any) -> str:
    """Compile one corpus unit, warming the shared disk IR cache."""
    from repro.corpus.loader import load_unit

    (filename,) = payload
    load_unit(filename)
    return filename


def _h_extract_function(payload: Any) -> Tuple[bytes, Dict[str, Any]]:
    """Analyze one pre-selected function; returns (codec blob, graph records).

    Runs the exact memo → store → compute path of the thread backend
    (:meth:`repro.analysis.extractor.Extractor._analyze_one`), so store
    entries written by workers are the same entries the thread backend
    writes.  Graph records are drained and shipped back — the parent
    is the single flusher.
    """
    from repro.analysis.extractor import Extractor
    from repro.corpus import cache as disk
    from repro.perf import codec

    filename, fn_name, solver = payload
    extractor = Extractor(jobs=1, solver=solver)
    state, findings = extractor._analyze_one((filename, fn_name))
    return codec.dumps((state, findings)), disk.take_pending()


_HANDLERS: Dict[str, Callable[[Any], Any]] = {
    "pool.ping": _h_ping,
    "pool.reset": _h_reset,
    "corpus.compile": _h_compile,
    "extract.function": _h_extract_function,
}


def _worker_main(index: int, env: Dict[str, str], task_queue: Any,
                 result_queue: Any) -> None:
    """Worker loop: apply handlers to envelopes until the None sentinel."""
    # Re-assert the parent's REPRO_* snapshot: inherited environment is
    # already correct for spawn, this just makes the contract explicit
    # and immune to platform quirks.
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)
    while True:
        envelope = task_queue.get()
        if envelope is None:
            return
        seq, handler_name, payload, trace_requested = envelope
        spans: List[Dict[str, Any]] = []
        try:
            handler = _HANDLERS[handler_name]
            if trace_requested:
                local = tracer.Tracer(f"worker-{index}")
                with tracer.enabled(local):
                    result = handler(payload)
                spans = tracer.export_spans(local)
            else:
                result = handler(payload)
        except BaseException as exc:  # ship the failure, keep serving
            # mp.Queue pickles in a feeder thread, where a pickling
            # failure would silently drop the message and hang the
            # parent — so prove the exception picklable *here* and
            # degrade to a description when it is not.
            import pickle

            try:
                pickle.dumps(exc)
                shipped: BaseException = exc
            except Exception:
                shipped = ProcessPoolError(f"{type(exc).__name__}: {exc}")
            result_queue.put((seq, "err", shipped, spans))
            continue
        result_queue.put((seq, "ok", result, spans))


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


class ProcessPool:
    """A fixed set of warm spawn workers with ordered-merge dispatch."""

    def __init__(self, jobs: int) -> None:
        import multiprocessing as mp

        self.jobs = max(1, jobs)
        self.env = {k: v for k, v in os.environ.items()
                    if k.startswith("REPRO_")}
        self._ctx = mp.get_context("spawn")
        self._result_queue = self._ctx.Queue()
        self._task_queues = []
        self._workers = []
        self._seq = 0
        self._lock = threading.Lock()
        self._closed = False
        for index in range(self.jobs):
            task_queue = self._ctx.Queue()
            worker = self._ctx.Process(
                target=_worker_main,
                args=(index, self.env, task_queue, self._result_queue),
                daemon=True,
                name=f"repro-worker-{index}",
            )
            worker.start()
            self._task_queues.append(task_queue)
            self._workers.append(worker)

    # -- dispatch -------------------------------------------------------

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _collect(self, waiting: Dict[int, int]) -> Dict[int, Tuple[str, Any, list]]:
        """Pull results for every sequence id in ``waiting``."""
        results: Dict[int, Tuple[str, Any, list]] = {}
        while len(results) < len(waiting):
            try:
                seq, status, payload, spans = self._result_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue_mod.Empty:
                dead = [w.name for w in self._workers if not w.is_alive()]
                if dead:
                    raise ProcessPoolError(
                        f"worker(s) died while tasks were pending: {dead}"
                    ) from None
                continue
            if seq in waiting:
                results[seq] = (status, payload, spans)
            # else: a stale result from an abandoned batch; drop it.
        return results

    def run_ordered(self, calls: Sequence[Tuple[str, Any]]) -> List[Any]:
        """Run ``(handler name, payload)`` envelopes; results in call order.

        Dispatch is round-robin over the per-worker queues; the merge
        sorts by submission sequence, so ordering never depends on
        which worker finished first.  The first failing call (in
        submission order) re-raises its worker-side exception in the
        parent.  When tracing is enabled, worker spans graft under the
        span open at the time of this call.
        """
        if self._closed:
            raise ProcessPoolError("pool is shut down")
        if not calls:
            return []
        parent_span = tracer.capture()
        trace_requested = tracer.is_enabled()
        waiting: Dict[int, int] = {}
        order: List[int] = []
        for index, (handler_name, payload) in enumerate(calls):
            seq = self._next_seq()
            waiting[seq] = index
            order.append(seq)
            self._task_queues[index % self.jobs].put(
                (seq, handler_name, payload, trace_requested)
            )
        results = self._collect(waiting)
        active = tracer.active()
        out: List[Any] = []
        for seq in order:
            status, payload, spans = results[seq]
            if active is not None and spans:
                tracer.graft(spans, active, parent_span)
            if status == "err":
                raise payload
            out.append(payload)
        return out

    def broadcast(self, handler_name: str, payload: Any = None) -> List[Any]:
        """Run one control task on *every* worker; results in worker order."""
        if self._closed:
            raise ProcessPoolError("pool is shut down")
        waiting: Dict[int, int] = {}
        order: List[int] = []
        for index in range(self.jobs):
            seq = self._next_seq()
            waiting[seq] = index
            order.append(seq)
            self._task_queues[index].put((seq, handler_name, payload, False))
        results = self._collect(waiting)
        out = []
        for seq in order:
            status, result, _spans = results[seq]
            if status == "err":
                raise result
            out.append(result)
        return out

    def warm(self) -> None:
        """Block until every worker has imported the pipeline."""
        self.broadcast("pool.ping")

    def reset_workers(self) -> None:
        """Drop all worker in-memory memos (cold-measurement support)."""
        self.broadcast("pool.reset")

    # -- lifecycle ------------------------------------------------------

    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return not self._closed and all(w.is_alive() for w in self._workers)

    def shutdown(self) -> None:
        """Stop the workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:
                pass
        for worker in self._workers:
            worker.join(timeout=_SHUTDOWN_GRACE)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=_SHUTDOWN_GRACE)
        for task_queue in self._task_queues:
            task_queue.close()
        self._result_queue.close()


# ---------------------------------------------------------------------------
# module-global pool reuse
# ---------------------------------------------------------------------------

#: (jobs, REPRO_* snapshot) -> the live pool.  One consistent pool per
#: configuration; flipping an engine knob or the cache/corpus dir makes
#: the old pool unreachable (and shut down) rather than subtly stale.
_POOLS: Dict[Tuple[int, Tuple[Tuple[str, str], ...]], ProcessPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(jobs: Optional[int] = None, warm: bool = True) -> ProcessPool:
    """The shared pool for the current configuration (created on demand).

    ``jobs`` resolves through :func:`repro.perf.parallel.resolve_jobs`.
    A configuration change (any ``REPRO_*`` variable, or a different
    job count) shuts the old pool down and builds a fresh one — workers
    must agree with the parent on every knob, cache path, and corpus
    location or ordered-merge identity would quietly break.
    """
    resolved = resolve_jobs(jobs)
    key = (resolved, modes.env_signature())
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and pool.alive():
            return pool
        # Retire every other configuration: workers with a stale
        # environment can only produce stale answers.
        for old in _POOLS.values():
            old.shutdown()
        _POOLS.clear()
        pool = ProcessPool(resolved)
        _POOLS[key] = pool
    if warm:
        pool.warm()
    return pool


def shutdown_pools() -> None:
    """Shut down every pool (atexit hook; also used by tests)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)
