"""Hash-consed (interned) label-set lattice with a memoized binary join.

The taint solver's domain is "finite sets of labels ordered by
inclusion".  The dense engine allocated a fresh ``frozenset`` on every
transfer and compared by content; at fixpoint scale that is the hot
allocation site of the whole analysis.  This module interns the sets:

- :func:`intern_labels` returns one canonical object per distinct set
  content, so equal sets *are* the same object and "did this transfer
  change anything" degrades to a pointer comparison;
- :func:`join` unions two canonical sets through a memo table keyed by
  object identity, so the joins the fixpoint recomputes over and over
  (the same pair of operand sets meeting at the same instruction) cost
  one dict probe instead of a set union.

Identity keys are safe because the intern table pins every canonical
set alive for the lifetime of the table: an ``id`` can never be
recycled while it is a memo key.  The two tables therefore always clear
*together* (registered as one memo under ``perf.clear_memos``).

Interning takes a small lock so racing workers agree on one canonical
object per content (the solver's change detection relies on identity).
The hit/miss tallies are deliberately unlocked — they are diagnostics,
and a lost increment under thread races is acceptable where a lock on
the join fast path is not.

``$REPRO_LATTICE`` selects between two modes:

- ``intern`` (default) — the hash-consed lattice described above;
- ``plain`` — the legacy allocation behaviour this PR replaced: every
  join builds a fresh ``frozenset`` and callers compare by content.
  It exists so the cold-path benchmark can measure the dense baseline
  as it actually was, and as a differential check that interning is
  purely an optimization.

Both modes produce content-identical label sets; only object identity
and allocation behaviour differ.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, TypeVar

L = TypeVar("L")

from repro.perf import modes as engine_modes

#: Environment knob selecting the lattice implementation.
LATTICE_ENV = engine_modes.knob("lattice").env

#: Recognized lattice modes (first is the default).
LATTICE_MODES = engine_modes.knob("lattice").modes


def resolve_lattice_mode(explicit: Optional[str] = None) -> str:
    """The mode to use: ``explicit`` arg, else $REPRO_LATTICE, else intern."""
    return engine_modes.resolve_mode("lattice", explicit)

_LOCK = threading.Lock()

#: content -> the canonical frozenset for that content.
_INTERN: Dict[FrozenSet, FrozenSet] = {}

#: (id(a), id(b)) of canonical sets -> canonical a | b.
_JOIN: Dict[Tuple[int, int], FrozenSet] = {}

#: The canonical empty set (also the lattice bottom).
EMPTY: FrozenSet = frozenset()
_INTERN[EMPTY] = EMPTY

# Unlocked diagnostic tallies (see module docstring).
_HITS = {"intern.hit": 0, "intern.miss": 0, "join.hit": 0, "join.miss": 0}


def _intern_labels_interned(labels: Iterable[L]) -> FrozenSet[L]:
    """The canonical frozenset whose content equals ``labels``."""
    content = labels if isinstance(labels, frozenset) else frozenset(labels)
    canonical = _INTERN.get(content)
    if canonical is not None:
        _HITS["intern.hit"] += 1
        return canonical
    with _LOCK:
        canonical = _INTERN.setdefault(content, content)
    _HITS["intern.miss"] += 1
    return canonical


def _join_interned(a: FrozenSet[L], b: FrozenSet[L]) -> FrozenSet[L]:
    """Canonical ``a | b`` for two *canonical* sets (memoized)."""
    if a is b:
        return a
    if not a:
        return b
    if not b:
        return a
    key = (id(a), id(b))
    merged = _JOIN.get(key)
    if merged is not None:
        _HITS["join.hit"] += 1
        return merged
    merged = _intern_labels_interned(a | b)
    _JOIN[key] = merged
    _HITS["join.miss"] += 1
    return merged


def _intern_labels_plain(labels: Iterable[L]) -> FrozenSet[L]:
    """Legacy behaviour: a frozenset of the content, nothing shared."""
    return labels if isinstance(labels, frozenset) else frozenset(labels)


def _join_plain(a: FrozenSet[L], b: FrozenSet[L]) -> FrozenSet[L]:
    """Legacy behaviour: a fresh union allocation on every join."""
    if not a:
        return b
    if not b:
        return a
    return a | b


#: The active implementations; rebind through :func:`apply_mode` only.
intern_labels = _intern_labels_interned
join = _join_interned
_MODE = "intern"


def mode() -> str:
    """The active lattice mode ('intern' or 'plain')."""
    return _MODE


def apply_mode(new_mode: Optional[str] = None) -> str:
    """Switch the active implementations; returns the mode applied.

    ``None`` re-reads ``$REPRO_LATTICE``.  Rebinding module attributes
    is atomic under the GIL, and every caller accesses the functions
    through the module, so the switch takes effect immediately.  The
    tables are left alone — stale canonical sets stay content-correct
    in plain mode, and interned mode re-fills them on demand.
    """
    global _MODE, intern_labels, join
    resolved = resolve_lattice_mode(new_mode)
    if resolved != _MODE:
        if resolved == "plain":
            intern_labels = _intern_labels_plain
            join = _join_plain
        else:
            intern_labels = _intern_labels_interned
            join = _join_interned
        _MODE = resolved
    return resolved


def is_interned(labels: FrozenSet) -> bool:
    """Whether ``labels`` is the canonical object for its content."""
    return _INTERN.get(labels) is labels


def table_sizes() -> Tuple[int, int]:
    """(intern entries, join entries) — table footprint right now."""
    return len(_INTERN), len(_JOIN)


def counters() -> Dict[str, int]:
    """Diagnostic tallies, namespaced for the profile rendering.

    Empty while the tallies are zero, so an idle (or freshly reset)
    process still reports an empty counter snapshot.  Table footprint
    is state rather than profile data — ask :func:`table_sizes`.
    """
    if not any(_HITS.values()):
        return {}
    return {f"lattice.{name}": count for name, count in _HITS.items()}


def reset_tallies() -> None:
    """Zero the diagnostic tallies (the tables themselves survive)."""
    for name in _HITS:
        _HITS[name] = 0


def hit_rate(kind: str = "join") -> float:
    """Memo hit rate in [0, 1] for ``kind`` ('join' or 'intern')."""
    hits = _HITS[f"{kind}.hit"]
    misses = _HITS[f"{kind}.miss"]
    total = hits + misses
    return hits / total if total else 0.0


def clear() -> None:
    """Drop both tables (and re-seat EMPTY) plus the tallies."""
    with _LOCK:
        _JOIN.clear()
        _INTERN.clear()
        _INTERN[EMPTY] = EMPTY
    reset_tallies()


# Registration with the perf memo registry and the profile counter
# sources happens in :mod:`repro.perf`'s __init__ (avoids an import
# cycle); the join table's identity keys point into the intern table,
# so the two tables always clear together through the single
# :func:`clear` callback.
