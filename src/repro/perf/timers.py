"""Phase timers and counters for the analysis pipeline.

Instrumentation is always on — one dict update per phase enter/exit is
far below the noise floor of the phases it measures — and thread-safe,
because the extractor fans scenarios and functions out across worker
threads.  ``repro-extract --profile`` prints the accumulated breakdown
via :func:`render_profile`.

Storage lives in the observability layer's metrics registry
(:data:`repro.obs.metrics.REGISTRY`): the functions here are thin
views over it, so ``--profile`` output, run manifests
(:mod:`repro.obs.manifest`), and span attributes all read the *same*
numbers.  Counter-source registration is keyed (idempotent — a
re-registration replaces, never double-counts) and snapshots copy the
source table under the registry lock before iterating.

Typical use::

    from repro.perf import timed, bump

    with timed("frontend.compile"):
        module = compile_c(source, filename)
    bump("cache.disk.miss")
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from repro.common.texttable import TextTable
from repro.obs.metrics import REGISTRY, PhaseStat

__all__ = [
    "PhaseStat",
    "bump",
    "counters",
    "hit_rates",
    "register_counter_source",
    "render_profile",
    "reset_profile",
    "stats",
    "timed",
]


def register_counter_source(source: Callable[[], Dict[str, int]],
                            reset: Optional[Callable[[], None]] = None,
                            name: Optional[str] = None) -> None:
    """Merge ``source()`` into every :func:`counters` snapshot.

    Registration is keyed by ``name`` (default: the source callable's
    module-qualified name), so registering the same source twice — a
    reloaded module, a re-initialised subsystem — replaces the old
    entry instead of double-counting every snapshot.  ``reset``, when
    given, is invoked by :func:`reset_profile` so the external tallies
    drop with everything else.
    """
    if name is None:
        name = (f"{getattr(source, '__module__', '?')}."
                f"{getattr(source, '__qualname__', repr(source))}")
    REGISTRY.register_source(name, source, reset)


@contextmanager
def timed(phase: str) -> Iterator[None]:
    """Accumulate the wall time of the ``with`` body under ``phase``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        REGISTRY.record_phase(phase, time.perf_counter() - start)


def bump(counter: str, amount: int = 1) -> None:
    """Increment the named counter."""
    REGISTRY.bump(counter, amount)


def stats() -> Dict[str, PhaseStat]:
    """Snapshot of the phase timings."""
    return REGISTRY.stats()


def counters() -> Dict[str, int]:
    """Snapshot of the counters (including registered sources)."""
    return REGISTRY.counters()


def reset_profile() -> None:
    """Drop all accumulated timings and counters."""
    REGISTRY.reset()


def render_profile(title: str = "pipeline profile") -> str:
    """Render phases and counters as one diff-friendly text block."""
    phase_table = TextTable(["phase", "calls", "total s", "mean ms"], title=title)
    phase_snapshot = stats()
    for name in sorted(phase_snapshot):
        stat = phase_snapshot[name]
        phase_table.add_row(name, stat.calls, f"{stat.seconds:.4f}",
                            f"{stat.mean_ms:.3f}")
    lines = [phase_table.render()]
    counter_snapshot = counters()
    if counter_snapshot:
        counter_table = TextTable(["counter", "count"])
        for name in sorted(counter_snapshot):
            counter_table.add_row(name, counter_snapshot[name])
        lines.append("")
        lines.append(counter_table.render())
    rates = hit_rates(counter_snapshot)
    if rates:
        rate_table = TextTable(["memo", "hit rate"])
        for name in sorted(rates):
            rate_table.add_row(name, f"{rates[name] * 100:.1f}%")
        lines.append("")
        lines.append(rate_table.render())
    return "\n".join(lines)


def hit_rates(counter_snapshot: Dict[str, int]) -> Dict[str, float]:
    """Hit rates derived from every ``<memo>.hit``/``<memo>.miss`` pair."""
    rates: Dict[str, float] = {}
    for name, hits in counter_snapshot.items():
        if not name.endswith(".hit"):
            continue
        base = name[: -len(".hit")]
        misses = counter_snapshot.get(f"{base}.miss")
        if misses is None:
            continue
        total = hits + misses
        if total:
            rates[base] = hits / total
    return rates
