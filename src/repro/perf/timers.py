"""Phase timers and counters for the analysis pipeline.

Instrumentation is always on — one dict update per phase enter/exit is
far below the noise floor of the phases it measures — and thread-safe,
because the extractor fans scenarios and functions out across worker
threads.  ``repro-extract --profile`` prints the accumulated breakdown
via :func:`render_profile`.

Typical use::

    from repro.perf import timed, bump

    with timed("frontend.compile"):
        module = compile_c(source, filename)
    bump("cache.disk.miss")
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.texttable import TextTable


@dataclass
class PhaseStat:
    """Accumulated wall time of one named phase."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Mean wall time per call, in milliseconds."""
        if not self.calls:
            return 0.0
        return self.seconds / self.calls * 1e3


_LOCK = threading.Lock()
_STATS: Dict[str, PhaseStat] = {}
_COUNTERS: Dict[str, int] = {}

#: (snapshot, reset) pairs for subsystems with their own (cheaper,
#: lock-free) tallies — they show up in ``--profile`` output without
#: funnelling every increment through the global lock, and
#: :func:`reset_profile` zeroes them alongside the built-in counters.
#: The solver's lattice registers here.
_COUNTER_SOURCES: List[Tuple[Callable[[], Dict[str, int]],
                             Optional[Callable[[], None]]]] = []


def register_counter_source(source: Callable[[], Dict[str, int]],
                            reset: Optional[Callable[[], None]] = None) -> None:
    """Merge ``source()`` into every :func:`counters` snapshot.

    ``reset``, when given, is invoked by :func:`reset_profile` so the
    external tallies drop with everything else.
    """
    _COUNTER_SOURCES.append((source, reset))


@contextmanager
def timed(phase: str) -> Iterator[None]:
    """Accumulate the wall time of the ``with`` body under ``phase``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        with _LOCK:
            stat = _STATS.setdefault(phase, PhaseStat())
            stat.calls += 1
            stat.seconds += elapsed


def bump(counter: str, amount: int = 1) -> None:
    """Increment the named counter."""
    with _LOCK:
        _COUNTERS[counter] = _COUNTERS.get(counter, 0) + amount


def stats() -> Dict[str, PhaseStat]:
    """Snapshot of the phase timings."""
    with _LOCK:
        return {name: PhaseStat(s.calls, s.seconds) for name, s in _STATS.items()}


def counters() -> Dict[str, int]:
    """Snapshot of the counters (including registered sources)."""
    with _LOCK:
        out = dict(_COUNTERS)
    for source, _reset in _COUNTER_SOURCES:
        out.update(source())
    return out


def reset_profile() -> None:
    """Drop all accumulated timings and counters."""
    with _LOCK:
        _STATS.clear()
        _COUNTERS.clear()
    for _source, reset in _COUNTER_SOURCES:
        if reset is not None:
            reset()


def render_profile(title: str = "pipeline profile") -> str:
    """Render phases and counters as one diff-friendly text block."""
    phase_table = TextTable(["phase", "calls", "total s", "mean ms"], title=title)
    phase_snapshot = stats()
    for name in sorted(phase_snapshot):
        stat = phase_snapshot[name]
        phase_table.add_row(name, stat.calls, f"{stat.seconds:.4f}",
                            f"{stat.mean_ms:.3f}")
    lines = [phase_table.render()]
    counter_snapshot = counters()
    if counter_snapshot:
        counter_table = TextTable(["counter", "count"])
        for name in sorted(counter_snapshot):
            counter_table.add_row(name, counter_snapshot[name])
        lines.append("")
        lines.append(counter_table.render())
    rates = hit_rates(counter_snapshot)
    if rates:
        rate_table = TextTable(["memo", "hit rate"])
        for name in sorted(rates):
            rate_table.add_row(name, f"{rates[name] * 100:.1f}%")
        lines.append("")
        lines.append(rate_table.render())
    return "\n".join(lines)


def hit_rates(counter_snapshot: Dict[str, int]) -> Dict[str, float]:
    """Hit rates derived from every ``<memo>.hit``/``<memo>.miss`` pair."""
    rates: Dict[str, float] = {}
    for name, hits in counter_snapshot.items():
        if not name.endswith(".hit"):
            continue
        base = name[: -len(".hit")]
        misses = counter_snapshot.get(f"{base}.miss")
        if misses is None:
            continue
        total = hits + misses
        if total:
            rates[base] = hits / total
    return rates
