"""Deterministic, seeded configuration sampling over a param registry.

Campaign-scale checking (ROADMAP item 3) needs configuration *sets*, not
hand-enumerated lists: this module turns a
:class:`repro.ecosystem.params.ParamRegistry` into a finite sampling
space and provides three generator families from "A Comparison of 10
Sampling Algorithms for Configurable Systems" (arXiv 1602.02052):

- :class:`RandomSampler` — seeded uniform sampling.  Each configuration
  is derived from ``(seed, index)`` through a counter-based splitmix64
  stream, so config ``i`` is the same no matter which shard generates it
  or how many configs came before — the property that lets a sharded
  campaign regenerate any slice in O(slice) without materializing the
  whole campaign.
- :class:`TWiseSampler` — greedy IPOG-style covering arrays (``t=2`` is
  pairwise): every value combination of every ``t`` parameters appears
  in at least one sampled config.  Construction is deterministic
  (horizontal extension picks the first best value, vertical extension
  fills don't-cares from the seeded stream).
- :class:`FeasibleSampler` — wraps either of the above and skips
  configurations that violate *extracted* dependencies (feature
  requires/conflicts and value ranges from the Table-5 extraction), the
  dependency-aware strategy: configs mkfs would reject are never driven.

All samplers expose the same surface: ``total()`` (how many configs the
campaign drives), ``iter_range(lo, hi)`` (regenerate global config
indices ``[lo, hi)``), and ``shard_hints(ranges)`` (per-shard resume
state so no shard pays more than its own slice — the feasible scan is
done once, here, not once per shard).

Python's :class:`random.Random` is deliberately not used for the
counter-based streams: splitmix64 is a few integer ops per draw, has no
624-word init cost per config, and its output is bit-stable across
platforms and Python versions by construction.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.ecosystem.params import ConfigParam, ParamKind, ParamRegistry

#: One sampled configuration: a value per domain, in domain order.
Assignment = Tuple[object, ...]

_M64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_INDEX_STRIDE = 0xD1B54A32D192ED03


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: one 64-bit state to one output word."""
    x &= _M64
    x = ((x ^ (x >> 30)) * _MIX_A) & _M64
    x = ((x ^ (x >> 27)) * _MIX_B) & _M64
    return x ^ (x >> 31)


class Stream:
    """A splitmix64 draw stream for one ``(seed, index)`` pair."""

    __slots__ = ("_state",)

    def __init__(self, seed: int, index: int) -> None:
        # Decorrelate the two inputs with distinct odd constants so
        # (seed, index) and (seed+1, index-1) do not collide.
        self._state = (seed * _GOLDEN + index * _INDEX_STRIDE) & _M64

    def next_word(self) -> int:
        self._state = (self._state + _GOLDEN) & _M64
        return _mix64(self._state)

    def pick(self, values: Sequence[object]) -> object:
        """A deterministic element of ``values`` (len << 2^64, so the
        modulo bias is far below anything a campaign could observe)."""
        return values[self.next_word() % len(values)]


class Domain:
    """One sampleable parameter: a name and its finite probe values."""

    __slots__ = ("name", "component", "values")

    def __init__(self, name: str, component: str,
                 values: Tuple[object, ...]) -> None:
        if not values:
            raise ValueError(f"domain {name!r} has no values")
        self.name = name
        self.component = component
        self.values = values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self.component}.{self.name}, {self.values!r})"


def _probe_values(param: ConfigParam) -> Optional[Tuple[object, ...]]:
    """The finite probe set for one registry param, or ``None`` to skip.

    Booleans and features probe both states, enums probe every choice,
    and bounded numerics probe the boundary values plus the default —
    the places the paper's value-range dependencies bite.  Free-form
    strings and UUIDs have no finite domain and are skipped.
    """
    if param.kind in (ParamKind.FLAG, ParamKind.FEATURE):
        return (False, True)
    if param.kind is ParamKind.ENUM:
        return tuple(param.choices or ())
    if param.kind in (ParamKind.INT, ParamKind.SIZE):
        probes = []
        for value in (param.min_value, param.default, param.max_value):
            if isinstance(value, int) and value not in probes:
                probes.append(value)
        return tuple(sorted(probes)) if probes else None
    return None


class ConfigSpace:
    """A finite sampling space derived from a param registry."""

    def __init__(self, domains: Sequence[Domain]) -> None:
        if not domains:
            raise ValueError("a config space needs at least one domain")
        self.domains: Tuple[Domain, ...] = tuple(domains)
        self._index = {d.name: i for i, d in enumerate(self.domains)}

    @classmethod
    def from_registry(cls, registry: ParamRegistry,
                      components: Optional[Sequence[str]] = None,
                      probe_overrides: Optional[
                          Dict[str, Tuple[object, ...]]] = None,
                      ) -> "ConfigSpace":
        """Build the space from a registry, in registration order.

        ``components`` restricts which ecosystem components contribute
        params; ``probe_overrides`` replaces the derived probe set for a
        named param (e.g. capping ``blocksize`` probes so a sampled
        device stays small).
        """
        overrides = probe_overrides or {}
        wanted = set(components) if components is not None else None
        domains: List[Domain] = []
        for param in registry:
            if wanted is not None and param.component not in wanted:
                continue
            values = overrides.get(param.name, _probe_values(param))
            if values:
                domains.append(Domain(param.name, param.component,
                                      tuple(values)))
        return cls(domains)

    def __len__(self) -> int:
        return len(self.domains)

    def index_of(self, name: str) -> int:
        return self._index[name]

    def assignment_dict(self, assignment: Assignment) -> Dict[str, object]:
        """``name -> value`` view of one assignment."""
        return {d.name: v for d, v in zip(self.domains, assignment)}

    def combinations(self) -> int:
        """Size of the full cartesian space (for coverage reporting)."""
        size = 1
        for domain in self.domains:
            size *= len(domain.values)
        return size


class ConstraintIndex:
    """Extracted dependencies, indexed for feasibility checks.

    ``requires``/``conflicts`` hold mke2fs feature-pair control
    dependencies, ``ranges`` the per-param value ranges — exactly the
    index :class:`~repro.tools.conbugck.ConBugCk` uses for guided
    generation, factored out so samplers and shard workers can consult
    it without constructing a checker.
    """

    def __init__(self,
                 requires: Sequence[Tuple[str, str]] = (),
                 conflicts: Sequence[Tuple[str, str]] = (),
                 ranges: Optional[Dict[str, Tuple[Optional[int],
                                                  Optional[int]]]] = None,
                 ) -> None:
        self.requires: List[Tuple[str, str]] = [tuple(p) for p in requires]
        self.conflicts: List[Tuple[str, str]] = [tuple(p) for p in conflicts]
        self.ranges: Dict[str, Tuple[Optional[int], Optional[int]]] = {
            name: (lo, hi) for name, (lo, hi) in (ranges or {}).items()}

    @classmethod
    def from_dependencies(cls, dependencies: Sequence[object],
                          ) -> "ConstraintIndex":
        """Index a validated dependency list (Table-5 output)."""
        from repro.analysis.model import SubKind
        from repro.ecosystem.featureset import all_feature_names

        feature_names = set(all_feature_names())
        index = cls()
        for dep in dependencies:
            if dep.kind is SubKind.CPD_CONTROL and \
                    dep.params[0].component == "mke2fs":
                a, b = dep.params[0].name, dep.params[-1].name
                if a in feature_names and b in feature_names:
                    relation = dep.constraint_dict.get("relation")
                    if relation == "requires":
                        index.requires.append((a, b))
                    else:
                        index.conflicts.append((a, b))
            elif dep.kind is SubKind.SD_VALUE_RANGE and \
                    dep.params[0].component == "mke2fs":
                cdict = dep.constraint_dict
                index.ranges[dep.params[0].name] = (
                    cdict.get("min"), cdict.get("max"))
        return index

    def as_payload(self) -> Dict[str, object]:
        """A plain-container form that survives pickling to workers."""
        return {
            "requires": [list(p) for p in self.requires],
            "conflicts": [list(p) for p in self.conflicts],
            "ranges": {name: [lo, hi]
                       for name, (lo, hi) in self.ranges.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ConstraintIndex":
        return cls(requires=[tuple(p) for p in payload.get("requires", ())],
                   conflicts=[tuple(p) for p in payload.get("conflicts", ())],
                   ranges={name: (lo, hi) for name, (lo, hi)
                           in dict(payload.get("ranges", {})).items()})

    def feasible(self, space: ConfigSpace, assignment: Assignment) -> bool:
        """Whether an assignment satisfies every indexed dependency."""
        enabled: Set[str] = set()
        for domain, value in zip(space.domains, assignment):
            if value is True:
                enabled.add(domain.name)
            lo, hi = self.ranges.get(domain.name, (None, None))
            if isinstance(value, int) and not isinstance(value, bool):
                if lo is not None and value < lo:
                    return False
                if hi is not None and value > hi:
                    return False
        for a, b in self.requires:
            if a in enabled and b not in enabled:
                return False
        for a, b in self.conflicts:
            if a in enabled and b in enabled:
                return False
        return True


class RandomSampler:
    """Seeded uniform sampling with counter-based regeneration."""

    def __init__(self, space: ConfigSpace, seed: int, budget: int) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.space = space
        self.seed = seed
        self.budget = budget
        self.name = "random"

    def total(self) -> int:
        return self.budget

    def assignment_at(self, index: int) -> Assignment:
        stream = Stream(self.seed, index)
        return tuple(stream.pick(d.values) for d in self.space.domains)

    def iter_range(self, lo: int, hi: int,
                   hint: Optional[object] = None,
                   ) -> Iterator[Tuple[int, Assignment]]:
        for index in range(lo, min(hi, self.budget)):
            yield index, self.assignment_at(index)

    def shard_hints(self, ranges: Sequence[Tuple[int, int]]) -> List[object]:
        return [None for _ in ranges]


class TWiseSampler:
    """Greedy IPOG-style t-wise covering array over the space.

    Parameters are processed in decreasing domain-size order (the
    classic IPOG ordering, which keeps the array short); rows are
    emitted in the space's own domain order.  Horizontal extension
    assigns each existing row the first value covering the most
    uncovered t-tuples; vertical extension adds rows for the remainder,
    reusing don't-care slots where possible and filling leftover
    don't-cares from the seeded stream.  The construction touches every
    t-subset of parameters, so cost grows as C(n, t) — ``t=2`` over the
    full Ext4 registry is fast, ``t=3`` is minutes, higher t wants a
    component-restricted space.
    """

    def __init__(self, space: ConfigSpace, t: int, seed: int,
                 budget: Optional[int] = None) -> None:
        if t < 2:
            raise ValueError(f"t-wise strength must be >= 2, got {t}")
        if t > len(space):
            raise ValueError(
                f"t={t} exceeds the space's {len(space)} parameters")
        self.space = space
        self.t = t
        self.seed = seed
        self.budget = budget
        self.name = "pairwise" if t == 2 else f"twise:{t}"
        self._rows: Optional[List[Assignment]] = None

    # -- construction --------------------------------------------------

    def _build(self) -> List[Assignment]:
        if self._rows is not None:
            return self._rows
        order = sorted(range(len(self.space)),
                       key=lambda i: (-len(self.space.domains[i].values), i))
        domains = [self.space.domains[i].values for i in order]
        t = self.t
        # Seed rows: the full product of the first t (largest) domains.
        rows: List[List[Optional[object]]] = [
            list(combo) for combo in product(*domains[:t])]
        for k in range(t, len(domains)):
            # Every t-tuple involving param k: ((earlier positions...),
            # (their values... , k's value)).
            uncovered: Set[Tuple[Tuple[int, ...], Tuple[object, ...]]] = set()
            for combo in combinations(range(k), t - 1):
                for vals in product(*(domains[i] for i in combo)):
                    for vk in domains[k]:
                        uncovered.add((combo, vals + (vk,)))
            # Horizontal: give every existing row a value for param k,
            # picking the first value that covers the most open tuples.
            combos = list(combinations(range(k), t - 1))
            for row in rows:
                row.append(None)
                best_value, best_gain = domains[k][0], -1
                for value in domains[k]:
                    gain = 0
                    for combo in combos:
                        key = (combo,
                               tuple(row[i] for i in combo) + (value,))
                        if key in uncovered:
                            gain += 1
                    if gain > best_gain:
                        best_value, best_gain = value, gain
                row[k] = best_value
                for combo in combos:
                    uncovered.discard(
                        (combo, tuple(row[i] for i in combo) + (row[k],)))
            # Vertical: place leftovers into don't-care slots, adding
            # fresh rows only when nothing fits.
            for combo, values in sorted(uncovered, key=repr):
                placed = False
                for row in rows:
                    if row[k] is not None and row[k] != values[-1]:
                        continue
                    if all(row[i] is None or row[i] == v
                           for i, v in zip(combo, values[:-1])):
                        for i, v in zip(combo, values[:-1]):
                            row[i] = v
                        row[k] = values[-1]
                        placed = True
                        break
                if not placed:
                    fresh: List[Optional[object]] = [None] * (k + 1)
                    for i, v in zip(combo, values[:-1]):
                        fresh[i] = v
                    fresh[k] = values[-1]
                    rows.append(fresh)
        # Fill don't-cares deterministically and restore domain order.
        finished: List[Assignment] = []
        for rowno, row in enumerate(rows):
            stream = Stream(self.seed, rowno)
            padded = row + [None] * (len(domains) - len(row))
            full = [v if v is not None else stream.pick(domains[i])
                    for i, v in enumerate(padded)]
            emitted: List[object] = [None] * len(domains)
            for pos, orig in enumerate(order):
                emitted[orig] = full[pos]
            finished.append(tuple(emitted))
        self._rows = finished
        return finished

    # -- sampler surface ----------------------------------------------

    def total(self) -> int:
        rows = self._build()
        if self.budget is not None:
            return min(self.budget, len(rows))
        return len(rows)

    def iter_range(self, lo: int, hi: int,
                   hint: Optional[object] = None,
                   ) -> Iterator[Tuple[int, Assignment]]:
        rows = self._build()
        for index in range(lo, min(hi, self.total())):
            yield index, rows[index]

    def shard_hints(self, ranges: Sequence[Tuple[int, int]]) -> List[object]:
        return [None for _ in ranges]


class FeasibleSampler:
    """Dependency-aware wrapper: only feasible configs are emitted.

    Config index ``j`` of this sampler is the ``j``-th config of the
    wrapped sampler that satisfies the constraint index.  ``total()``
    performs the (single) filtering scan; ``shard_hints`` hands each
    shard the inner index where its slice starts, so regenerating a
    shard costs O(shard's own raw window), not O(campaign).
    """

    def __init__(self, inner, constraints: ConstraintIndex) -> None:
        self.inner = inner
        self.space = inner.space
        self.constraints = constraints
        self.name = inner.name + "+feasible"
        self.seed = inner.seed
        self.budget = getattr(inner, "budget", None)
        #: Raw configs rejected by the constraint check during the scan.
        self.skipped = 0
        self._feasible_total: Optional[int] = None
        self._starts: Optional[List[int]] = None

    def _scan(self) -> None:
        """One pass over the inner stream, recording feasible count and
        the inner index at which each feasible config occurs (compactly:
        only counts and a start-index table on demand)."""
        if self._feasible_total is not None:
            return
        starts: List[int] = []
        feasible = 0
        skipped = 0
        inner_total = self.inner.total()
        want = self.budget if self.budget is not None else inner_total
        for raw_index, assignment in self.inner.iter_range(0, inner_total):
            if self.constraints.feasible(self.space, assignment):
                starts.append(raw_index)
                feasible += 1
                if feasible >= want:
                    break
            else:
                skipped += 1
        self._starts = starts
        self._feasible_total = feasible
        self.skipped = skipped

    def total(self) -> int:
        self._scan()
        return self._feasible_total or 0

    def iter_range(self, lo: int, hi: int,
                   hint: Optional[object] = None,
                   ) -> Iterator[Tuple[int, Assignment]]:
        """Feasible configs ``[lo, hi)``; ``hint`` is the inner start
        index (from :meth:`shard_hints`) that avoids rescanning."""
        if hint is None:
            self._scan()
            starts = self._starts or []
            if lo >= len(starts):
                return
            raw_start = starts[lo]
        else:
            raw_start = int(hint)
        emitted = lo
        inner_total = self.inner.total()
        for raw_index, assignment in self.inner.iter_range(raw_start,
                                                           inner_total):
            if emitted >= hi:
                return
            if self.constraints.feasible(self.space, assignment):
                yield emitted, assignment
                emitted += 1
            else:
                self.skipped += 1

    def shard_hints(self, ranges: Sequence[Tuple[int, int]]) -> List[object]:
        self._scan()
        starts = self._starts or []
        return [starts[lo] if lo < len(starts) else self.inner.total()
                for lo, _hi in ranges]


def parse_sample_spec(text: str) -> Tuple[str, Optional[int], bool]:
    """Parse a ``--sample`` value into ``(kind, t, feasible)``.

    Accepted forms: ``random``, ``pairwise``, ``twise:<t>``, each with
    an optional ``+feasible`` suffix for dependency-aware filtering.
    """
    spec = text.strip().lower()
    feasible = spec.endswith("+feasible")
    if feasible:
        spec = spec[:-len("+feasible")]
    if spec == "random":
        return "random", None, feasible
    if spec == "pairwise":
        return "twise", 2, feasible
    if spec.startswith("twise:"):
        try:
            t = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"malformed t-wise strength in {text!r}")
        if t < 2:
            raise ValueError(f"t-wise strength must be >= 2, got {t}")
        return "twise", t, feasible
    raise ValueError(
        f"unknown sampler {text!r} (expected random, pairwise, twise:<t>, "
        f"optionally +feasible)")


def make_sampler(space: ConfigSpace, kind: str, seed: int,
                 budget: Optional[int],
                 t: Optional[int] = None,
                 constraints: Optional[ConstraintIndex] = None):
    """Construct a sampler from parsed spec parts."""
    if kind == "random":
        if budget is None:
            raise ValueError("random sampling needs an explicit --budget")
        sampler = RandomSampler(space, seed, budget)
    elif kind == "twise":
        sampler = TWiseSampler(space, t or 2, seed, budget)
    else:
        raise ValueError(f"unknown sampler kind {kind!r}")
    if constraints is not None:
        return FeasibleSampler(sampler, constraints)
    return sampler


class OptionSweepSampler:
    """The mount-option draw ConBugCk's campaign sweeps are built on.

    Draws one option string per config: with probability
    ``violate_rate`` a choice from the (finite, hand-enumerated)
    violating pool, otherwise a guided sample for the base's feature
    set.  The pool is a hard cap on distinct violating options — a sweep
    can never surface more than ``len(pool)`` distinct violations no
    matter its size; callers wanting breadth must grow the pool or
    lower ``violate_rate``.  Consumes the shared ``rng`` strictly
    sequentially, preserving ConBugCk's historical draw order so
    pre-existing seeds reproduce byte-identical sweeps.
    """

    def __init__(self, rng, pool: Sequence[str], violate_rate: float,
                 guided: Callable[[Set[str]], str]) -> None:
        if not pool:
            raise ValueError("option sweep needs a non-empty violating pool")
        self.rng = rng
        self.pool = tuple(pool)
        self.violate_rate = violate_rate
        self.guided = guided

    @property
    def distinct_violations_cap(self) -> int:
        """Most distinct violating options any sweep of this pool can
        contain (the documented pool-size cap)."""
        return len(self.pool)

    def draw(self, features: Set[str]) -> str:
        if self.rng.random() < self.violate_rate:
            return self.rng.choice(self.pool)
        return self.guided(features)
