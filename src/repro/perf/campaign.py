"""Campaign execution engine: parallel, snapshot-cloning checker runs.

The paper's checkers earn their value at scale — thousands of driven
configurations — and a campaign spends most of its serial time
re-running the simulated mkfs for configurations that share the exact
same on-disk format.  This module provides the two pieces that make
campaigns fast without changing a single result:

- :class:`SnapshotCache` — a post-mkfs image snapshot cache.  The
  simulated mkfs is fully deterministic (even the UUID derives from the
  geometry), so configurations sharing the same mkfs-relevant tuple
  produce byte-identical fresh images.  The cache formats once per
  tuple, stores a *sparse* snapshot (only the blocks mkfs actually
  wrote — a fresh device is all zeroes), and stamps every later request
  onto a brand-new device.  Each driven configuration still gets its own
  :class:`~repro.fsimage.blockdev.BlockDevice`; no mutable state is ever
  shared across campaign workers.  Deterministic mkfs *failures* are
  cached too, so a tuple that mkfs rejects is rejected from the cache
  with the identical error.

- :func:`run_campaign` — deterministic parallel fan-out over the
  ``--jobs``/``REPRO_JOBS`` thread pool.  Items are split into
  contiguous chunks (cheap on pools much smaller than the campaign) and
  results are merged back in spec order, so a parallel campaign is
  byte-identical to a sequential one.  Configuration *generation* stays
  strictly sequential in the checkers — only the driving fans out.

Counters: ``campaign.snapshot.hit`` / ``campaign.snapshot.miss`` /
``campaign.items`` (see ``--profile`` on the checker CLIs).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.errors import ReproError
from repro.fsimage.blockdev import BlockDevice
from repro.obs.tracer import span
from repro.perf.parallel import resolve_jobs, run_ordered
from repro.perf.timers import bump, timed

T = TypeVar("T")
R = TypeVar("R")

#: Anything usable as a snapshot-cache key (must be hashable).
CacheKey = Tuple


class _Entry:
    """One cached mkfs outcome: a sparse image or a deterministic error."""

    __slots__ = ("num_blocks", "block_size", "chunks", "error")

    def __init__(self, num_blocks: int, block_size: int,
                 chunks: Optional[Tuple[Tuple[int, bytes], ...]],
                 error: Optional[ReproError]) -> None:
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.chunks = chunks
        self.error = error


class SnapshotCache:
    """Post-mkfs image snapshots, cloned instead of re-formatted.

    ``device_for`` either replays a cached outcome (clone the sparse
    snapshot onto a fresh device, or re-raise the cached rejection) or
    runs ``build`` cold and caches what it did.  Thread-safe: the entry
    table is lock-protected, and a racing double-build of the same key
    is harmless because the builder is deterministic — both threads
    compute identical snapshots and the second store is a no-op.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[CacheKey, _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def device_for(self, key: CacheKey, num_blocks: int, block_size: int,
                   build: Callable[[BlockDevice], None],
                   track_io: bool = True) -> BlockDevice:
        """A fresh device holding the image that ``build`` produces.

        ``build`` receives a zeroed device and must format it (raising
        :class:`ReproError` on rejection).  Every call returns an
        independent device — mutating it never leaks into the cache.
        """
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            bump("campaign.snapshot.hit")
            if entry.error is not None:
                raise entry.error
            dev = BlockDevice(entry.num_blocks, entry.block_size,
                              track_io=track_io)
            bs = entry.block_size
            for blockno, data in entry.chunks:
                dev.write_bytes(blockno * bs, data)
            return dev
        bump("campaign.snapshot.miss")
        dev = BlockDevice(num_blocks, block_size, track_io=track_io)
        try:
            with span("campaign.snapshot.build", blocks=num_blocks,
                      block_size=block_size):
                build(dev)
        except ReproError as exc:
            with self._lock:
                self._entries.setdefault(
                    key, _Entry(num_blocks, block_size, None, exc))
            raise
        entry = _Entry(num_blocks, block_size,
                       _sparse_snapshot(dev.snapshot(), block_size), None)
        with self._lock:
            self._entries.setdefault(key, entry)
        return dev


def _sparse_snapshot(snapshot: bytes,
                     block_size: int) -> Tuple[Tuple[int, bytes], ...]:
    """The non-zero runs of a snapshot, as ``(blockno, bytes)`` pairs.

    A freshly formatted image is overwhelmingly zeroes (mkfs writes a
    few dozen metadata blocks and leaves the data area untouched), and
    the restore target is a zeroed device, so dropping all-zero blocks
    is lossless and makes the clone a handful of slice writes instead of
    a device-sized copy.  Adjacent non-zero blocks coalesce into one
    run — mkfs metadata is mostly contiguous (superblock, descriptors,
    bitmaps, inode table), so a typical image restores in a few writes.
    """
    zero = bytes(block_size)
    runs: List[Tuple[int, bytes]] = []
    run_start = -1
    run_end = -1
    for blockno in range(len(snapshot) // block_size):
        if snapshot[blockno * block_size:(blockno + 1) * block_size] == zero:
            continue
        if blockno == run_end:
            run_end = blockno + 1
            continue
        if run_start >= 0:
            runs.append((run_start,
                         snapshot[run_start * block_size:run_end * block_size]))
        run_start, run_end = blockno, blockno + 1
    if run_start >= 0:
        runs.append((run_start,
                     snapshot[run_start * block_size:run_end * block_size]))
    return tuple(runs)


def run_campaign(worker: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None,
                 phase: str = "campaign.run") -> List[R]:
    """Run ``worker`` over every item; results stay in spec order.

    ``jobs`` resolves through :func:`repro.perf.parallel.resolve_jobs`
    (explicit count, else ``$REPRO_JOBS``, else sequential).  The
    parallel path splits the campaign into contiguous chunks — a few per
    worker, so per-item pool overhead does not swamp small items — and
    flattens chunk results back in submission order, which makes the
    output identical to ``jobs=1`` for any deterministic worker.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    bump("campaign.items", len(items))
    with span(phase, items=len(items), jobs=jobs), timed(phase):
        if jobs <= 1 or len(items) <= 1:
            return [worker(item) for item in items]
        nchunks = min(len(items), jobs * 4)
        size = (len(items) + nchunks - 1) // nchunks
        chunks = [items[i:i + size] for i in range(0, len(items), size)]
        chunk_results = run_ordered(
            jobs, lambda chunk: [worker(item) for item in chunk], chunks)
        return [result for chunk in chunk_results for result in chunk]
