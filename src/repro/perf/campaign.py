"""Campaign execution engine: parallel, snapshot-cloning checker runs.

The paper's checkers earn their value at scale — thousands of driven
configurations — and a campaign spends most of its serial time
re-running the simulated mkfs for configurations that share the exact
same on-disk format.  This module provides the two pieces that make
campaigns fast without changing a single result:

- :class:`SnapshotCache` — a post-mkfs image snapshot cache.  The
  simulated mkfs is fully deterministic (even the UUID derives from the
  geometry), so configurations sharing the same mkfs-relevant tuple
  produce byte-identical fresh images.  The cache formats once per
  tuple, stores a *sparse* snapshot (only the blocks mkfs actually
  wrote — a fresh device is all zeroes), and stamps every later request
  onto a brand-new device.  Each driven configuration still gets its own
  :class:`~repro.fsimage.blockdev.BlockDevice`; no mutable state is ever
  shared across campaign workers.  Deterministic mkfs *failures* are
  cached too, so a tuple that mkfs rejects is rejected from the cache
  with the identical error.

- :func:`run_campaign` — deterministic parallel fan-out over the
  ``--jobs``/``REPRO_JOBS`` thread pool.  Items are split into
  contiguous chunks (cheap on pools much smaller than the campaign) and
  results are merged back in spec order, so a parallel campaign is
  byte-identical to a sequential one.  Configuration *generation* stays
  strictly sequential in the checkers — only the driving fans out.

Counters: ``campaign.snapshot.hit`` / ``campaign.snapshot.miss`` /
``campaign.items`` (see ``--profile`` on the checker CLIs).
"""

from __future__ import annotations

import hashlib
import importlib
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple, TypeVar, Union

from repro.errors import ReproError
from repro.fsimage.blockdev import BlockDevice
from repro.obs.tracer import span
from repro.perf.parallel import resolve_jobs, run_ordered
from repro.perf.timers import bump, timed

T = TypeVar("T")
R = TypeVar("R")

#: Anything usable as a snapshot-cache key (must be hashable).
CacheKey = Tuple


class _Entry:
    """One cached mkfs outcome: a sparse image or a deterministic error."""

    __slots__ = ("num_blocks", "block_size", "chunks", "error", "flat")

    def __init__(self, num_blocks: int, block_size: int,
                 chunks: Optional[Tuple[Tuple[int, bytes], ...]],
                 error: Optional[ReproError]) -> None:
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.chunks = chunks
        #: Lazily materialized full image for the flat-clone fast path.
        self.flat: Optional[bytes] = None
        self.error = error


class SnapshotCache:
    """Post-mkfs image snapshots, cloned instead of re-formatted.

    ``device_for`` either replays a cached outcome (clone the sparse
    snapshot onto a fresh device, or re-raise the cached rejection) or
    runs ``build`` cold and caches what it did.  Thread-safe: the entry
    table is lock-protected, and a racing double-build of the same key
    is harmless because the builder is deterministic — both threads
    compute identical snapshots and the second store is a no-op.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[CacheKey, _Entry] = {}
        #: Per-instance hit/miss tallies (the global ``campaign.snapshot``
        #: counters aggregate across caches; shard runners report these).
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def device_for(self, key: CacheKey, num_blocks: int, block_size: int,
                   build: Callable[[BlockDevice], None],
                   track_io: bool = True) -> BlockDevice:
        """A fresh device holding the image that ``build`` produces.

        ``build`` receives a zeroed device and must format it (raising
        :class:`ReproError` on rejection).  Every call returns an
        independent device — mutating it never leaks into the cache.
        """
        # Tally under the entry lock: ``+=`` on a shared int is a
        # read-modify-write, and concurrent checker threads sharing one
        # cache could lose increments — hits + misses must equal calls
        # for per-instance stats (and the service counters) to add up.
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
            else:
                self.misses += 1
        if entry is not None:
            bump("campaign.snapshot.hit")
            if entry.error is not None:
                raise entry.error
            dev = BlockDevice(entry.num_blocks, entry.block_size,
                              track_io=track_io)
            bs = entry.block_size
            for blockno, data in entry.chunks:
                dev.write_bytes(blockno * bs, data)
            return dev
        bump("campaign.snapshot.miss")
        dev = BlockDevice(num_blocks, block_size, track_io=track_io)
        try:
            with span("campaign.snapshot.build", blocks=num_blocks,
                      block_size=block_size):
                build(dev)
        except ReproError as exc:
            # Cache the rejection *without* pinning the build state: a
            # stored exception drags its traceback along, and the
            # traceback's frames reference the (device-sized!) locals of
            # the failed build.  On a diverse campaign — thousands of
            # distinct rejected tuples — that pinned one dead device per
            # entry and ballooned a bounded cache into gigabytes.
            del dev
            exc.__traceback__ = None
            with self._lock:
                self._entries.setdefault(
                    key, _Entry(num_blocks, block_size, None, exc))
            raise
        entry = _Entry(num_blocks, block_size,
                       _sparse_snapshot(dev.snapshot(), block_size), None)
        with self._lock:
            self._entries.setdefault(key, entry)
        return dev

    def clone_flat(self, key: CacheKey, num_blocks: int, block_size: int,
                   build: Callable[[BlockDevice], None]) -> BlockDevice:
        """:meth:`device_for` for hot campaign loops: flat-image clones.

        Identical outcomes (same image bytes, same replayed rejections),
        different mechanics: the full image is materialized once per
        entry and every hit is a single buffer copy
        (:meth:`BlockDevice.from_snapshot`) instead of a zeroed
        allocation plus sparse-run writes — measurably cheaper at
        campaign block sizes — and accounting is always off
        (``track_io=False``), which campaign drivers never read.
        """
        # Tally under the entry lock: ``+=`` on a shared int is a
        # read-modify-write, and concurrent checker threads sharing one
        # cache could lose increments — hits + misses must equal calls
        # for per-instance stats (and the service counters) to add up.
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
            else:
                self.misses += 1
        if entry is not None:
            bump("campaign.snapshot.hit")
            if entry.error is not None:
                raise entry.error
            flat = entry.flat
            if flat is None:
                buf = bytearray(entry.num_blocks * entry.block_size)
                bs = entry.block_size
                for blockno, data in entry.chunks or ():
                    buf[blockno * bs:blockno * bs + len(data)] = data
                flat = bytes(buf)
                # Benign race: concurrent materializations are identical.
                entry.flat = flat
            return BlockDevice.from_snapshot(flat, entry.block_size,
                                             track_io=False)
        bump("campaign.snapshot.miss")
        dev = BlockDevice(num_blocks, block_size, track_io=False)
        try:
            with span("campaign.snapshot.build", blocks=num_blocks,
                      block_size=block_size):
                build(dev)
        except ReproError as exc:
            del dev
            exc.__traceback__ = None
            with self._lock:
                self._entries.setdefault(
                    key, _Entry(num_blocks, block_size, None, exc))
            raise
        snap = dev.snapshot()
        entry = _Entry(num_blocks, block_size,
                       _sparse_snapshot(snap, block_size), None)
        entry.flat = snap
        with self._lock:
            self._entries.setdefault(key, entry)
        return dev


def _sparse_snapshot(snapshot: bytes,
                     block_size: int) -> Tuple[Tuple[int, bytes], ...]:
    """The non-zero runs of a snapshot, as ``(blockno, bytes)`` pairs.

    A freshly formatted image is overwhelmingly zeroes (mkfs writes a
    few dozen metadata blocks and leaves the data area untouched), and
    the restore target is a zeroed device, so dropping all-zero blocks
    is lossless and makes the clone a handful of slice writes instead of
    a device-sized copy.  Adjacent non-zero blocks coalesce into one
    run — mkfs metadata is mostly contiguous (superblock, descriptors,
    bitmaps, inode table), so a typical image restores in a few writes.
    """
    zero = bytes(block_size)
    runs: List[Tuple[int, bytes]] = []
    run_start = -1
    run_end = -1
    for blockno in range(len(snapshot) // block_size):
        if snapshot[blockno * block_size:(blockno + 1) * block_size] == zero:
            continue
        if blockno == run_end:
            run_end = blockno + 1
            continue
        if run_start >= 0:
            runs.append((run_start,
                         snapshot[run_start * block_size:run_end * block_size]))
        run_start, run_end = blockno, blockno + 1
    if run_start >= 0:
        runs.append((run_start,
                     snapshot[run_start * block_size:run_end * block_size]))
    return tuple(runs)


def run_campaign(worker: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None,
                 phase: str = "campaign.run") -> List[R]:
    """Run ``worker`` over every item; results stay in spec order.

    ``jobs`` resolves through :func:`repro.perf.parallel.resolve_jobs`
    (explicit count, else ``$REPRO_JOBS``, else sequential).  The
    parallel path splits the campaign into contiguous chunks — a few per
    worker, so per-item pool overhead does not swamp small items — and
    flattens chunk results back in submission order, which makes the
    output identical to ``jobs=1`` for any deterministic worker.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    bump("campaign.items", len(items))
    with span(phase, items=len(items), jobs=jobs), timed(phase):
        if jobs <= 1 or len(items) <= 1:
            return [worker(item) for item in items]
        nchunks = min(len(items), jobs * 4)
        size = (len(items) + nchunks - 1) // nchunks
        chunks = [items[i:i + size] for i in range(0, len(items), size)]
        chunk_results = run_ordered(
            jobs, lambda chunk: [worker(item) for item in chunk], chunks)
        return [result for chunk in chunk_results for result in chunk]


# ---------------------------------------------------------------------------
# sharded streaming campaigns
# ---------------------------------------------------------------------------
#
# A sampled campaign (repro.perf.sampling) can be arbitrarily large, so
# the driver never materializes per-config results: the campaign is cut
# into contiguous shards, each shard regenerates its own config slice
# and folds outcomes into a bounded ShardAggregate as it drives, and the
# parent merges the (small, constant-size) shard payloads.  Shards run
# on the thread pool or, with backend="process", on the process pool
# with payloads returned through the shm arena transport.
#
# Merged results are provably identical to an unsharded sequential run:
# stage counts are sums, the digest is commutative (a sum of per-config
# hashes over global indices), and the bounded failure exemplars are
# exact — the campaign-wide first-N failures by config index are always
# a subset of the union of each shard's first-N.

#: Failure exemplars a shard (and the merged report) keeps verbatim.
#: Counts stay exact past the cap; only stored messages are bounded.
MAX_SHARD_FAILURES = 200

_DIGEST_BITS = 256

#: Shard runner registry: name -> module exposing ``run_shard(spec)``.
#: Modules are imported lazily (inside workers / at shard start), so
#: this module never imports the tools layer.
SHARD_RUNNERS: Dict[str, str] = {
    "conbugck": "repro.tools.conbugck",
    "conhandleck": "repro.tools.conhandleck",
}


def shard_ranges(total: int, shards: int) -> List[Tuple[int, int]]:
    """Deterministic contiguous ``[lo, hi)`` ranges covering ``total``.

    Sizes differ by at most one; empty campaigns get one empty shard so
    callers always have a merge input.
    """
    if total <= 0:
        return [(0, 0)]
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def outcome_digest_term(index: int, reached: Sequence[str],
                        failure: Optional[str]) -> int:
    """One config outcome as a digest term.

    The global config index is folded in, so any reordering or
    reassignment of outcomes changes the digest — yet the sum of terms
    is order-independent, which is what lets shards digest their slices
    independently and the merge stay byte-identical to sequential.
    """
    key = "%d\x1f%s\x1f%s" % (index, ",".join(reached), failure or "")
    return int.from_bytes(hashlib.sha256(key.encode()).digest(), "big")


class ShardAggregate:
    """Bounded-memory accumulation of per-config outcomes in one shard."""

    def __init__(self, max_failures: int = MAX_SHARD_FAILURES) -> None:
        self.total = 0
        self.reached: Dict[str, int] = {}
        self.failures: List[Tuple[int, str]] = []
        self.failures_truncated = 0
        self.max_failures = max_failures
        self.digest = 0
        self.counters: Dict[str, int] = {}
        self.seconds = 0.0

    def add(self, index: int, reached: Sequence[str],
            failure: Optional[str]) -> None:
        """Fold one config outcome (global index ``index``) in."""
        self.total += 1
        for stage in reached:
            self.reached[stage] = self.reached.get(stage, 0) + 1
        if failure is not None:
            if len(self.failures) < self.max_failures:
                self.failures.append((index, failure))
            else:
                self.failures_truncated += 1
        self.digest = (self.digest + outcome_digest_term(
            index, reached, failure)) % (1 << _DIGEST_BITS)

    def tally(self, name: str, count: int = 1) -> None:
        """Count a shard-local event for the merged report's counters."""
        self.counters[name] = self.counters.get(name, 0) + count

    def as_payload(self) -> Dict[str, Any]:
        """Plain-container form (codec/pickle-safe for the transport).

        The digest travels as fixed-width hex: it is a 256-bit integer
        and the wire codec's varints are 64-bit.
        """
        return {
            "total": self.total,
            "reached": dict(self.reached),
            "failures": [(index, msg) for index, msg in self.failures],
            "failures_truncated": self.failures_truncated,
            "digest": "%064x" % self.digest,
            "counters": dict(self.counters),
            "seconds": self.seconds,
        }


class CampaignReport:
    """The merged view of a sharded streaming campaign."""

    def __init__(self, total: int, reached: Dict[str, int],
                 failures: List[Tuple[int, str]], failures_truncated: int,
                 digest: int, shard_seconds: List[float],
                 counters: Dict[str, int]) -> None:
        self.total = total
        self.reached = reached
        self.failures = failures
        self.failures_truncated = failures_truncated
        self.digest = digest
        self.shard_seconds = shard_seconds
        self.counters = counters

    @property
    def digest_hex(self) -> str:
        """The campaign digest as a fixed-width hex string."""
        return "%064x" % self.digest

    @property
    def failure_count(self) -> int:
        """Exact failures: stored exemplars plus truncated."""
        return len(self.failures) + self.failures_truncated

    @classmethod
    def merge(cls, payloads: Sequence[Dict[str, Any]],
              max_failures: int = MAX_SHARD_FAILURES) -> "CampaignReport":
        """Merge shard payloads (must be in ascending shard order).

        Shards hold contiguous ascending index ranges, so concatenating
        their exemplar lists in shard order yields the campaign-wide
        failures in global config order; the cap then keeps exactly the
        first ``max_failures`` — the same exemplars a sequential run
        stores — while the truncated count absorbs the rest exactly.
        """
        total = 0
        reached: Dict[str, int] = {}
        failures: List[Tuple[int, str]] = []
        truncated = 0
        digest = 0
        seconds: List[float] = []
        counters: Dict[str, int] = {}
        for payload in payloads:
            total += payload["total"]
            for stage, count in payload["reached"].items():
                reached[stage] = reached.get(stage, 0) + count
            for index, msg in payload["failures"]:
                if len(failures) < max_failures:
                    failures.append((int(index), msg))
                else:
                    truncated += 1
            truncated += payload["failures_truncated"]
            term = payload["digest"]
            term = int(term, 16) if isinstance(term, str) else int(term)
            digest = (digest + term) % (1 << _DIGEST_BITS)
            seconds.append(float(payload["seconds"]))
            for name, count in payload.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + count
        return cls(total, reached, failures, truncated, digest, seconds,
                   counters)


def _run_shard_local(runner: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    """Resolve and run one shard in this process (thread backend)."""
    module = importlib.import_module(SHARD_RUNNERS[runner])
    started = time.perf_counter()
    payload = module.run_shard(spec)
    payload["seconds"] = time.perf_counter() - started
    return payload


def run_sharded(runner: str, spec: Dict[str, Any], total: int,
                shards: int = 1,
                jobs: Optional[int] = None,
                backend: Optional[str] = None,
                transport: Optional[str] = None,
                hints: Optional[Sequence[Any]] = None,
                phase: str = "campaign.sharded") -> CampaignReport:
    """Drive a sampled campaign of ``total`` configs in shards.

    ``runner`` names a :data:`SHARD_RUNNERS` module whose
    ``run_shard(spec)`` drives global config indices ``[spec['lo'],
    spec['hi'])`` and returns a :meth:`ShardAggregate.as_payload` dict.
    ``hints`` (optional, one per shard — see sampler ``shard_hints``)
    ride along in each shard's spec as ``spec['hint']``.

    Thread backend: shards fan out over ``run_ordered``.  Process
    backend: shards dispatch to the persistent pool as
    ``campaign.shard`` envelopes and payloads return over the resolved
    transport (shm arena descriptors by default).  Both merge in shard
    order, so the report is identical for any backend, job count, or
    shard count.
    """
    from repro.perf import modes

    if runner not in SHARD_RUNNERS:
        raise ValueError(f"unknown shard runner {runner!r}")
    backend = modes.resolve_mode("backend", backend)
    transport = modes.resolve_mode("transport", transport)
    ranges = shard_ranges(total, shards)
    specs: List[Dict[str, Any]] = []
    for index, (lo, hi) in enumerate(ranges):
        shard_spec = dict(spec, lo=lo, hi=hi, shard=index)
        if hints is not None:
            shard_spec["hint"] = hints[index]
        specs.append(shard_spec)
    bump("campaign.shards", len(specs))
    with span(phase, total=total, shards=len(specs), backend=backend), \
            timed(phase):
        if backend == "process":
            payloads = _run_shards_process(runner, specs, jobs, transport)
        else:
            payloads = run_ordered(
                resolve_jobs(jobs),
                lambda s: _run_shard_local(runner, s), specs)
    return CampaignReport.merge(payloads)


def _run_shards_process(runner: str, specs: Sequence[Dict[str, Any]],
                        jobs: Optional[int],
                        transport: str) -> List[Dict[str, Any]]:
    """Fan shard specs over the process pool; payloads in shard order."""
    from repro.perf import codec, procpool

    pool = procpool.get_pool(jobs)
    results = pool.run_ordered([
        ("campaign.shard", (runner, spec, transport)) for spec in specs])
    payloads: List[Dict[str, Any]] = []
    for kind, shipped in results:
        if kind == "shm":
            blob = pool.reader.view(shipped)
            bump("transport.wire_bytes", shipped.length)
        else:
            blob = shipped
            bump("transport.wire_bytes", len(shipped))
        payloads.append(codec.loads(blob))
    return payloads
