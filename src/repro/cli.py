"""Command-line entry points.

- ``repro-extract``     run the Table-5 extraction (optionally dump JSON)
- ``repro-condocck``    check manuals against extracted dependencies
- ``repro-conhandleck`` violate dependencies against the simulated ecosystem
- ``repro-conbugck``    generate and drive dependency-respecting configs
- ``repro-study``       print the study tables (Tables 1-4) and mining stats
- ``repro-demo``        run the executable Figure 1/2 demonstrations
- ``repro-runs``        inspect and diff run manifests
- ``repro-serve``       boot the HTTP API over the runs queue
- ``repro-worker``      claim queued runs and execute them
- ``repro-submit``      submit one request to a running service

Every command takes the shared observability flags (``--trace``,
``--chrome-trace``, ``--manifest``); results stay on stdout while
status lines — profile breakdowns, "wrote N ..." notes, trace/manifest
confirmations — go to stderr, so piping stdout into a file or another
tool always yields machine-parseable output.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, List, Optional


def _status(message: str) -> None:
    """One status line on stderr (stdout stays machine-parseable)."""
    print(message, file=sys.stderr)


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    """The shared ``--backend`` flag (extraction execution engine)."""
    parser.add_argument("--backend", choices=("thread", "process"),
                        default=None,
                        help="extraction execution backend (default: "
                             "$REPRO_BACKEND or thread; process runs the "
                             "frontend and taint fixpoints on real cores "
                             "via a warm spawn pool — reports are "
                             "byte-identical either way)")


def _add_transport_arg(parser: argparse.ArgumentParser) -> None:
    """The shared ``--transport`` flag (process-backend result path)."""
    parser.add_argument("--transport", choices=("shm", "pickle"),
                        default=None,
                        help="process-backend result transport (default: "
                             "$REPRO_TRANSPORT or shm; shm ships mmap arena "
                             "descriptors instead of pickled blobs — "
                             "reports are byte-identical either way)")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags every repro-* command takes."""
    group = parser.add_argument_group("observability")
    group.add_argument("--trace", metavar="PATH", default=None,
                       help="write the span tree as JSONL events")
    group.add_argument("--chrome-trace", metavar="PATH", default=None,
                       help="write the span tree in Chrome trace format "
                            "(load in chrome://tracing or Perfetto)")
    group.add_argument("--manifest", metavar="PATH", default=None,
                       help="write a run manifest (engine modes, corpus "
                            "hashes, counters, report digest)")


class _ObsSession:
    """Per-command observability lifecycle.

    Installs a tracer when ``--trace``/``--chrome-trace`` asked for one,
    opens a root span named after the tool (so every run is a single
    rooted tree), and on exit writes the requested artifacts — trace
    JSONL, Chrome trace, run manifest — with status lines on stderr.
    """

    def __init__(self, tool: str, args: argparse.Namespace,
                 argv: Optional[List[str]]) -> None:
        self.tool = tool
        self.args = args
        self.argv = list(argv) if argv is not None else sys.argv[1:]
        self.report_keys: Optional[List[str]] = None
        self.report_summary: Optional[str] = None
        self.engine_overrides: dict = {}
        self.campaign: Optional[dict] = None
        self._tracer = None
        self._root_cm = None
        self._start = 0.0

    def set_report(self, keys: Optional[List[str]],
                   summary: Optional[str] = None) -> None:
        """Attach the run's result digest inputs for the manifest."""
        self.report_keys = list(keys) if keys is not None else None
        self.report_summary = summary

    def set_campaign(self, campaign: dict) -> None:
        """Attach a sampled campaign's manifest section (sampler
        identity, shard timings, snapshot traffic, digest)."""
        self.campaign = dict(campaign)

    def set_engine(self, **modes: Optional[str]) -> None:
        """Record engine knobs the run pinned explicitly (e.g. --solver)."""
        self.engine_overrides.update(modes)

    def __enter__(self) -> "_ObsSession":
        self._start = time.perf_counter()
        if self.args.trace or self.args.chrome_trace:
            from repro.obs import tracer as obs_tracer

            # Adopt trace context handed down by a parent process (the
            # service worker sets TRACEPARENT around each run), so this
            # run's trace file carries the distributed identity and
            # `repro-runs trace` can stitch it to the queue row.
            self._tracer = obs_tracer.Tracer(
                self.tool, traceparent=obs_tracer.traceparent_from_env())
            obs_tracer.enable(self._tracer)
            self._root_cm = obs_tracer.span(self.tool,
                                            argv=list(self.argv))
            self._root_cm.__enter__()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        wall = time.perf_counter() - self._start
        if self._tracer is not None:
            from repro.obs import tracer as obs_tracer

            self._root_cm.__exit__(exc_type, exc, tb)
            obs_tracer.disable()
        if exc_type is not None:
            return False
        if self.args.trace:
            from repro.obs.events import write_jsonl

            count = write_jsonl(self._tracer, self.args.trace)
            _status(f"wrote {count} spans to {self.args.trace}")
        if self.args.chrome_trace:
            from repro.obs.events import write_chrome_trace

            count = write_chrome_trace(self._tracer, self.args.chrome_trace)
            _status(f"wrote {count} chrome trace events to "
                    f"{self.args.chrome_trace}")
        if self.args.manifest:
            from repro.obs.manifest import build_manifest, write_manifest

            manifest = build_manifest(
                self.tool,
                wall_seconds=wall,
                jobs=self._resolved_jobs(),
                argv=self.argv,
                report_keys=self.report_keys,
                report_summary=self.report_summary,
                trace=self.args.trace,
                engine_overrides=self.engine_overrides,
                campaign=self.campaign,
            )
            write_manifest(manifest, self.args.manifest)
            _status(f"wrote run manifest to {self.args.manifest}")
        return False

    def _resolved_jobs(self) -> int:
        from repro.perf import resolve_jobs

        return resolve_jobs(getattr(self.args, "jobs", None))


def _add_sampling_args(parser: argparse.ArgumentParser,
                       sample_help: str) -> None:
    """The shared sampled-campaign flags (``--sample``/``--budget``/
    ``--shards``)."""
    group = parser.add_argument_group("sampled campaigns")
    group.add_argument("--sample", metavar="SPEC", default=None,
                       help=sample_help)
    group.add_argument("--budget", type=int, default=None, metavar="N",
                       help="campaign size cap: raw configs drawn "
                            "(random needs one; covering arrays are "
                            "truncated to it)")
    group.add_argument("--shards", type=int, default=1, metavar="N",
                       help="contiguous campaign shards; each regenerates "
                            "its own config slice and streams back a "
                            "bounded aggregate (default 1)")


def _campaign_section(report: Any, meta: dict) -> dict:
    """The manifest ``campaign`` section for one sampled-campaign run."""
    hits = int(report.counters.get("campaign.snapshot.hit", 0))
    misses = int(report.counters.get("campaign.snapshot.miss", 0))
    skipped = int(meta.get("infeasible_skipped")
                  or report.counters.get("campaign.infeasible_skipped", 0))
    return {
        "sampler": str(meta["sampler"]),
        "seed": int(meta["seed"]),
        "budget": meta.get("budget"),
        "total": int(meta["total"]),
        "shards": int(meta["shards"]),
        "snapshot_hits": hits,
        "snapshot_misses": misses,
        "snapshot_hit_ratio": (hits / (hits + misses)
                               if hits + misses else 0.0),
        "infeasible_skipped": skipped,
        "digest": report.digest_hex,
        "shard_seconds": [round(s, 6) for s in report.shard_seconds],
    }


def main_extract(argv: Optional[List[str]] = None) -> int:
    """``repro-extract``: run the Table-5 extraction."""
    parser = argparse.ArgumentParser(
        prog="repro-extract",
        description="Extract multi-level configuration dependencies (Table 5).",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write the unique dependencies as JSON")
    parser.add_argument("--list", action="store_true",
                        help="print every dependency key")
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="parallel analysis workers (0 = one per CPU; "
                             "default: $REPRO_JOBS or sequential)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing breakdown afterwards "
                             "(includes solver and lattice counters)")
    parser.add_argument("--cold", action="store_true",
                        help="drop the persistent IR cache first "
                             "(measure a from-scratch run)")
    parser.add_argument("--solver", choices=("sparse", "dense"), default=None,
                        help="taint fixpoint scheduler (default: $REPRO_SOLVER "
                             "or sparse; dense is the reference escape hatch — "
                             "both produce identical dependencies)")
    _add_backend_arg(parser)
    _add_transport_arg(parser)
    parser.add_argument("--explain", metavar="PARAM", action="append",
                        default=None,
                        help="print the taint provenance of one parameter "
                             "(name or component.name; repeatable) instead "
                             "of the extraction table")
    parser.add_argument("--provenance", action="store_true",
                        help="embed per-dependency provenance records in "
                             "the --json report")
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.analysis.extractor import extract_all
    from repro.analysis.jsonio import dump_dependencies
    from repro.corpus.loader import clear_cache
    from repro.perf import render_profile, reset_profile
    from repro.reporting.tables import render_table5

    if args.cold:
        clear_cache(disk=True)
    if args.profile:
        reset_profile()

    with _ObsSession("repro-extract", args, argv) as obs:
        if args.solver:
            obs.set_engine(solver=args.solver)
        if args.backend:
            obs.set_engine(backend=args.backend)
        if args.transport:
            obs.set_engine(transport=args.transport)
        report = extract_all(jobs=args.jobs, solver=args.solver,
                             backend=args.backend, transport=args.transport)
        obs.set_report([d.key() for d in report.union],
                       summary=f"{len(report.union)} unique dependencies, "
                               f"{len(report.scenarios)} scenarios")

        index = None
        if args.explain or args.provenance:
            from repro.obs.provenance import ProvenanceIndex

            index = ProvenanceIndex.build(report=report, solver=args.solver)

        if args.explain:
            try:
                records = [index.explain(text) for text in args.explain]
            except ValueError as exc:
                _status(f"repro-extract: {exc}")
                return 2
            print("\n\n".join(record.render() for record in records))
        else:
            print(render_table5(report))
        if args.profile:
            _status("")
            _status(render_profile())
        if args.list:
            print()
            for dep in sorted(report.union, key=lambda d: d.key()):
                print(dep.key())
        if args.json:
            if args.provenance:
                import json as json_mod

                from repro.analysis.jsonio import dependency_to_dict
                from repro.obs.provenance import dependency_provenance

                payload = []
                for dep in report.union:
                    entry = dependency_to_dict(dep)
                    entry["provenance"] = dependency_provenance(index, dep)
                    payload.append(entry)
                with open(args.json, "w", encoding="utf-8") as handle:
                    json_mod.dump(payload, handle, indent=2, sort_keys=True)
            else:
                dump_dependencies(report.union, args.json)
            _status(f"wrote {len(report.union)} dependencies to {args.json}")
    return 0


def main_condocck(argv: Optional[List[str]] = None) -> int:
    """``repro-condocck``: check manuals against extracted deps."""
    parser = argparse.ArgumentParser(
        prog="repro-condocck",
        description="Check the manual corpus against extracted dependencies.",
    )
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.tools.condocck import ConDocCk

    with _ObsSession("repro-condocck", args, argv) as obs:
        issues = ConDocCk().check_extracted()
        obs.set_report([str(issue) for issue in issues],
                       summary=f"{len(issues)} inaccurate documentations")
        for issue in issues:
            print(issue)
        print(f"\n{len(issues)} inaccurate documentations")
    return 0 if not issues else 1


def main_conhandleck(argv: Optional[List[str]] = None) -> int:
    """``repro-conhandleck``: violate dependencies, report handling."""
    parser = argparse.ArgumentParser(
        prog="repro-conhandleck",
        description="Violate extracted dependencies against the simulated "
                    "ecosystem and report how each violation is handled.",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="print every violation outcome")
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="parallel violation workers (0 = one per CPU; "
                             "default: $REPRO_JOBS or sequential)")
    parser.add_argument("--seed", type=int, default=2022,
                        help="seed for budgeted violation draws")
    _add_backend_arg(parser)
    _add_transport_arg(parser)
    _add_sampling_args(
        parser,
        sample_help="sharded violation campaign sampler; only 'random' "
                    "applies here (dependency draws with replacement) — "
                    "implied by --budget/--shards")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing breakdown afterwards")
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.perf import render_profile, reset_profile
    from repro.tools.conhandleck import ConHandleCk, sampled_check

    if args.sample not in (None, "random"):
        _status(f"repro-conhandleck: --sample {args.sample} is not "
                f"meaningful over a dependency list (only random draws)")
        return 2
    if args.profile:
        reset_profile()
    with _ObsSession("repro-conhandleck", args, argv) as obs:
        if args.backend:
            obs.set_engine(backend=args.backend)
        if args.transport:
            obs.set_engine(transport=args.transport)
        if args.sample or args.budget is not None or args.shards > 1:
            from repro.analysis.extractor import extract_all

            deps = extract_all(jobs=args.jobs,
                               backend=args.backend).true_dependencies()
            started = time.perf_counter()
            report, meta = sampled_check(
                deps, seed=args.seed, budget=args.budget,
                shards=args.shards, jobs=args.jobs,
                backend=args.backend, transport=args.transport)
            wall = time.perf_counter() - started
            rate = report.total / wall if wall > 0 else 0.0
            obs.set_campaign(_campaign_section(report, meta))
            # ``reached`` counts outcome values and dependency keys side
            # by side; the outcome rollup is the enum-valued subset.
            from repro.tools.conhandleck import ViolationOutcome

            outcome_names = {o.value for o in ViolationOutcome}
            outcome_counts = {key: count
                              for key, count in report.reached.items()
                              if key in outcome_names}
            obs.set_report(
                [f"{k}={v}" for k, v in sorted(outcome_counts.items())]
                + [f"digest={report.digest_hex}"],
                summary=f"{meta['sampler']} violation campaign: "
                        f"{report.total} draws over "
                        f"{meta['dependencies']} dependencies, digest "
                        f"{report.digest_hex[:12]}")
            print(f"campaign:    {report.total} violation draws over "
                  f"{meta['dependencies']} dependencies in "
                  f"{meta['shards']} shard(s)")
            for outcome, count in sorted(outcome_counts.items()):
                print(f"{outcome:>14s}: {count}")
            print(f"digest:      {report.digest_hex}")
            print(f"throughput:  {rate:,.0f} violations/sec "
                  f"({wall:.2f}s wall)")
            bad_exemplars = report.failures
            for index, message in bad_exemplars:
                print(f"\nBAD HANDLING [config {index}]: {message}")
            if args.profile:
                _status("")
                _status(render_profile())
            return 0 if not report.failure_count else 1
        report = ConHandleCk().check_extracted(jobs=args.jobs,
                                               backend=args.backend)
        summary = ", ".join(f"{o.value}={c}"
                            for o, c in report.by_outcome().items() if c)
        obs.set_report([str(r) for r in report.results], summary=summary)
        if args.profile:
            _status(render_profile())
            _status("")
        if args.verbose:
            for result in report.results:
                print(result)
            print()
        for outcome, count in report.by_outcome().items():
            if count:
                print(f"{outcome.value:>14s}: {count}")
        bad = report.bad_handling()
        for result in bad:
            print(f"\nBAD HANDLING: {result}")
    return 0 if not bad else 1


def main_conbugck(argv: Optional[List[str]] = None) -> int:
    """``repro-conbugck``: guided vs naive configuration generation."""
    parser = argparse.ArgumentParser(
        prog="repro-conbugck",
        description="Generate dependency-respecting configurations and drive "
                    "them through the ecosystem; compare against naive random.",
    )
    parser.add_argument("-n", "--count", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="parallel campaign workers (0 = one per CPU; "
                             "default: $REPRO_JOBS or sequential)")
    _add_backend_arg(parser)
    _add_transport_arg(parser)
    _add_sampling_args(
        parser,
        sample_help="run a registry-wide sampled campaign instead of the "
                    "guided-vs-naive comparison: random, pairwise, or "
                    "twise:<t>, each optionally +feasible (skip configs "
                    "the extracted dependencies say mkfs rejects)")
    parser.add_argument("--fs-blocks", type=int, default=512, metavar="N",
                        help="device size (blocks) for sampled campaigns")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing breakdown afterwards")
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.perf import render_profile, reset_profile
    from repro.tools.conbugck import ConBugCk, STAGES, sampled_campaign

    if args.profile:
        reset_profile()
    with _ObsSession("repro-conbugck", args, argv) as obs:
        if args.backend:
            obs.set_engine(backend=args.backend)
        if args.transport:
            obs.set_engine(transport=args.transport)
        if args.sample:
            from repro.analysis.extractor import extract_all

            deps = extract_all(jobs=args.jobs,
                               backend=args.backend).true_dependencies()
            started = time.perf_counter()
            report, meta = sampled_campaign(
                deps, sample=args.sample, seed=args.seed,
                budget=args.budget, shards=args.shards,
                fs_blocks=args.fs_blocks, jobs=args.jobs,
                backend=args.backend, transport=args.transport)
            wall = time.perf_counter() - started
            rate = report.total / wall if wall > 0 else 0.0
            obs.set_campaign(_campaign_section(report, meta))
            obs.set_report(
                [f"{stage}={count}"
                 for stage, count in sorted(report.reached.items())]
                + [f"digest={report.digest_hex}"],
                summary=f"{meta['sampler']} campaign: {report.total} "
                        f"configs, {meta['shards']} shard(s), digest "
                        f"{report.digest_hex[:12]}")
            print(f"sampler:     {meta['sampler']} (seed {meta['seed']})")
            print(f"space:       {meta['space_params']} params, "
                  f"{meta['space_combinations']:.3e} combinations")
            print(f"campaign:    {report.total} configs in "
                  f"{meta['shards']} shard(s)"
                  + (f", {meta['infeasible_skipped']} infeasible skipped"
                     if meta["infeasible_skipped"] else ""))
            print(f"{'stage':>12s} {'reached':>8s}")
            for stage in STAGES:
                print(f"{stage:>12s} {report.reached.get(stage, 0):>8d}")
            print(f"failures:    {report.failure_count} "
                  f"({len(report.failures)} stored)")
            print(f"digest:      {report.digest_hex}")
            print(f"throughput:  {rate:,.0f} configs/sec "
                  f"({wall:.2f}s wall)")
            if args.profile:
                _status("")
                _status(render_profile())
            return 0
        generator = ConBugCk.from_extraction(seed=args.seed, jobs=args.jobs,
                                             backend=args.backend)
        guided = generator.drive(generator.generate(args.count), jobs=args.jobs)
        naive = generator.drive(generator.generate_naive(args.count),
                                jobs=args.jobs)
        obs.set_report(
            [f"{kind}.{stage}={stats.reached[stage]}"
             for kind, stats in (("guided", guided), ("naive", naive))
             for stage in STAGES],
            summary=f"{args.count} configs each; guided fsck-clean="
                    f"{guided.reached['fsck-clean']}, naive fsck-clean="
                    f"{naive.reached['fsck-clean']}")
        print(f"{'stage':>12s} {'guided':>8s} {'naive':>8s}")
        for stage in STAGES:
            print(f"{stage:>12s} {guided.reached[stage]:>8d} "
                  f"{naive.reached[stage]:>8d}")
        if args.profile:
            _status("")
            _status(render_profile())
    return 0


def main_demo(argv: Optional[List[str]] = None) -> int:
    """``repro-demo``: run the executable Figure 1/2 demonstrations."""
    parser = argparse.ArgumentParser(
        prog="repro-demo",
        description="Run the executable Figure-1 and Figure-2 demonstrations.",
    )
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.reporting.tables import render_figure1, render_figure2

    with _ObsSession("repro-demo", args, argv):
        print(render_figure1())
        print()
        print(render_figure2())
    return 0


def main_study(argv: Optional[List[str]] = None) -> int:
    """``repro-study``: print Tables 1-4 and the mining stats."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Print the study results (Tables 1-4) and mining stats.",
    )
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.reporting.tables import (
        render_mining,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    with _ObsSession("repro-study", args, argv):
        for render in (render_table1, render_table2, render_mining,
                       render_table3, render_table4):
            print(render())
            print()
    return 0


def _clock(epoch: float) -> str:
    """An epoch timestamp as a local wall-clock stamp (ms precision)."""
    import datetime

    stamp = datetime.datetime.fromtimestamp(epoch)
    return stamp.strftime("%H:%M:%S.") + f"{stamp.microsecond // 1000:03d}"


def _runs_trace(args: argparse.Namespace) -> int:
    """``repro-runs trace``: stitch one run's distributed trace."""
    import json as json_mod

    from repro.serve import runtrace
    from repro.serve.db import RunQueue

    db_path, data_dir = _service_paths(args)
    queue = RunQueue(db_path)
    try:
        assembled = runtrace.assemble(queue, data_dir, args.run_id)
    except LookupError as exc:
        _status(f"repro-runs trace: {exc}")
        return 2
    if args.json:
        print(json_mod.dumps(assembled, indent=2, sort_keys=True))
    else:
        print(runtrace.render(assembled))
    return 0 if assembled["rooted"] else 1


def _format_service_event(record: dict) -> str:
    """One service-log record as a single scannable line."""
    ts = record.get("ts")
    stamp = _clock(ts) if isinstance(ts, (int, float)) else "--:--:--.---"
    head = (f"{stamp} {record.get('proc', '?'):<6} "
            f"{record.get('event', '?')}")
    skip = {"schema", "ts", "event", "proc", "pid"}
    extras = []
    for key in sorted(record):
        if key in skip or record[key] is None:
            continue
        value = record[key]
        if key in ("run_id", "request_key", "traceparent"):
            value = str(value)[:16]
        elif isinstance(value, float):
            value = f"{value:.3f}"
        extras.append(f"{key}={value}")
    return head + ("  " + " ".join(extras) if extras else "")


def _runs_tail(args: argparse.Namespace) -> int:
    """``repro-runs tail``: print/follow the structured service log."""
    from repro.obs import servicelog

    _, data_dir = _service_paths(args)
    path = servicelog.default_path(data_dir)
    log = servicelog.ServiceLog(path, proc="cli", validate=False)
    matches = (lambda r: True) if not args.event else (
        lambda r: str(r.get("event", "")).startswith(args.event))
    backlog = [r for r in log.read(limit=None) if matches(r)]
    if args.lines >= 0:
        backlog = backlog[-args.lines:] if args.lines else []
    for record in backlog:
        print(_format_service_event(record))
    if not backlog and not args.follow:
        _status(f"repro-runs tail: no events in {path}")
    if args.follow:
        try:
            for record in log.follow():
                if matches(record):
                    print(_format_service_event(record), flush=True)
        except KeyboardInterrupt:
            pass
    return 0


def main_runs(argv: Optional[List[str]] = None) -> int:
    """``repro-runs``: inspect and diff run manifests."""
    parser = argparse.ArgumentParser(
        prog="repro-runs",
        description="Inspect run manifests written with --manifest.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    show = sub.add_parser("show", help="pretty-print one manifest")
    show.add_argument("path")
    diff = sub.add_parser(
        "diff", help="explain how two runs differ (exit 1 when they do)")
    diff.add_argument("a")
    diff.add_argument("b")
    trace = sub.add_parser(
        "trace", help="reassemble one service run's cross-process trace "
                      "(exit 1 unless it forms a single rooted tree)")
    trace.add_argument("run_id", help="run id or unique prefix")
    trace.add_argument("--json", action="store_true",
                       help="emit the assembled tree as JSON")
    _add_service_args(trace)
    tail = sub.add_parser(
        "tail", help="print (and optionally follow) the structured "
                     "service event log")
    tail.add_argument("-n", "--lines", type=int, default=20, metavar="N",
                      help="backlog events to print first (default 20)")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep streaming new events until interrupted")
    tail.add_argument("--event", default=None, metavar="PREFIX",
                      help="only events whose name starts with PREFIX")
    _add_service_args(tail)
    args = parser.parse_args(argv)

    if args.command == "trace":
        return _runs_trace(args)
    if args.command == "tail":
        return _runs_tail(args)

    from repro.obs.manifest import (
        diff_manifests,
        load_manifest,
        manifests_equivalent,
        render_diff,
    )

    if args.command == "show":
        manifest = load_manifest(args.path)
        engine = manifest.get("engine", {})
        report = manifest.get("report", {})
        print(f"tool:        {manifest.get('tool')}")
        print(f"created:     {manifest.get('created_iso')}")
        print(f"wall:        {manifest.get('wall_seconds'):.4f}s")
        print(f"jobs:        {manifest.get('jobs')}")
        print("engine:      " + ", ".join(
            f"{k}={engine[k]}" for k in sorted(engine)))
        print(f"corpus:      {len(manifest.get('corpus', {}))} units")
        print(f"counters:    {len(manifest.get('counters', {}))} recorded")
        digest = report.get("digest")
        print(f"report:      count={report.get('count')} "
              f"digest={digest[:12] if digest else None}")
        if report.get("summary"):
            print(f"summary:     {report['summary']}")
        run = manifest.get("run")
        if run:
            print(f"run:         {run.get('id', '')[:16]} "
                  f"(worker {run.get('worker')}, "
                  f"attempt {run.get('attempt')})")
            if run.get("traceparent"):
                print(f"  trace:     {run['traceparent']}")
            stamps = " -> ".join(
                f"{field} {_clock(run[field])}"
                for field in ("queued", "claimed", "started", "finished")
                if isinstance(run.get(field), (int, float)))
            if stamps:
                print(f"  timeline:  {stamps}")
            if isinstance(run.get("queue_latency"), (int, float)):
                print(f"  queued:    {run['queue_latency']:.3f}s "
                      f"before claim")
        campaign = manifest.get("campaign")
        if campaign:
            hits = campaign.get("snapshot_hits", 0)
            misses = campaign.get("snapshot_misses", 0)
            shard_seconds = campaign.get("shard_seconds") or []
            print(f"campaign:    {campaign.get('sampler')} seed="
                  f"{campaign.get('seed')} budget={campaign.get('budget')} "
                  f"total={campaign.get('total')}")
            print(f"  shards:    {campaign.get('shards')}"
                  + (f" (timings {min(shard_seconds):.3f}.."
                     f"{max(shard_seconds):.3f}s)" if shard_seconds else ""))
            print(f"  snapshot:  {hits} hits / {misses} misses "
                  f"(ratio {campaign.get('snapshot_hit_ratio', 0.0):.3f})")
            if campaign.get("infeasible_skipped"):
                print(f"  skipped:   {campaign['infeasible_skipped']} "
                      f"infeasible")
            cdigest = campaign.get("digest")
            print(f"  digest:    {cdigest[:16] if cdigest else None}")
        return 0

    a = load_manifest(args.a)
    b = load_manifest(args.b)
    print(render_diff(a, b))
    return 0 if manifests_equivalent(diff_manifests(a, b)) else 1


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    """The shared service-location flags (``--db``/``--data-dir``)."""
    parser.add_argument("--data-dir", metavar="DIR", default=None,
                        help="service data directory: queue database, "
                             "corpus snapshots, run manifests (default: "
                             "$REPRO_SERVE_DIR or ~/.cache/repro/serve)")
    parser.add_argument("--db", metavar="PATH", default=None,
                        help="queue database file (default: "
                             "<data-dir>/service.db)")


def _service_paths(args: argparse.Namespace) -> tuple:
    data_dir = (args.data_dir
                or os.environ.get("REPRO_SERVE_DIR", "").strip()
                or os.path.join(os.path.expanduser("~"), ".cache",
                                "repro", "serve"))
    db_path = args.db or os.path.join(data_dir, "service.db")
    return db_path, data_dir


def main_serve(argv: Optional[List[str]] = None) -> int:
    """``repro-serve``: boot the HTTP API over the runs queue."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the dependency-analysis HTTP API: accept corpus "
                    "uploads and extraction/checker/campaign requests, "
                    "enqueue them with content-keyed dedup, and hand them "
                    "to repro-worker processes.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8675,
                        help="listen port (0 = pick a free port; the "
                             "resolved URL is printed on stdout)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        metavar="N",
                        help="hot result/manifest cache budget in bytes; "
                             "0 disables the cache and ETag emission "
                             "(default: $REPRO_SERVE_CACHE_BYTES or 32 MiB)")
    parser.add_argument("--no-pool", action="store_true",
                        help="open a fresh DB connection per call and "
                             "sleep-poll long-polls instead of the "
                             "event-driven watcher (debugging/baseline)")
    _add_service_args(parser)
    args = parser.parse_args(argv)

    from repro.perf.procpool import install_signal_cleanup
    from repro.serve.api import Service

    db_path, data_dir = _service_paths(args)
    install_signal_cleanup()
    from repro.obs import servicelog
    servicelog.configure(servicelog.default_path(data_dir), proc="api")
    service = Service((args.host, args.port), db_path, data_dir,
                      verbose=args.verbose, cache_bytes=args.cache_bytes,
                      pooling=False if args.no_pool else None,
                      watch=False if args.no_pool else None)
    # stdout, not stderr: scripts parse the resolved URL (port 0).
    print(f"listening on {service.url}", flush=True)
    _status(f"queue database: {db_path}")
    _status(f"data directory: {data_dir}")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        _status("shutting down")
    finally:
        service.server_close()
    return 0


def main_worker(argv: Optional[List[str]] = None) -> int:
    """``repro-worker``: claim queued runs and execute them."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Run one queue worker: claim batches of compatible "
                    "runs, execute them on the warm pipeline (procpool+shm "
                    "under --backend process), and record obs manifests as "
                    "the run records.",
    )
    parser.add_argument("--id", default=None,
                        help="worker identity recorded in claims and "
                             "manifests (default: host:pid)")
    parser.add_argument("--batch", type=int,
                        default=None, metavar="N",
                        help="max compatible runs claimed per wave "
                             "(default: $REPRO_SERVE_BATCH or 8)")
    parser.add_argument("--lease", type=float, default=None, metavar="SEC",
                        help="claim lease seconds; a worker that stops "
                             "renewing loses its claims after this long "
                             "(default 120)")
    parser.add_argument("--poll", type=float, default=None, metavar="SEC",
                        help="idle queue poll interval (default 0.2; with "
                             "the queue watcher this is only the floor — "
                             "idle claims are event-driven)")
    parser.add_argument("--slots", type=int, default=None, metavar="N",
                        help="concurrent exec slots: run up to N compatible "
                             "batchmates at once (default: "
                             "$REPRO_SERVE_SLOTS or 1; pays off for "
                             "--backend process jobs on multi-core hosts)")
    parser.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after N jobs (default: run forever)")
    parser.add_argument("--once", action="store_true",
                        help="claim and execute at most one batch, then exit")
    _add_service_args(parser)
    args = parser.parse_args(argv)

    from repro.perf.procpool import install_signal_cleanup
    from repro.serve import worker as serve_worker

    db_path, data_dir = _service_paths(args)
    install_signal_cleanup()
    from repro.obs import servicelog
    servicelog.configure(servicelog.default_path(data_dir), proc="worker")
    kwargs = {}
    if args.batch is not None:
        kwargs["batch_limit"] = args.batch
    elif os.environ.get("REPRO_SERVE_BATCH", "").strip():
        kwargs["batch_limit"] = int(os.environ["REPRO_SERVE_BATCH"])
    if args.lease is not None:
        kwargs["lease_seconds"] = args.lease
    if args.poll is not None:
        kwargs["poll_seconds"] = args.poll
    if args.slots is not None:
        kwargs["exec_slots"] = args.slots
    worker = serve_worker.Worker(db_path, data_dir, worker_id=args.id,
                                 **kwargs)
    _status(f"worker {worker.worker_id} polling {db_path}")
    try:
        if args.once:
            ran = worker.run_once()
        else:
            ran = worker.run_forever(max_jobs=args.max_jobs)
    except KeyboardInterrupt:
        ran = worker.jobs_done + worker.jobs_failed
        _status("interrupted")
    finally:
        worker.close()
    _status(f"worker {worker.worker_id}: {worker.jobs_done} done, "
            f"{worker.jobs_failed} failed in {worker.batches} batch(es)")
    return 0 if ran or not worker.jobs_failed else 1


def main_submit(argv: Optional[List[str]] = None) -> int:
    """``repro-submit``: submit one request and (optionally) await it."""
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit one request to a running repro-serve instance; "
                    "the run's output bytes land on stdout, status lines "
                    "on stderr.",
    )
    parser.add_argument("tool",
                        help="tool to run (extract, condocck, conhandleck, "
                             "conbugck, study, demo)")
    parser.add_argument("--url", default="http://127.0.0.1:8675",
                        help="service base URL")
    parser.add_argument("--params", metavar="JSON", default=None,
                        help='request params as a JSON object, e.g. '
                             '\'{"jobs": 2, "solver": "sparse"}\'')
    parser.add_argument("--corpus", metavar="ID", default=None,
                        help="corpus snapshot id from a prior upload")
    parser.add_argument("--upload", metavar="FILE", action="append",
                        default=None,
                        help="corpus unit to upload as an overlay before "
                             "submitting (repeatable; basename is the "
                             "unit name)")
    parser.add_argument("--no-wait", action="store_true",
                        help="enqueue and print the run id without waiting")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for completion (default 300)")
    parser.add_argument("--manifest", metavar="PATH", default=None,
                        help="also fetch the run manifest to PATH")
    args = parser.parse_args(argv)

    import json as json_mod

    from repro.serve.client import ServiceClient, ServiceError

    try:
        params = json_mod.loads(args.params) if args.params else {}
    except ValueError as exc:
        _status(f"repro-submit: --params is not valid JSON: {exc}")
        return 2
    client = ServiceClient(args.url)
    try:
        corpus_id = args.corpus
        if args.upload:
            files = {}
            for path in args.upload:
                with open(path, encoding="utf-8") as handle:
                    files[os.path.basename(path)] = handle.read()
            corpus_id = client.upload_corpus(files)
            _status(f"uploaded corpus snapshot {corpus_id}")
        submitted = client.submit(args.tool, params, corpus=corpus_id)
        run = submitted["run"]
        dedup = " (deduplicated)" if submitted["deduplicated"] else ""
        _status(f"run {run['run_id'][:16]} [{run['status']}]{dedup}")
        if args.no_wait:
            print(run["run_id"])
            return 0
        run = client.wait_done(run["run_id"], timeout=args.timeout)
        output = client.result_bytes(run["run_id"])
        sys.stdout.write(output.decode("utf-8"))
        sys.stdout.flush()
        if args.manifest:
            manifest = client.manifest(run["run_id"])
            with open(args.manifest, "w", encoding="utf-8") as handle:
                json_mod.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            _status(f"wrote run manifest to {args.manifest}")
        exit_code = int(run["result"].get("exit_code", 0))
        _status(f"run {run['run_id'][:16]} done "
                f"(exit {exit_code}, "
                f"{run['result'].get('wall_seconds', 0):.3f}s worker wall)")
        return exit_code
    except ServiceError as exc:
        _status(f"repro-submit: {exc}")
        return 3
    except OSError as exc:
        _status(f"repro-submit: {exc}")
        return 2


def _top_frame(stats: dict, samples: dict) -> str:
    """One ``repro-top`` dashboard frame from a stats+metrics poll."""
    from repro.common.texttable import TextTable
    from repro.obs import prom

    queue_table = TextTable(["State", "Runs"], title="Queue")
    for state in sorted(stats.get("by_status", {})):
        queue_table.add_row(state, str(stats["by_status"][state]))
    queue_table.add_row("total", str(stats.get("runs", 0)))

    flow = TextTable(["Signal", "Value"], title="Flow")
    flow.add_row("submits", str(stats.get("submits", 0)))
    flow.add_row("deduplicated", str(stats.get("deduplicated", 0)))
    flow.add_row("dedup ratio", f"{stats.get('dedup_ratio', 0.0):.3f}")
    flow.add_row("lease reclaims", str(stats.get("reclaims", 0)))

    latency = TextTable(["Latency", "p50", "p90", "count"],
                        title="Run latency (finished runs)")
    for label, name in (("queued", "repro_serve_run_queue_latency_seconds"),
                        ("exec", "repro_serve_run_exec_latency_seconds"),
                        ("request",
                         "repro_serve_run_request_latency_seconds")):
        count = sum(v for (n, labels), v in samples.items()
                    if n == name + "_count")
        p50 = prom.histogram_quantile(samples, name, 0.5)
        p90 = prom.histogram_quantile(samples, name, 0.9)
        latency.add_row(label, f"<={p50:.3f}s", f"<={p90:.3f}s",
                        str(int(count)))

    workers = TextTable(["Worker", "Jobs", "Heartbeat age"],
                        title="Workers")
    ages = {labels.get("worker"): value for labels, value in
            prom.samples_named(samples,
                               "repro_serve_worker_heartbeat_age_seconds")}
    jobs = {labels.get("worker"): value for labels, value in
            prom.samples_named(samples, "repro_serve_worker_jobs_done")}
    for worker_id in sorted(ages):
        workers.add_row(worker_id, str(int(jobs.get(worker_id, 0))),
                        f"{ages[worker_id]:.1f}s")
    if not ages:
        workers.add_row("(none seen)", "-", "-")

    return "\n\n".join(table.render() for table in
                       (queue_table, flow, latency, workers))


def main_top(argv: Optional[List[str]] = None) -> int:
    """``repro-top``: live terminal dashboard over a running service."""
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Poll a repro-serve instance's /v1/stats and "
                    "/v1/metrics and render a live queue/latency/worker "
                    "dashboard.",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8675",
                        help="service base URL")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SEC", help="poll interval (default 2s)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit (for scripts "
                             "and CI)")
    args = parser.parse_args(argv)

    from repro.serve.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        while True:
            stats = client.stats()
            samples = client.metrics()
            frame = _top_frame(stats, samples)
            if args.once:
                print(frame)
                return 0
            # Clear + home, like top(1); one frame per poll.
            sys.stdout.write("\x1b[2J\x1b[H" + args.url + "\n\n"
                             + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except ServiceError as exc:
        _status(f"repro-top: {exc}")
        return 3
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation aid
    sys.exit(main_extract())
