"""Command-line entry points.

- ``repro-extract``     run the Table-5 extraction (optionally dump JSON)
- ``repro-condocck``    check manuals against extracted dependencies
- ``repro-conhandleck`` violate dependencies against the simulated ecosystem
- ``repro-conbugck``    generate and drive dependency-respecting configs
- ``repro-study``       print the study tables (Tables 1-4) and mining stats
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main_extract(argv: Optional[List[str]] = None) -> int:
    """``repro-extract``: run the Table-5 extraction."""
    parser = argparse.ArgumentParser(
        prog="repro-extract",
        description="Extract multi-level configuration dependencies (Table 5).",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write the unique dependencies as JSON")
    parser.add_argument("--list", action="store_true",
                        help="print every dependency key")
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="parallel analysis workers (0 = one per CPU; "
                             "default: $REPRO_JOBS or sequential)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing breakdown afterwards "
                             "(includes solver and lattice counters)")
    parser.add_argument("--cold", action="store_true",
                        help="drop the persistent IR cache first "
                             "(measure a from-scratch run)")
    parser.add_argument("--solver", choices=("sparse", "dense"), default=None,
                        help="taint fixpoint scheduler (default: $REPRO_SOLVER "
                             "or sparse; dense is the reference escape hatch — "
                             "both produce identical dependencies)")
    args = parser.parse_args(argv)

    from repro.analysis.extractor import extract_all
    from repro.analysis.jsonio import dump_dependencies
    from repro.corpus.loader import clear_cache
    from repro.perf import render_profile, reset_profile
    from repro.reporting.tables import render_table5

    if args.cold:
        clear_cache(disk=True)
    if args.profile:
        reset_profile()
    report = extract_all(jobs=args.jobs, solver=args.solver)
    print(render_table5(report))
    if args.profile:
        print()
        print(render_profile())
    if args.list:
        print()
        for dep in sorted(report.union, key=lambda d: d.key()):
            print(dep.key())
    if args.json:
        dump_dependencies(report.union, args.json)
        print(f"\nwrote {len(report.union)} dependencies to {args.json}")
    return 0


def main_condocck(argv: Optional[List[str]] = None) -> int:
    """``repro-condocck``: check manuals against extracted deps."""
    parser = argparse.ArgumentParser(
        prog="repro-condocck",
        description="Check the manual corpus against extracted dependencies.",
    )
    parser.parse_args(argv)

    from repro.tools.condocck import ConDocCk

    issues = ConDocCk().check_extracted()
    for issue in issues:
        print(issue)
    print(f"\n{len(issues)} inaccurate documentations")
    return 0 if not issues else 1


def main_conhandleck(argv: Optional[List[str]] = None) -> int:
    """``repro-conhandleck``: violate dependencies, report handling."""
    parser = argparse.ArgumentParser(
        prog="repro-conhandleck",
        description="Violate extracted dependencies against the simulated "
                    "ecosystem and report how each violation is handled.",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="print every violation outcome")
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="parallel violation workers (0 = one per CPU; "
                             "default: $REPRO_JOBS or sequential)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing breakdown afterwards")
    args = parser.parse_args(argv)

    from repro.perf import render_profile, reset_profile
    from repro.tools.conhandleck import ConHandleCk

    if args.profile:
        reset_profile()
    report = ConHandleCk().check_extracted(jobs=args.jobs)
    if args.profile:
        print(render_profile())
        print()
    if args.verbose:
        for result in report.results:
            print(result)
        print()
    for outcome, count in report.by_outcome().items():
        if count:
            print(f"{outcome.value:>14s}: {count}")
    bad = report.bad_handling()
    for result in bad:
        print(f"\nBAD HANDLING: {result}")
    return 0 if not bad else 1


def main_conbugck(argv: Optional[List[str]] = None) -> int:
    """``repro-conbugck``: guided vs naive configuration generation."""
    parser = argparse.ArgumentParser(
        prog="repro-conbugck",
        description="Generate dependency-respecting configurations and drive "
                    "them through the ecosystem; compare against naive random.",
    )
    parser.add_argument("-n", "--count", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="parallel campaign workers (0 = one per CPU; "
                             "default: $REPRO_JOBS or sequential)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing breakdown afterwards")
    args = parser.parse_args(argv)

    from repro.perf import render_profile, reset_profile
    from repro.tools.conbugck import ConBugCk, STAGES

    if args.profile:
        reset_profile()
    generator = ConBugCk.from_extraction(seed=args.seed)
    guided = generator.drive(generator.generate(args.count), jobs=args.jobs)
    naive = generator.drive(generator.generate_naive(args.count), jobs=args.jobs)
    print(f"{'stage':>12s} {'guided':>8s} {'naive':>8s}")
    for stage in STAGES:
        print(f"{stage:>12s} {guided.reached[stage]:>8d} {naive.reached[stage]:>8d}")
    if args.profile:
        print()
        print(render_profile())
    return 0


def main_demo(argv: Optional[List[str]] = None) -> int:
    """``repro-demo``: run the executable Figure 1/2 demonstrations."""
    parser = argparse.ArgumentParser(
        prog="repro-demo",
        description="Run the executable Figure-1 and Figure-2 demonstrations.",
    )
    parser.parse_args(argv)

    from repro.reporting.tables import render_figure1, render_figure2

    print(render_figure1())
    print()
    print(render_figure2())
    return 0


def main_study(argv: Optional[List[str]] = None) -> int:
    """``repro-study``: print Tables 1-4 and the mining stats."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Print the study results (Tables 1-4) and mining stats.",
    )
    parser.parse_args(argv)

    from repro.reporting.tables import (
        render_mining,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    for render in (render_table1, render_table2, render_mining,
                   render_table3, render_table4):
        print(render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation aid
    sys.exit(main_extract())
