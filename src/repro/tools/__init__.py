"""The three dependency-consuming checkers of paper §4.2.

- :mod:`repro.tools.condocck` — ConDocCk: manual/code inconsistency,
- :mod:`repro.tools.conhandleck` — ConHandleCk: dependency-violation
  robustness testing against the simulated ecosystem,
- :mod:`repro.tools.conbugck` — ConBugCk: dependency-respecting
  configuration generation that drives tests deep into the target.
"""

from repro.tools.condocck import ConDocCk, DocIssue
from repro.tools.conhandleck import ConHandleCk, ViolationOutcome, ViolationReport
from repro.tools.conbugck import ConBugCk, GeneratedConfig

__all__ = [
    "ConDocCk",
    "DocIssue",
    "ConHandleCk",
    "ViolationOutcome",
    "ViolationReport",
    "ConBugCk",
    "GeneratedConfig",
]
