"""ConBugCk: dependency-respecting configuration generation (§4.2).

ConBugCk is a plugin for test suites with limited configuration
coverage: it replaces the configuration-loading logic and generates
configuration states that satisfy the extracted multi-level
dependencies, so the enhanced tests drive deep into the target code
instead of dying on shallow validation errors.

``generate`` produces dependency-respecting configurations,
``generate_naive`` produces unconstrained random ones (the baseline),
and ``drive`` executes either kind through the simulated ecosystem
(mkfs → mount → use → umount → fsck), reporting how deep each
configuration gets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, \
    Tuple, Union

from repro.analysis.model import Category, Dependency, SubKind
from repro.ecosystem.featureset import DEFAULT_EXT4_FEATURES, all_feature_names
from repro.ecosystem.mke2fs import Mke2fs
from repro.ecosystem.mount import Ext4Mount
from repro.ecosystem.e2fsck import E2fsck, E2fsckConfig
from repro.ecosystem.params import EXT4_REGISTRY, ConfigParam, ParamKind
from repro.errors import ReproError
from repro.fsimage.blockdev import BlockDevice
from repro.obs.tracer import span
from repro.perf import SnapshotCache, bump, run_campaign, timed
from repro.perf.campaign import CampaignReport, ShardAggregate, run_sharded, \
    shard_ranges
from repro.perf.sampling import Assignment, ConfigSpace, ConstraintIndex, \
    OptionSweepSampler, make_sampler, parse_sample_spec

#: Stages a driven configuration can reach.
STAGES = ("mkfs", "mount", "use", "fsck-clean")

#: How many failure messages a campaign keeps verbatim.  Counts stay
#: exact past the cap (``failures_truncated``); only the stored strings
#: are bounded, so a million-config campaign cannot hoard memory.
MAX_STORED_FAILURES = 200

#: Mount options violating an extracted dependency — each is refused by
#: the kernel's option validation regardless of on-disk state.
#: ``generate_mount_sweep`` draws from this pool to model the paper's
#: naive campaigns, whose configurations mostly die at mount.
VIOLATING_MOUNT_OPTIONS = (
    "commit=1000",
    "journal_ioprio=9",
    "journal_async_commit",
    "barrier=2",
    "auto_da_alloc=5",
    "max_batch_time=-1",
    "data=flush",
    "noload",
)


@dataclass
class GeneratedConfig:
    """One configuration state for the create+mount pipeline."""

    features: Tuple[str, ...]
    blocksize: int
    inode_size: int
    inode_ratio: int
    reserved_percent: int
    mount_options: str

    def mke2fs_args(self, fs_blocks: int) -> List[str]:
        # "-O none" first: the generated feature set is complete, not a
        # delta against mke2fs's defaults.
        """The mke2fs argument vector for this configuration."""
        spec = ["-O", "none"]
        if self.features:
            spec += ["-O", ",".join(self.features)]
        return spec + [
            "-b", str(self.blocksize),
            "-I", str(self.inode_size),
            "-i", str(self.inode_ratio),
            "-m", str(self.reserved_percent),
            str(fs_blocks),
        ]


@dataclass
class DriveStats:
    """How deep each driven configuration reached."""

    total: int = 0
    reached: Dict[str, int] = field(default_factory=lambda: {s: 0 for s in STAGES})
    failures: List[str] = field(default_factory=list)
    #: Failure messages dropped once ``failures`` hit the storage cap.
    failures_truncated: int = 0
    max_stored_failures: int = MAX_STORED_FAILURES

    def depth_rate(self, stage: str) -> float:
        """Fraction of configurations reaching ``stage``.

        An empty campaign (``total == 0``) has a rate of 0.0 at every
        stage rather than a division error.
        """
        if not self.total:
            return 0.0
        return self.reached[stage] / self.total

    @property
    def failure_count(self) -> int:
        """Exact number of failures, stored messages plus truncated."""
        return len(self.failures) + self.failures_truncated

    def record_failure(self, message: str) -> None:
        """Count a failure; store its message unless the cap is reached."""
        if len(self.failures) < self.max_stored_failures:
            self.failures.append(message)
        else:
            self.failures_truncated += 1


class ConBugCk:
    """Dependency-respecting configuration generator + driver."""

    #: Numeric parameters ConBugCk samples, with power-of-two handling.
    _POW2 = {"blocksize", "inode_size"}

    def __init__(self, dependencies: Sequence[Dependency], seed: int = 2022) -> None:
        self.dependencies = list(dependencies)
        self.rng = random.Random(seed)
        self._index_dependencies()

    @classmethod
    def from_extraction(cls, seed: int = 2022, jobs: Optional[int] = None,
                        backend: Optional[str] = None) -> "ConBugCk":
        """Build from a fresh Table-5 extraction (validated deps only).

        ``jobs``/``backend`` shape the *extraction* phase only — the
        violation campaign itself always fans out over threads
        (device snapshots are cheap in-process state).
        """
        from repro.analysis.extractor import extract_all

        return cls(extract_all(jobs=jobs, backend=backend).true_dependencies(),
                   seed=seed)

    def _index_dependencies(self) -> None:
        # The index itself lives in repro.perf.sampling so samplers and
        # shard workers can consult it without constructing a checker;
        # the attribute views keep the historical surface.
        self.constraints = ConstraintIndex.from_dependencies(self.dependencies)
        self._requires = self.constraints.requires
        self._conflicts = self.constraints.conflicts
        self._ranges = self.constraints.ranges

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate(self, count: int) -> List[GeneratedConfig]:
        """Generate ``count`` dependency-respecting configurations."""
        return [self._generate_one() for _ in range(count)]

    def _generate_one(self) -> GeneratedConfig:
        features = self._sample_features()
        blocksize = self._sample_pow2("blocksize", (1024, 2048, 4096))
        inode_size = self._sample_pow2("inode_size", (128, 256, 512, 1024))
        # CPD value: inode_size <= blocksize.
        inode_size = min(inode_size, blocksize)
        inode_ratio = self._sample_range("inode_ratio", default=(1024, 65536))
        reserved = self._sample_range("reserved_percent", default=(0, 50))
        mount_options = self._sample_mount_options(features)
        return GeneratedConfig(
            features=tuple(sorted(features)),
            blocksize=blocksize,
            inode_size=inode_size,
            inode_ratio=inode_ratio,
            reserved_percent=reserved,
            mount_options=mount_options,
        )

    def _sample_features(self) -> Set[str]:
        candidates = list(DEFAULT_EXT4_FEATURES) + [
            "sparse_super2", "bigalloc", "inline_data", "metadata_csum",
            "uninit_bg", "64bit", "quota", "project", "huge_file",
            "dir_nlink", "ea_inode", "large_dir", "encrypt",
            "casefold", "meta_bg",
        ]
        chosen = {f for f in candidates if self.rng.random() < 0.45}
        return self._repair_features(chosen)

    def _repair_features(self, chosen: Set[str]) -> Set[str]:
        """Enforce the extracted requires/conflicts dependencies."""
        for _ in range(10):
            changed = False
            for a, b in self._requires:
                if a in chosen and b not in chosen:
                    chosen.add(b)
                    changed = True
            for a, b in self._conflicts:
                if a in chosen and b in chosen:
                    chosen.discard(self.rng.choice((a, b)))
                    changed = True
            if not changed:
                return chosen
        raise ReproError("feature repair did not converge")

    def _sample_pow2(self, name: str, choices: Tuple[int, ...]) -> int:
        lo, hi = self._ranges.get(name, (None, None))
        valid = [c for c in choices
                 if (lo is None or c >= lo) and (hi is None or c <= hi)]
        return self.rng.choice(valid or list(choices))

    def _sample_range(self, name: str, default: Tuple[int, int]) -> int:
        lo, hi = self._ranges.get(name, (None, None))
        lo = lo if lo is not None else default[0]
        hi = hi if hi is not None else default[1]
        return self.rng.randint(lo, min(hi, default[1]))

    def _sample_mount_options(self, features: Set[str]) -> str:
        opts: List[str] = []
        if self.rng.random() < 0.3:
            opts.append("noatime")
        if self.rng.random() < 0.3:
            opts.append(f"commit={self.rng.randint(0, 900)}")
        if self.rng.random() < 0.2 and "has_journal" in features:
            # CPD: journal_async_commit requires journal_checksum.
            opts.append("journal_checksum")
            if self.rng.random() < 0.5:
                opts.append("journal_async_commit")
        if self.rng.random() < 0.2:
            mode = self.rng.choice(("ordered", "writeback"))
            opts.append(f"data={mode}")
        if self.rng.random() < 0.2:
            opts.append(f"journal_ioprio={self.rng.randint(0, 7)}")
        return ",".join(opts)

    # ------------------------------------------------------------------
    # naive baseline
    # ------------------------------------------------------------------

    def generate_naive(self, count: int) -> List[GeneratedConfig]:
        """Random configurations with no dependency awareness."""
        out: List[GeneratedConfig] = []
        feature_pool = list(all_feature_names())
        for _ in range(count):
            features = tuple(sorted(
                f for f in feature_pool if self.rng.random() < 0.3))
            opts: List[str] = []
            if self.rng.random() < 0.4:
                opts.append(f"commit={self.rng.randint(-100, 2000)}")
            if self.rng.random() < 0.3:
                opts.append("journal_async_commit")
            if self.rng.random() < 0.3:
                opts.append("data=journal")
            if self.rng.random() < 0.2:
                opts.append("noload")
            out.append(GeneratedConfig(
                features=features,
                blocksize=self.rng.choice((512, 1024, 2048, 4096, 131072)),
                inode_size=self.rng.choice((64, 128, 256, 8192)),
                inode_ratio=self.rng.choice((256, 1024, 16384, 8388608)),
                reserved_percent=self.rng.randint(0, 60),
                mount_options=",".join(opts),
            ))
        return out

    # ------------------------------------------------------------------
    # campaign sweeps
    # ------------------------------------------------------------------

    def generate_mount_sweep(self, count: int, bases: int = 3,
                             fs_blocks: int = 512,
                             blocksize: Optional[int] = None,
                             violate_rate: float = 0.7,
                             ) -> List[GeneratedConfig]:
        """A mount-option sweep over a handful of shared on-disk formats.

        Checker campaigns sweep cheap runtime knobs (mount options) far
        more often than they churn the on-disk format: the sweep samples
        ``bases`` dependency-respecting mkfs tuples — each validated
        against a scratch device, resampling rejects — then emits
        ``count`` configurations cycling over them, differing only in
        mount options.  A ``violate_rate`` fraction draws from
        :data:`VIOLATING_MOUNT_OPTIONS` (the paper's observation that
        naive configurations die shallow, at mount validation); the rest
        sample guided options.  ``blocksize`` pins the on-disk block
        size (inode size clamped to match).  RNG consumption is strictly
        sequential, so a sweep reproduces exactly no matter how it is
        later driven.

        The option draw is a :class:`~repro.perf.sampling.
        OptionSweepSampler` over the violating pool, which makes the
        pool-size cap explicit: a sweep can never contain more than
        ``sampler.distinct_violations_cap`` (= ``len(
        VIOLATING_MOUNT_OPTIONS)``) distinct violating options, no
        matter how large ``count`` is.  Registry-wide breadth is the
        sampled-campaign entry points' job (:func:`sampled_campaign`),
        not this sweep's.
        """
        if bases <= 0:
            raise ValueError(f"bases must be positive, got {bases}")
        base_configs: List[GeneratedConfig] = []
        attempts = 0
        while len(base_configs) < bases:
            attempts += 1
            if attempts > 50 * bases:
                raise ReproError("mount sweep found too few mkfs-valid bases")
            cand = self._generate_one()
            if blocksize is not None:
                cand = replace(cand, blocksize=blocksize,
                               inode_size=min(cand.inode_size, blocksize))
            try:
                scratch = BlockDevice(fs_blocks, cand.blocksize)
                Mke2fs.from_args(cand.mke2fs_args(fs_blocks)).run(scratch)
            except (ValueError, ReproError):
                continue
            base_configs.append(cand)
        sampler = OptionSweepSampler(
            self.rng, VIOLATING_MOUNT_OPTIONS, violate_rate,
            self._sample_mount_options)
        sweep: List[GeneratedConfig] = []
        for i in range(count):
            base = base_configs[i % len(base_configs)]
            options = sampler.draw(set(base.features))
            sweep.append(replace(base, mount_options=options))
        return sweep

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def drive(self, configs: Sequence[GeneratedConfig],
              fs_blocks: int = 512,
              jobs: Optional[int] = None,
              snapshot_cache: Union[bool, SnapshotCache] = True,
              track_io: bool = True) -> DriveStats:
        """Run each configuration through the full ecosystem pipeline.

        This is the campaign engine's main entry: configurations fan out
        over the ``--jobs``/``REPRO_JOBS`` thread pool (driving only —
        generation already consumed the RNG sequentially) and per-config
        outcomes are merged in spec order, so the returned
        :class:`DriveStats` is identical for any job count.

        ``snapshot_cache`` controls the post-mkfs snapshot cache:
        ``True`` (default) uses a fresh per-campaign cache, ``False``
        re-runs mkfs for every configuration, and passing a
        :class:`~repro.perf.SnapshotCache` shares snapshots across
        campaigns.  mkfs is deterministic, so the cache never changes
        results — configurations sharing the mkfs-relevant tuple clone
        one formatted image instead of re-formatting.  ``track_io=False``
        skips the per-block accounting campaigns never read.
        """
        cache: Optional[SnapshotCache]
        if snapshot_cache is True:
            cache = SnapshotCache()
        elif snapshot_cache is False:
            cache = None
        else:
            cache = snapshot_cache
        outcomes = run_campaign(
            lambda config: self._drive_one(config, fs_blocks, cache, track_io),
            configs, jobs=jobs, phase="campaign.drive")
        stats = DriveStats(total=len(configs))
        for reached, failure in outcomes:
            for stage in reached:
                stats.reached[stage] += 1
            if failure is not None:
                stats.record_failure(failure)
        return stats

    def _mkfs_device(self, config: GeneratedConfig, fs_blocks: int,
                     cache: Optional[SnapshotCache],
                     track_io: bool) -> BlockDevice:
        """A freshly formatted device for ``config`` (cached or cold)."""
        def build(dev: BlockDevice) -> None:
            Mke2fs.from_args(config.mke2fs_args(fs_blocks)).run(dev)

        if cache is None:
            dev = BlockDevice(fs_blocks, config.blocksize, track_io=track_io)
            build(dev)
            return dev
        # Everything mkfs consumes — mount_options is the only field of
        # a GeneratedConfig that is not part of the on-disk format.
        key = (config.features, config.blocksize, config.inode_size,
               config.inode_ratio, config.reserved_percent, fs_blocks)
        return cache.device_for(key, fs_blocks, config.blocksize, build,
                                track_io=track_io)

    def _drive_one(self, config: GeneratedConfig, fs_blocks: int,
                   cache: Optional[SnapshotCache] = None,
                   track_io: bool = True,
                   ) -> Tuple[Tuple[str, ...], Optional[str]]:
        """Drive one configuration; returns (stages reached, failure).

        Pure with respect to the generator: no RNG, no shared mutable
        state — which is what makes the parallel fan-out deterministic.
        """
        with span("conbugck.config", blocksize=config.blocksize,
                  mount_options=config.mount_options):
            return self._drive_one_inner(config, fs_blocks, cache, track_io)

    def _drive_one_inner(self, config: GeneratedConfig, fs_blocks: int,
                         cache: Optional[SnapshotCache],
                         track_io: bool,
                         ) -> Tuple[Tuple[str, ...], Optional[str]]:
        reached: List[str] = []
        try:
            with timed("campaign.stage.mkfs"):
                dev = self._mkfs_device(config, fs_blocks, cache, track_io)
        except ValueError as exc:
            return (), f"device: {exc}"
        except ReproError as exc:
            return (), f"mkfs: {exc}"
        reached.append("mkfs")
        try:
            with timed("campaign.stage.mount"):
                handle = Ext4Mount.mount(dev, config.mount_options)
        except ReproError as exc:
            return tuple(reached), f"mount: {exc}"
        reached.append("mount")
        try:
            with timed("campaign.stage.use"):
                ino = handle.create_file(4, fragmented=True)
                handle.delete_file(ino)
                handle.create_file(2)
                handle.umount()
        except ReproError as exc:
            return tuple(reached), f"use: {exc}"
        reached.append("use")
        with timed("campaign.stage.fsck"):
            result = E2fsck(E2fsckConfig(force=True, no_changes=True)).run(dev)
        if result.is_clean:
            reached.append("fsck-clean")
            return tuple(reached), None
        return tuple(reached), (
            f"fsck: {len(result.problems)} problems under {config.features}")


# ---------------------------------------------------------------------------
# sampled campaigns: registry-wide sharded sweeps
# ---------------------------------------------------------------------------
#
# The entry points below scale ConBugCk past hand-enumerated lists: a
# seeded sampler (repro.perf.sampling) generates configurations over the
# full mke2fs+mount param registry, and the sharded streaming driver
# (repro.perf.campaign.run_sharded) fans contiguous index ranges across
# the thread or process backend.  Each shard regenerates its own slice
# from (seed, index) — no config list is ever materialized — and folds
# outcomes into a bounded ShardAggregate, so campaign memory stays
# constant regardless of N.

#: mkfs params a GeneratedConfig can express numerically.  Everything
#: else in the mke2fs component (journal sizing, group geometry, usage
#: types, ...) has no lever in ``GeneratedConfig.mke2fs_args`` and is
#: excluded from the sampling space rather than sampled as a silent
#: no-op.
_MKFS_NUMERIC = ("blocksize", "inode_size", "inode_ratio",
                 "reserved_percent")

#: Probe override: cap sampled block sizes so a sampled device stays a
#: few MiB (the registry allows 64 KiB blocks; 512 fs_blocks of those is
#: 32 MiB per config — pointless for dependency probing).
_CAMPAIGN_PROBES = {"blocksize": (1024, 2048, 4096)}

#: Outcome-memo cap per shard: sampled campaigns repeat (format, mount)
#: pairs heavily (the whole pipeline is deterministic, so a repeated
#: config has a known outcome), but a diverse shard must not hoard
#: unbounded memo entries either.
_OUTCOME_MEMO_CAP = 1 << 16

_MOUNT_PARAMS: Optional[Dict[str, ConfigParam]] = None


def _mount_params() -> Dict[str, ConfigParam]:
    """The registry's mount-component params, by name (lazy, cached)."""
    global _MOUNT_PARAMS
    if _MOUNT_PARAMS is None:
        _MOUNT_PARAMS = {p.name: p for p in EXT4_REGISTRY
                         if p.component == "mount"}
    return _MOUNT_PARAMS


def build_campaign_space() -> ConfigSpace:
    """The sampling space for registry-wide ConBugCk campaigns.

    mke2fs contributes its feature flags (every name mkfs's ``-O``
    accepts) plus the four numeric knobs a :class:`GeneratedConfig`
    expresses; mount contributes every finite-domain option.  Params a
    generated config cannot express are excluded up front — sampling
    them would silently not vary anything.
    """
    space = ConfigSpace.from_registry(
        EXT4_REGISTRY, components=("mke2fs", "mount"),
        probe_overrides=_CAMPAIGN_PROBES)
    feature_names = set(all_feature_names())
    keep = [d for d in space.domains
            if d.component == "mount"
            or d.name in feature_names
            or d.name in _MKFS_NUMERIC]
    return ConfigSpace(keep)


def _mount_token(param: ConfigParam, value: object) -> Optional[str]:
    """The mount-option token for one sampled value, or ``None``.

    Values equal to the param's default are omitted (the kernel applies
    them anyway, and emitting them would bloat every option string).
    Flags emit ``name`` / ``noname``; valued params emit
    ``name=value`` — the exact grammar the simulated mount parses.
    """
    if value == param.default:
        return None
    if param.kind is ParamKind.FLAG:
        return param.name if value else f"no{param.name}"
    return f"{param.name}={value}"


def config_from_assignment(space: ConfigSpace,
                           assignment: Assignment) -> GeneratedConfig:
    """Adapt one sampled assignment into a driveable GeneratedConfig.

    Deterministic and order-stable: features sort alphabetically (the
    generator's own convention) and mount options follow registry
    registration order, so the same assignment always produces the same
    config — and therefore the same campaign digest.
    """
    mount_params = _mount_params()
    feature_names = set(all_feature_names())
    features: List[str] = []
    numerics: Dict[str, int] = {}
    options: List[str] = []
    for domain, value in zip(space.domains, assignment):
        if domain.component == "mke2fs":
            if domain.name in _MKFS_NUMERIC:
                numerics[domain.name] = int(value)  # type: ignore[arg-type]
            elif value is True and domain.name in feature_names:
                features.append(domain.name)
            continue
        token = _mount_token(mount_params[domain.name], value)
        if token is not None:
            options.append(token)
    return GeneratedConfig(
        features=tuple(sorted(features)),
        blocksize=numerics["blocksize"],
        inode_size=numerics["inode_size"],
        inode_ratio=numerics["inode_ratio"],
        reserved_percent=numerics["reserved_percent"],
        mount_options=",".join(options),
    )


def config_row(config: GeneratedConfig) -> List[object]:
    """A plain-container form of one config (codec/pickle-safe)."""
    return [list(config.features), config.blocksize, config.inode_size,
            config.inode_ratio, config.reserved_percent,
            config.mount_options]


def config_from_row(row: Sequence[object]) -> GeneratedConfig:
    features, blocksize, inode_size, inode_ratio, reserved, options = row
    return GeneratedConfig(
        features=tuple(features),  # type: ignore[arg-type]
        blocksize=int(blocksize),  # type: ignore[call-overload]
        inode_size=int(inode_size),  # type: ignore[call-overload]
        inode_ratio=int(inode_ratio),  # type: ignore[call-overload]
        reserved_percent=int(reserved),  # type: ignore[call-overload]
        mount_options=str(options),
    )


def _drive_config_fast(config: GeneratedConfig, fs_blocks: int,
                       cache: SnapshotCache,
                       ) -> Tuple[Tuple[str, ...], Optional[str]]:
    """One config through mkfs→mount→use→fsck, hot-loop variant.

    Outcome-identical to :meth:`ConBugCk._drive_one_inner` with a cache
    (same stage labels, same failure strings) but stripped for campaign
    shards: no per-config span/timer (a 10^6-config shard cannot afford
    two context managers per stage) and flat-image snapshot clones
    (:meth:`SnapshotCache.clone_flat`) with IO accounting off.
    """
    def build(dev: BlockDevice) -> None:
        Mke2fs.from_args(config.mke2fs_args(fs_blocks)).run(dev)

    key = (config.features, config.blocksize, config.inode_size,
           config.inode_ratio, config.reserved_percent, fs_blocks)
    reached: List[str] = []
    try:
        dev = cache.clone_flat(key, fs_blocks, config.blocksize, build)
    except ValueError as exc:
        return (), f"device: {exc}"
    except ReproError as exc:
        return (), f"mkfs: {exc}"
    reached.append("mkfs")
    try:
        handle = Ext4Mount.mount(dev, config.mount_options)
    except ReproError as exc:
        return tuple(reached), f"mount: {exc}"
    reached.append("mount")
    try:
        ino = handle.create_file(4, fragmented=True)
        handle.delete_file(ino)
        handle.create_file(2)
        handle.umount()
    except ReproError as exc:
        return tuple(reached), f"use: {exc}"
    reached.append("use")
    result = E2fsck(E2fsckConfig(force=True, no_changes=True)).run(dev)
    if result.is_clean:
        reached.append("fsck-clean")
        return tuple(reached), None
    return tuple(reached), (
        f"fsck: {len(result.problems)} problems under {config.features}")


def _sampler_from_spec(spec: Dict[str, Any]):
    """Rebuild (space, sampler) inside a shard from its spec dict."""
    space = build_campaign_space()
    constraints = None
    if spec.get("constraints") is not None:
        constraints = ConstraintIndex.from_payload(spec["constraints"])
    sampler = make_sampler(space, str(spec["kind"]), int(spec["seed"]),
                           spec.get("budget"), t=spec.get("t"),
                           constraints=constraints)
    return space, sampler


def run_shard(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Drive global config indices ``[spec['lo'], spec['hi'])``.

    The shard runner behind :data:`repro.perf.campaign.SHARD_RUNNERS`
    ["conbugck"]: regenerates its own slice (``source="sampler"``) or
    drives an explicit config slice shipped as ``spec['hint']``
    (``source="configs"``), folds outcomes into a bounded
    :class:`~repro.perf.campaign.ShardAggregate`, and reports shard-
    local cache traffic in the payload counters.  Pure: fresh snapshot
    cache and memo per shard, no shared mutable state — which is what
    makes thread, process, and sequential runs byte-identical.
    """
    lo, hi = int(spec["lo"]), int(spec["hi"])
    fs_blocks = int(spec.get("fs_blocks", 512))
    aggregate = ShardAggregate()
    cache = SnapshotCache()
    # Full-outcome memo: the simulated pipeline is deterministic, so a
    # repeated (format, mount-options) pair has a known outcome and the
    # drive can be skipped outright (bounded by _OUTCOME_MEMO_CAP).
    memo: Dict[Tuple, Tuple[Tuple[str, ...], Optional[str]]] = {}

    if spec.get("source") == "configs":
        rows = spec.get("hint") or []
        items = ((lo + offset, config_from_row(row))
                 for offset, row in enumerate(rows))
        sampler = None
    else:
        space, sampler = _sampler_from_spec(spec)
        items = ((index, config_from_assignment(space, assignment))
                 for index, assignment in
                 sampler.iter_range(lo, hi, hint=spec.get("hint")))

    for index, config in items:
        memo_key = (config.features, config.blocksize, config.inode_size,
                    config.inode_ratio, config.reserved_percent,
                    config.mount_options, fs_blocks)
        outcome = memo.get(memo_key)
        if outcome is None:
            outcome = _drive_config_fast(config, fs_blocks, cache)
            if len(memo) < _OUTCOME_MEMO_CAP:
                memo[memo_key] = outcome
            aggregate.tally("campaign.outcome.miss")
        else:
            aggregate.tally("campaign.outcome.hit")
        aggregate.add(index, outcome[0], outcome[1])

    aggregate.tally("campaign.snapshot.hit", cache.hits)
    aggregate.tally("campaign.snapshot.miss", cache.misses)
    if sampler is not None and hasattr(sampler, "skipped"):
        aggregate.tally("campaign.infeasible_skipped", sampler.skipped)
    return aggregate.as_payload()


def sampled_campaign(dependencies: Sequence[Dependency] = (),
                     sample: str = "random",
                     seed: int = 2022,
                     budget: Optional[int] = None,
                     shards: int = 1,
                     fs_blocks: int = 512,
                     jobs: Optional[int] = None,
                     backend: Optional[str] = None,
                     transport: Optional[str] = None,
                     ) -> Tuple[CampaignReport, Dict[str, Any]]:
    """Sample the registry and drive the campaign in streaming shards.

    ``sample`` follows ``--sample`` grammar (``random``, ``pairwise``,
    ``twise:<t>``, each optionally ``+feasible``); ``+feasible``
    consults ``dependencies`` (the Table-5 extraction) to skip configs
    mkfs would reject before they are ever driven.  Returns the merged
    :class:`~repro.perf.campaign.CampaignReport` plus a meta dict
    (sampler name, seed, budget, totals, space size) for manifests and
    status output.

    Counters: ``campaign.sampled`` (configs driven),
    ``campaign.infeasible_skipped`` (raw draws the constraint check
    rejected), ``campaign.shards``.
    """
    kind, t, feasible = parse_sample_spec(sample)
    space = build_campaign_space()
    constraints = None
    if feasible:
        constraints = ConstraintIndex.from_dependencies(dependencies)
    sampler = make_sampler(space, kind, seed, budget, t=t,
                           constraints=constraints)
    with timed("campaign.sample"):
        total = sampler.total()
    bump("campaign.sampled", total)
    skipped = int(getattr(sampler, "skipped", 0))
    if skipped:
        bump("campaign.infeasible_skipped", skipped)
    ranges = shard_ranges(total, shards)
    hints = sampler.shard_hints(ranges)
    spec: Dict[str, Any] = {
        "tool": "conbugck", "source": "sampler", "kind": kind, "t": t,
        "seed": seed, "budget": budget, "fs_blocks": fs_blocks,
    }
    if constraints is not None:
        spec["constraints"] = constraints.as_payload()
    report = run_sharded("conbugck", spec, total, shards=shards, jobs=jobs,
                         backend=backend, transport=transport, hints=hints)
    meta = {
        "sampler": sampler.name,
        "seed": seed,
        "budget": budget,
        "total": total,
        "shards": len(ranges),
        "space_params": len(space),
        "space_combinations": space.combinations(),
        "infeasible_skipped": skipped,
    }
    return report, meta


def sweep_campaign(configs: Sequence[GeneratedConfig],
                   fs_blocks: int = 512,
                   shards: int = 1,
                   jobs: Optional[int] = None,
                   backend: Optional[str] = None,
                   transport: Optional[str] = None,
                   ) -> CampaignReport:
    """Drive an explicit config list through the sharded streaming
    driver (``source="configs"``): each shard receives only its own
    slice as the shard hint, so no shard ever holds the full list."""
    total = len(configs)
    ranges = shard_ranges(total, shards)
    hints = [[config_row(c) for c in configs[lo:hi]] for lo, hi in ranges]
    spec: Dict[str, Any] = {"tool": "conbugck", "source": "configs",
                            "fs_blocks": fs_blocks}
    return run_sharded("conbugck", spec, total, shards=shards, jobs=jobs,
                       backend=backend, transport=transport, hints=hints)
