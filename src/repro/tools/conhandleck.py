"""ConHandleCk: dependency-violation robustness testing (paper §4.2).

For each validated dependency, ConHandleCk constructs a configuration
that *violates* it and runs the violation against the simulated
ecosystem, observing how the components handle it:

- ``REJECTED`` — a component refused the configuration with a clear
  error (graceful handling),
- ``ADJUSTED`` — a component silently corrected the configuration
  (e.g. the kernel forcing delalloc off under data=journal),
- ``ACCEPTED`` — the violation went through with no visible reaction,
- ``CORRUPTION`` — the run completed but e2fsck finds damaged metadata
  afterwards (bad configuration handling),
- ``NOT_EXERCISED`` — no violation driver for this dependency.

On the shipped corpus this reproduces the paper's §4.3 finding: exactly
one bad-handling case, where resize2fs corrupts the file system
(expanding a ``sparse_super2`` file system — Figure 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.model import Category, Dependency, ParamRef, SubKind
from repro.ecosystem.e2fsck import E2fsck, E2fsckConfig
from repro.ecosystem.mke2fs import Mke2fs
from repro.ecosystem.mount import Ext4Mount
from repro.ecosystem.resize2fs import Resize2fs, Resize2fsConfig
from repro.errors import MountError, ReproError, UsageError
from repro.fsimage.blockdev import BlockDevice
from repro.obs.tracer import span
from repro.perf import SnapshotCache, run_campaign


class ViolationOutcome(enum.Enum):
    """How the ecosystem handled one violation."""
    REJECTED = "rejected"
    ADJUSTED = "adjusted"
    ACCEPTED = "accepted"
    CORRUPTION = "corruption"
    NOT_EXERCISED = "not-exercised"


@dataclass
class ViolationResult:
    """Outcome of violating one dependency."""

    dependency: Dependency
    outcome: ViolationOutcome
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.outcome.value}] {self.dependency.describe()} — {self.detail}"


@dataclass
class ViolationReport:
    """Aggregate over all violated dependencies."""

    results: List[ViolationResult] = field(default_factory=list)

    def by_outcome(self) -> Dict[ViolationOutcome, int]:
        """Result counts per outcome."""
        out = {o: 0 for o in ViolationOutcome}
        for r in self.results:
            out[r.outcome] += 1
        return out

    def bad_handling(self) -> List[ViolationResult]:
        """The cases the paper calls bad configuration handling."""
        return [r for r in self.results
                if r.outcome in (ViolationOutcome.CORRUPTION,)]


# ---------------------------------------------------------------------------
# parameter setters: how to express a parameter on the CLI surface
# ---------------------------------------------------------------------------

#: mke2fs numeric/flag options: param name -> args contribution when
#: "enabled" with a benign value.
_MKE2FS_OPTION_ARGS: Dict[str, List[str]] = {
    "blocksize": ["-b", "4096"],
    "cluster_size": ["-C", "16384"],
    "blocks_per_group": ["-g", "1024"],
    "number_of_groups": ["-G", "16"],
    "inode_ratio": ["-i", "16384"],
    "inode_size": ["-I", "256"],
    "journal_size": ["-J", "size=4"],
    "reserved_percent": ["-m", "5"],
    "inode_count": ["-N", "1024"],
    "stride": ["-E", "stride=16"],
    "stripe_width": ["-E", "stripe_width=64"],
    "resize_limit": ["-E", "resize=65536"],
}

#: Out-of-range values per ranged parameter (component, name) -> args.
_RANGE_VIOLATIONS: Dict[Tuple[str, str], object] = {
    ("mke2fs", "blocksize"): ["-b", "131072"],
    ("mke2fs", "blocks_per_group"): ["-g", "128"],
    ("mke2fs", "number_of_groups"): ["-O", "flex_bg", "-G", "0"],
    ("mke2fs", "inode_ratio"): ["-i", "512"],
    ("mke2fs", "inode_size"): ["-I", "8192"],
    ("mke2fs", "journal_size"): ["-j", "-J", "size=0"],
    ("mke2fs", "reserved_percent"): ["-m", "80"],
    ("mke2fs", "fs_size"): ["32"],
    ("mount", "commit"): "commit=1000",
    ("mount", "journal_ioprio"): "journal_ioprio=9",
    ("mount", "barrier"): "barrier=2",
    ("mount", "auto_da_alloc"): "auto_da_alloc=5",
    ("mount", "max_batch_time"): "max_batch_time=-1",
    ("mount", "min_batch_time"): "min_batch_time=-1",
}

#: Type violations: non-numeric text for typed parameters.
_TYPE_VIOLATIONS: Dict[Tuple[str, str], object] = {
    ("mke2fs", "blocksize"): ["-b", "huge"],
    ("mke2fs", "cluster_size"): ["-C", "big"],
    ("mke2fs", "blocks_per_group"): ["-g", "many"],
    ("mke2fs", "number_of_groups"): ["-G", "some"],
    ("mke2fs", "inode_ratio"): ["-i", "dense"],
    ("mke2fs", "inode_size"): ["-I", "large"],
    ("mke2fs", "journal_size"): ["-J", "size=big"],
    ("mke2fs", "reserved_percent"): ["-m", "half"],
    ("mke2fs", "inode_count"): ["-N", "lots"],
    ("mke2fs", "fs_size"): ["10Q"],
    ("mount", "commit"): "commit=soon",
    ("mount", "resuid"): "resuid=root",
    ("mount", "resgid"): "resgid=wheel",
    ("mount", "journal_ioprio"): "journal_ioprio=high",
    ("mount", "stripe"): "stripe=wide",
}

#: Feature parameters of mke2fs (everything togglable via -O).
def _is_feature(name: str) -> bool:
    from repro.ecosystem.featureset import all_feature_names

    return name in all_feature_names()


class ConHandleCk:
    """The dependency-violation robustness checker."""

    def __init__(self, device_blocks: int = 4096, block_size: int = 4096) -> None:
        self.device_blocks = device_blocks
        self.block_size = block_size
        # Post-mkfs snapshots shared across violation runs: every mount
        # violation formats the same base image, and SD violations repeat
        # argument vectors — mkfs is deterministic, so cloning is exact.
        self._snapshots = SnapshotCache()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def check(self, dependencies: Sequence[Dependency],
              jobs: Optional[int] = None) -> ViolationReport:
        """Violate every dependency; returns the report.

        Violations fan out over the ``--jobs``/``REPRO_JOBS`` thread
        pool and merge back in dependency order — each run builds its
        own device (snapshot clones included), so the report is
        identical for any job count.
        """
        report = ViolationReport()
        report.results.extend(run_campaign(
            self.violate, dependencies, jobs=jobs, phase="campaign.violate"))
        return report

    def check_extracted(self, jobs: Optional[int] = None,
                        backend: Optional[str] = None) -> ViolationReport:
        """Run extraction and violate every validated dependency.

        ``backend`` shapes the *extraction* phase only; the violation
        campaign always fans out over threads (device snapshots are
        cheap in-process state).
        """
        from repro.analysis.extractor import extract_all

        deps = extract_all(jobs=jobs, backend=backend).true_dependencies()
        return self.check(deps, jobs=jobs)

    # ------------------------------------------------------------------
    # single-dependency drivers
    # ------------------------------------------------------------------

    def violate(self, dep: Dependency) -> ViolationResult:
        """Construct and run the violation for one dependency."""
        with span("conhandleck.violate", dependency=dep.key()):
            try:
                if dep.kind is SubKind.SD_VALUE_RANGE:
                    return self._violate_sd(dep, _RANGE_VIOLATIONS)
                if dep.kind is SubKind.SD_DATA_TYPE:
                    return self._violate_sd(dep, _TYPE_VIOLATIONS)
                if dep.category is Category.CPD:
                    return self._violate_cpd(dep)
                if dep.category is Category.CCD:
                    return self._violate_ccd(dep)
            except ReproError as exc:  # defensive: unexpected error path
                return ViolationResult(dep, ViolationOutcome.ACCEPTED,
                                       f"unexpected error {exc}")
            return ViolationResult(dep, ViolationOutcome.NOT_EXERCISED,
                                   "no violation driver")

    # ---- SD --------------------------------------------------------------

    def _violate_sd(self, dep: Dependency,
                    table: Dict[Tuple[str, str], object]) -> ViolationResult:
        param = dep.params[0]
        spec = table.get((param.component, param.name))
        if spec is None:
            return ViolationResult(dep, ViolationOutcome.NOT_EXERCISED,
                                   "no violation value for this parameter")
        if param.component == "mke2fs":
            return self._run_mke2fs(dep, list(spec))
        if param.component == "mount":
            return self._run_mount(dep, str(spec))
        return ViolationResult(dep, ViolationOutcome.NOT_EXERCISED,
                               f"no driver for component {param.component}")

    # ---- CPD --------------------------------------------------------------

    def _violate_cpd(self, dep: Dependency) -> ViolationResult:
        relation = dep.constraint_dict.get("relation", "conflicts")
        a, b = dep.params[0], dep.params[1]
        if a.component == "mke2fs":
            return self._violate_mke2fs_cpd(dep, a, b, relation)
        if a.component == "mount":
            return self._violate_mount_cpd(dep, a, b, relation)
        return ViolationResult(dep, ViolationOutcome.NOT_EXERCISED,
                               f"no CPD driver for {a.component}")

    def _violate_mke2fs_cpd(self, dep: Dependency, a: ParamRef, b: ParamRef,
                            relation: str) -> ViolationResult:
        args: List[str] = []
        features: List[str] = []

        def enable(p: ParamRef) -> None:
            if _is_feature(p.name):
                features.append(p.name)
            else:
                args.extend(_MKE2FS_OPTION_ARGS.get(p.name, []))

        def disable(p: ParamRef) -> None:
            if _is_feature(p.name):
                features.append("^" + p.name)
            # a numeric option is disabled by omission

        if dep.kind is SubKind.CPD_VALUE:
            return self._violate_mke2fs_cpd_value(dep, a, b)
        if relation == "conflicts":
            enable(a)
            enable(b)
        else:  # a requires b: enable a, disable b
            enable(a)
            disable(b)
            # satisfy unrelated prerequisites so only this rule fires
            features.extend(self._prerequisites(a, exclude=b.name))
        if features:
            args = ["-O", ",".join(features)] + args
        return self._run_mke2fs(dep, args)

    @staticmethod
    def _prerequisites(param: ParamRef, exclude: str) -> List[str]:
        """Extra features a violation setup needs (e.g. -C needs bigalloc)."""
        needs = {
            "cluster_size": ["bigalloc", "extent"],
            "journal_size": ["has_journal"],
            "bigalloc": [],
            "resize_limit": ["resize_inode"],
            "number_of_groups": ["flex_bg"],
        }
        return [f for f in needs.get(param.name, []) if f != exclude]

    def _violate_mke2fs_cpd_value(self, dep: Dependency, a: ParamRef,
                                  b: ParamRef) -> ViolationResult:
        if {a.name, b.name} == {"cluster_size", "blocksize"}:
            args = ["-O", "bigalloc,extent", "-b", "4096", "-C", "4096"]
        elif {a.name, b.name} == {"inode_size", "blocksize"}:
            args = ["-b", "2048", "-I", "4096", "-F"]
        else:
            return ViolationResult(dep, ViolationOutcome.NOT_EXERCISED,
                                   "no value-violation driver")
        return self._run_mke2fs(dep, args)

    def _violate_mount_cpd(self, dep: Dependency, a: ParamRef, b: ParamRef,
                           relation: str) -> ViolationResult:
        combos = {
            frozenset({"journal_async_commit", "journal_checksum"}):
                "journal_async_commit",
            frozenset({"dax", "data"}): "dax,data=journal",
            frozenset({"noload", "ro"}): "noload",
            frozenset({"max_batch_time", "min_batch_time"}):
                "min_batch_time=20000,max_batch_time=10000",
            frozenset({"data", "delalloc"}): "data=journal,delalloc",
        }
        opts = combos.get(frozenset({a.name, b.name}))
        if opts is None:
            return ViolationResult(dep, ViolationOutcome.NOT_EXERCISED,
                                   "no mount-option combination driver")
        return self._run_mount(dep, opts, journal=True)

    # ---- CCD --------------------------------------------------------------

    def _violate_ccd(self, dep: Dependency) -> ViolationResult:
        drivers: Dict[str, Callable[[Dependency], ViolationResult]] = {
            "CCD.behavioral:mke2fs.fs_size,resize2fs.size@s_blocks_count":
                self._drive_plain_expand,
            "CCD.behavioral:mke2fs.sparse_super2,resize2fs.*@s_feature_compat":
                self._drive_sparse_super2_expand,
            "CCD.behavioral:mke2fs.resize_inode,resize2fs.size@s_feature_compat":
                self._drive_grow_without_resize_inode,
            "CCD.behavioral:mke2fs.resize_limit,resize2fs.size@s_reserved_gdt_blocks":
                self._drive_grow_past_reserved,
            "CCD.control:mke2fs.64bit,resize2fs.enable_64bit:conflicts@s_feature_incompat":
                self._drive_redundant_64bit,
        }
        driver = drivers.get(dep.key())
        if driver is None:
            return ViolationResult(dep, ViolationOutcome.NOT_EXERCISED,
                                   "no scenario driver")
        return driver(dep)

    def _drive_plain_expand(self, dep: Dependency) -> ViolationResult:
        """Expand without sparse_super2: the size relation handled well."""
        dev = BlockDevice(4096, 4096)
        Mke2fs.from_args(["-b", "4096", "2048"]).run(dev)
        Resize2fs(Resize2fsConfig(size="4096")).run(dev)
        return self._fsck_verdict(dep, dev, "plain expansion")

    def _drive_sparse_super2_expand(self, dep: Dependency) -> ViolationResult:
        """Figure 1: sparse_super2 + expansion => metadata corruption."""
        dev = BlockDevice(4096, 4096)
        Mke2fs.from_args(["-O", "sparse_super2,^resize_inode",
                          "-b", "4096", "2048"]).run(dev)
        Resize2fs(Resize2fsConfig(size="4096")).run(dev)
        return self._fsck_verdict(dep, dev, "sparse_super2 expansion")

    def _drive_grow_without_resize_inode(self, dep: Dependency) -> ViolationResult:
        dev = BlockDevice(16384, 1024)
        Mke2fs.from_args(["-b", "1024", "-g", "256",
                          "-O", "^resize_inode,^has_journal", "8192"]).run(dev)
        try:
            Resize2fs(Resize2fsConfig(size="12288")).run(dev)
        except UsageError as exc:
            return ViolationResult(dep, ViolationOutcome.REJECTED, str(exc))
        return self._fsck_verdict(dep, dev, "growth without resize_inode")

    def _drive_grow_past_reserved(self, dep: Dependency) -> ViolationResult:
        dev = BlockDevice(32768, 1024)
        Mke2fs.from_args(["-b", "1024", "-g", "256", "-O", "^has_journal",
                          "-E", "resize=11264", "8192"]).run(dev)
        try:
            Resize2fs(Resize2fsConfig(size="28672")).run(dev)
        except UsageError as exc:
            return ViolationResult(dep, ViolationOutcome.REJECTED, str(exc))
        return self._fsck_verdict(dep, dev, "growth past -E resize= limit")

    def _drive_redundant_64bit(self, dep: Dependency) -> ViolationResult:
        dev = BlockDevice(2048, 4096)
        Mke2fs.from_args(["-O", "64bit", "-b", "4096", "2048"]).run(dev)
        resizer = Resize2fs(Resize2fsConfig(enable_64bit=True))
        result = resizer.run(dev)
        if any("already" in m for m in result.messages):
            return ViolationResult(dep, ViolationOutcome.ADJUSTED,
                                   "resize2fs notices the feature is present")
        return self._fsck_verdict(dep, dev, "redundant 64-bit conversion")

    # ------------------------------------------------------------------
    # execution helpers
    # ------------------------------------------------------------------

    def _formatted_device(self, mk_args: List[str]) -> BlockDevice:
        """A fresh device formatted with ``mk_args``, via the snapshot cache."""
        return self._snapshots.device_for(
            ("mke2fs", tuple(mk_args), self.device_blocks, self.block_size),
            self.device_blocks, self.block_size,
            lambda dev: Mke2fs.from_args(mk_args).run(dev))

    def _run_mke2fs(self, dep: Dependency, args: List[str]) -> ViolationResult:
        try:
            dev = self._formatted_device(args)
        except UsageError as exc:
            return ViolationResult(dep, ViolationOutcome.REJECTED, str(exc))
        return self._fsck_verdict(dep, dev, f"mke2fs accepted {args}")

    def _run_mount(self, dep: Dependency, options: str,
                   journal: bool = False) -> ViolationResult:
        mk_args = ["-b", str(self.block_size), str(self.device_blocks)]
        if journal:
            mk_args = ["-j"] + mk_args
        dev = self._formatted_device(mk_args)
        try:
            handle = Ext4Mount.mount(dev, options)
        except (UsageError, MountError) as exc:
            return ViolationResult(dep, ViolationOutcome.REJECTED, str(exc))
        adjusted = "delalloc" in options and not handle.config.delalloc
        handle.umount()
        if adjusted:
            return ViolationResult(dep, ViolationOutcome.ADJUSTED,
                                   "kernel forced delalloc off under data=journal")
        return self._fsck_verdict(dep, dev, f"mount accepted -o {options}")

    def _fsck_verdict(self, dep: Dependency, dev: BlockDevice,
                      context: str) -> ViolationResult:
        check = E2fsck(E2fsckConfig(force=True, no_changes=True)).run(dev)
        if check.problems:
            details = "; ".join(p.message for p in check.problems[:3])
            return ViolationResult(dep, ViolationOutcome.CORRUPTION,
                                   f"{context}: e2fsck found {details}")
        return ViolationResult(dep, ViolationOutcome.ACCEPTED,
                               f"{context}; filesystem remained consistent")


# ---------------------------------------------------------------------------
# sharded violation campaigns
# ---------------------------------------------------------------------------
#
# The shard runner behind repro.perf.campaign.SHARD_RUNNERS
# ["conhandleck"]: a budgeted violation campaign draws dependencies
# (with replacement) through the counter-based sampling stream, so any
# shard can regenerate its own slice from (seed, index) alone.  Workers
# re-extract the validated dependency list themselves — the extraction
# is deterministic and disk-cached, so every shard sees the identical
# list in the identical order.

def _shard_dependencies():
    """The deterministic dependency list every shard regenerates."""
    from repro.analysis.extractor import extract_all

    return extract_all().true_dependencies()


def run_shard(spec: Dict[str, object]) -> Dict[str, object]:
    """Violate dependency draws for global indices ``[lo, hi)``.

    Without a budget the campaign is the dependency list itself (config
    index = dependency index); with one, index ``i`` draws dependency
    ``Stream(seed, i) % len(deps)`` — uniform with replacement, the
    regenerable-anywhere property sharding needs.  Outcomes fold into a
    bounded :class:`~repro.perf.campaign.ShardAggregate`: the digest
    covers (outcome, dependency key) per index, failure exemplars are
    the paper's bad-handling cases (corruption verdicts).
    """
    from repro.perf.campaign import ShardAggregate
    from repro.perf.sampling import Stream

    lo, hi = int(spec["lo"]), int(spec["hi"])  # type: ignore[arg-type]
    seed = int(spec.get("seed", 2022))  # type: ignore[arg-type]
    budget = spec.get("budget")
    deps = _shard_dependencies()
    checker = ConHandleCk(
        device_blocks=int(spec.get("device_blocks", 4096)),  # type: ignore[arg-type]
        block_size=int(spec.get("block_size", 4096)))  # type: ignore[arg-type]
    aggregate = ShardAggregate()
    memo: Dict[int, ViolationResult] = {}
    for index in range(lo, hi):
        if budget is None:
            dep_index = index
        else:
            dep_index = Stream(seed, index).next_word() % len(deps)
        result = memo.get(dep_index)
        if result is None:
            result = checker.violate(deps[dep_index])
            memo[dep_index] = result
            aggregate.tally("campaign.outcome.miss")
        else:
            aggregate.tally("campaign.outcome.hit")
        dep = deps[dep_index]
        failure = (f"{dep.key()} — {result.detail}"
                   if result.outcome is ViolationOutcome.CORRUPTION else None)
        aggregate.add(index, (result.outcome.value, dep.key()), failure)
    aggregate.tally("campaign.snapshot.hit", checker._snapshots.hits)
    aggregate.tally("campaign.snapshot.miss", checker._snapshots.misses)
    return aggregate.as_payload()


def sampled_check(dependencies: Sequence[Dependency],
                  seed: int = 2022,
                  budget: Optional[int] = None,
                  shards: int = 1,
                  jobs: Optional[int] = None,
                  backend: Optional[str] = None,
                  transport: Optional[str] = None,
                  device_blocks: int = 4096,
                  block_size: int = 4096):
    """Drive a (budgeted) violation campaign in streaming shards.

    Returns ``(CampaignReport, meta)``.  The report's ``reached`` maps
    outcome values to counts (every config also counts its dependency
    key, so per-dependency totals are recoverable); failure exemplars
    are the bad-handling cases.  ``budget=None`` violates each
    dependency exactly once — the classic :meth:`ConHandleCk.check` —
    while a budget scales the campaign to any size via seeded draws.
    """
    from repro.perf import bump
    from repro.perf.campaign import run_sharded, shard_ranges

    total = len(dependencies) if budget is None else int(budget)
    bump("campaign.sampled", total)
    spec: Dict[str, object] = {
        "tool": "conhandleck", "seed": seed, "budget": budget,
        "device_blocks": device_blocks, "block_size": block_size,
    }
    report = run_sharded("conhandleck", spec, total, shards=shards,
                         jobs=jobs, backend=backend, transport=transport,
                         phase="campaign.violate.sharded")
    meta = {
        "sampler": "deps" if budget is None else "random",
        "seed": seed,
        "budget": budget,
        "total": total,
        "shards": len(shard_ranges(total, shards)),
        "dependencies": len(dependencies),
    }
    return report, meta
