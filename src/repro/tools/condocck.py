"""ConDocCk: check manuals against code-extracted dependencies (§4.2).

For every *validated* (true) extracted dependency, ConDocCk looks for a
matching statement in the manual corpus:

- an SD data type must appear as a 'type' statement with the same type,
- an SD value range as a 'range' statement with the same bounds,
- a CPD/CCD control as a 'conflicts'/'requires' statement naming the
  partner parameter (on either side's entry),
- a CPD value as a 'value' statement naming the partner,
- a CCD behavioral as a 'behavioral' statement naming the writer
  parameter, in any entry of the reader component's manual.

Each unmatched or wrongly-stated dependency becomes a
:class:`DocIssue`.  On the shipped corpus this reproduces the paper's
§4.3 result: 12 inaccurate documentations out of 59 true dependencies,
including the meta_bg/resize_inode example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.model import Dependency, SubKind
from repro.ecosystem.manpages import (
    DocConstraint,
    ManualEntry,
    ManualPage,
    build_manual_corpus,
)
from repro.obs.tracer import span


@dataclass
class DocIssue:
    """One documentation inconsistency."""

    dependency: Dependency
    issue: str  # 'missing' or 'incorrect'
    detail: str

    def __str__(self) -> str:
        return f"[{self.issue}] {self.dependency.describe()} — {self.detail}"


class ConDocCk:
    """The documentation checker."""

    def __init__(self, manuals: Optional[Dict[str, ManualPage]] = None) -> None:
        self.manuals = manuals if manuals is not None else build_manual_corpus()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def check(self, dependencies: Sequence[Dependency]) -> List[DocIssue]:
        """Cross-check every dependency; returns the found issues."""
        with span("condocck.check", dependencies=len(dependencies)):
            issues: List[DocIssue] = []
            for dep in dependencies:
                issue = self._check_one(dep)
                if issue is not None:
                    issues.append(issue)
            return issues

    def check_extracted(self) -> List[DocIssue]:
        """Run extraction and check the validated true dependencies."""
        from repro.analysis.extractor import extract_all

        report = extract_all()
        return self.check(report.true_dependencies())

    # ------------------------------------------------------------------
    # per-dependency matching
    # ------------------------------------------------------------------

    def _check_one(self, dep: Dependency) -> Optional[DocIssue]:
        if dep.kind is SubKind.SD_DATA_TYPE:
            return self._check_sd_type(dep)
        if dep.kind is SubKind.SD_VALUE_RANGE:
            return self._check_sd_range(dep)
        if dep.kind in (SubKind.CPD_CONTROL, SubKind.CCD_CONTROL):
            return self._check_relational(dep, kinds=("conflicts", "requires"))
        if dep.kind in (SubKind.CPD_VALUE, SubKind.CCD_VALUE):
            return self._check_relational(dep, kinds=("value",))
        if dep.kind is SubKind.CCD_BEHAVIORAL:
            return self._check_behavioral(dep)
        return None

    def _entry(self, component: str, name: str) -> Optional[ManualEntry]:
        page = self.manuals.get(component)
        if page is None:
            return None
        return page.entries.get(name)

    def _check_sd_type(self, dep: Dependency) -> Optional[DocIssue]:
        param = dep.params[0]
        want = dep.constraint_dict.get("ctype")
        entry = self._entry(param.component, param.name)
        if entry is None:
            return DocIssue(dep, "missing", f"no manual entry for {param}")
        types = [c for c in entry.constraints if c.kind == "type"]
        if not types:
            return DocIssue(dep, "missing",
                            f"manual for {param} does not state the value type")
        if all(c.ctype != want for c in types):
            return DocIssue(dep, "incorrect",
                            f"manual says {types[0].ctype!r}, code expects {want!r}")
        return None

    def _check_sd_range(self, dep: Dependency) -> Optional[DocIssue]:
        param = dep.params[0]
        cdict = dep.constraint_dict
        entry = self._entry(param.component, param.name)
        if entry is None:
            return DocIssue(dep, "missing", f"no manual entry for {param}")
        ranges = [c for c in entry.constraints if c.kind == "range"]
        if not ranges:
            return DocIssue(dep, "missing",
                            f"manual for {param} does not state the valid range")
        want_min, want_max = cdict.get("min"), cdict.get("max")
        for doc in ranges:
            if doc.min_value == want_min and doc.max_value == want_max:
                return None
        doc = ranges[0]
        return DocIssue(dep, "incorrect",
                        f"manual says [{doc.min_value}, {doc.max_value}], "
                        f"code enforces [{want_min}, {want_max}]")

    def _check_relational(self, dep: Dependency,
                          kinds: Sequence[str]) -> Optional[DocIssue]:
        """Conflicts/requires/value: a statement on either side suffices."""
        a, b = dep.params[0], dep.params[-1]
        for this, other in ((a, b), (b, a)):
            entry = self._entry(this.component, this.name)
            if entry is None:
                continue
            for doc in entry.constraints:
                if doc.kind in kinds and doc.partner == str(other):
                    return None
        return DocIssue(dep, "missing",
                        f"neither {a} nor {b} documents the dependency")

    def _check_behavioral(self, dep: Dependency) -> Optional[DocIssue]:
        """Behavioral: the reader component's manual must mention the
        writer parameter somewhere (e.g. in a NOTES section)."""
        writer = dep.params[-1]
        reader_component = dep.params[0].component
        page = self.manuals.get(reader_component)
        if page is None:
            return DocIssue(dep, "missing",
                            f"no manual for component {reader_component!r}")
        for entry in page.entries.values():
            for doc in entry.constraints:
                if doc.kind in ("behavioral", "conflicts", "requires") and \
                        doc.partner == str(writer):
                    return None
        return DocIssue(dep, "missing",
                        f"manual of {reader_component} never mentions {writer}")
