"""repro — reproduction of *Understanding Configuration Dependencies of
File Systems* (HotStorage '22).

The package has four layers:

1. **Simulated Ext4 ecosystem** (:mod:`repro.fsimage`,
   :mod:`repro.ecosystem`): a byte-serialized ext4 image format plus
   executable models of mke2fs, mount/ext4_fill_super, e4defrag,
   resize2fs (including the Figure-1 sparse_super2 bug) and e2fsck.
2. **Mini-C frontend** (:mod:`repro.lang`) and the **modelled corpus**
   (:mod:`repro.corpus`): the LLVM substitute and the C translation
   units the analyzer consumes.
3. **The analyzer** (:mod:`repro.analysis`): taint analysis, constraint
   derivation, metadata-bridge CCD extraction, scenario driver — the
   paper's §4 contribution.
4. **Consumers**: the empirical study (:mod:`repro.study`), the test-
   suite coverage models (:mod:`repro.suites`), the three checkers
   (:mod:`repro.tools`), and the table/figure renderers
   (:mod:`repro.reporting`).

Quick start::

    from repro import extract_all, ConDocCk

    report = extract_all()          # Table-5 extraction
    print(report.total_extracted)   # 64
    issues = ConDocCk().check(report.true_dependencies())
    print(len(issues))              # 12
"""

from repro.analysis.extractor import (
    ExtractionReport,
    Extractor,
    SCENARIOS,
    ScenarioSpec,
    extract_all,
)
from repro.analysis.model import Category, Dependency, ParamRef, SubKind
from repro.ecosystem import (
    E2fsck,
    E2fsckConfig,
    E4defrag,
    E4defragConfig,
    Ext4Mount,
    FeatureSet,
    Mke2fs,
    Mke2fsConfig,
    MountConfig,
    Resize2fs,
    Resize2fsConfig,
)
from repro.fsimage import BlockDevice, Ext4Image, Superblock
from repro.tools import ConBugCk, ConDocCk, ConHandleCk

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "extract_all",
    "Extractor",
    "ExtractionReport",
    "ScenarioSpec",
    "SCENARIOS",
    "Dependency",
    "ParamRef",
    "Category",
    "SubKind",
    # ecosystem
    "BlockDevice",
    "Ext4Image",
    "Superblock",
    "FeatureSet",
    "Mke2fs",
    "Mke2fsConfig",
    "Ext4Mount",
    "MountConfig",
    "E4defrag",
    "E4defragConfig",
    "Resize2fs",
    "Resize2fsConfig",
    "E2fsck",
    "E2fsckConfig",
    # tools
    "ConDocCk",
    "ConHandleCk",
    "ConBugCk",
]
