"""Shared helpers: size parsing, bit flags, text tables, deterministic RNG."""

from repro.common.units import format_size, parse_size
from repro.common.bitflags import FlagRegistry
from repro.common.texttable import TextTable

__all__ = ["parse_size", "format_size", "FlagRegistry", "TextTable"]
