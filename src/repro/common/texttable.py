"""Minimal fixed-width text table renderer used by the reporting layer.

Every benchmark regenerates a paper table; this renderer keeps the
output stable and diff-friendly (padded columns, one header rule).
"""

from __future__ import annotations

from typing import List, Sequence


class TextTable:
    """Accumulate rows, then render a padded ASCII table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self._headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; cell count must match the header count."""
        if len(cells) != len(self._headers):
            raise ValueError(
                f"expected {len(self._headers)} cells, got {len(cells)}: {cells!r}"
            )
        self._rows.append([str(cell) for cell in cells])

    @property
    def rows(self) -> List[List[str]]:
        """A copy of the row data (without headers)."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """Render the table as a string (no trailing newline)."""
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(self._format_row(self._headers, widths))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(self._format_row(row, widths))
        return "\n".join(lines)

    @staticmethod
    def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()
