"""Size-string handling shared by the simulated utilities.

The real mke2fs/resize2fs accept sizes either as a number of blocks or as
a number with a binary-unit suffix (``s`` for 512-byte sectors, ``K``,
``M``, ``G``, ``T``).  The simulated utilities accept the same grammar.
"""

from __future__ import annotations

from repro.errors import UsageError

_SUFFIXES = {
    "s": 512,
    "k": 1024,
    "m": 1024**2,
    "g": 1024**3,
    "t": 1024**4,
}


def parse_size(text: str, block_size: int = 1, component: str = "parse_size") -> int:
    """Parse ``text`` into a count of ``block_size``-byte blocks.

    A bare integer is a block count.  With a suffix the value is a byte
    quantity that must divide evenly into blocks.  Raises
    :class:`~repro.errors.UsageError` on bad input, matching the real
    utilities' exit-with-usage behaviour.

    >>> parse_size("1024")
    1024
    >>> parse_size("8M", block_size=4096)
    2048
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    stripped = text.strip()
    if not stripped:
        raise UsageError(component, "empty size string")
    suffix = stripped[-1].lower()
    if suffix in _SUFFIXES:
        digits = stripped[:-1]
        multiplier = _SUFFIXES[suffix]
    else:
        digits = stripped
        multiplier = None
    if not digits or not _is_decimal(digits):
        raise UsageError(component, f"invalid size string: {text!r}")
    value = int(digits)
    if multiplier is None:
        return value
    total_bytes = value * multiplier
    if total_bytes % block_size:
        raise UsageError(
            component,
            f"size {text!r} is not a multiple of the block size {block_size}",
        )
    return total_bytes // block_size


def _is_decimal(text: str) -> bool:
    return text.isdigit()


def format_size(num_bytes: int) -> str:
    """Render a byte count with the largest exact binary suffix.

    >>> format_size(8 * 1024 * 1024)
    '8M'
    >>> format_size(1536)
    '1536'
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    for suffix, multiplier in (("t", 1024**4), ("g", 1024**3), ("m", 1024**2), ("k", 1024)):
        if num_bytes and num_bytes % multiplier == 0:
            return f"{num_bytes // multiplier}{suffix.upper()}"
    return str(num_bytes)
