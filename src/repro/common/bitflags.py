"""Named bit-flag registries.

The ext4 on-disk format keeps three 32-bit feature words (compat,
incompat, ro_compat); each named feature owns one bit in one word.
:class:`FlagRegistry` maps names to bits and packs/unpacks flag words,
so both the image layer and the utilities share one source of truth.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Tuple


class FlagRegistry:
    """A fixed mapping of flag names to single bits within one word."""

    def __init__(self, name: str, flags: Iterable[Tuple[str, int]]) -> None:
        self.name = name
        self._bit_of: Dict[str, int] = {}
        self._name_of: Dict[int, str] = {}
        for flag_name, bit in flags:
            if flag_name in self._bit_of:
                raise ValueError(f"duplicate flag name {flag_name!r} in registry {name!r}")
            if bit in self._name_of:
                raise ValueError(
                    f"bit 0x{bit:x} assigned to both {self._name_of[bit]!r} "
                    f"and {flag_name!r} in registry {name!r}"
                )
            if bit <= 0 or bit & (bit - 1):
                raise ValueError(f"flag {flag_name!r} bit 0x{bit:x} is not a single bit")
            self._bit_of[flag_name] = bit
            self._name_of[bit] = flag_name

    def __contains__(self, flag_name: str) -> bool:
        return flag_name in self._bit_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._bit_of)

    def __len__(self) -> int:
        return len(self._bit_of)

    def bit(self, flag_name: str) -> int:
        """Return the bit value for ``flag_name``; KeyError if unknown."""
        try:
            return self._bit_of[flag_name]
        except KeyError:
            raise KeyError(f"unknown flag {flag_name!r} in registry {self.name!r}") from None

    def pack(self, names: Iterable[str]) -> int:
        """OR together the bits of ``names`` into one word."""
        word = 0
        for flag_name in names:
            word |= self.bit(flag_name)
        return word

    def unpack(self, word: int) -> FrozenSet[str]:
        """Return the set of known flag names set in ``word``.

        Unknown bits are ignored; callers that care use
        :meth:`unknown_bits`.
        """
        return frozenset(name for name, bit in self._bit_of.items() if word & bit)

    def unknown_bits(self, word: int) -> int:
        """Return the sub-word of bits in ``word`` this registry does not name."""
        known = 0
        for bit in self._name_of:
            known |= bit
        return word & ~known

    def names(self) -> Tuple[str, ...]:
        """All flag names, in registration order."""
        return tuple(self._bit_of)
