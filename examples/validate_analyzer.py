#!/usr/bin/env python3
"""Differential validation: run the corpus to check the analyzer.

The static analyzer claims constraints; the bundled mini-C interpreter
can *execute* the corpus those claims came from.  This example probes
every extracted dependency with concrete inputs (boundary values for
ranges, violating/satisfying configurations for conflicts) and shows
that:

- every validated *true* dependency is CONSISTENT with execution, and
- the validator automatically re-discovers four of the paper's five
  false positives (the fifth is a CCD, exercised by ConHandleCk on the
  simulated ecosystem instead).

Usage::

    python examples/validate_analyzer.py
"""

from collections import Counter

from repro import extract_all
from repro.analysis.groundtruth import is_false_positive
from repro.analysis.validate import Verdict, validate_extracted


def main() -> None:
    report = extract_all()
    validation = validate_extracted(report.union)

    counts = Counter(r.verdict.value for r in validation.results)
    print(f"validated {len(validation.results)} extracted dependencies: "
          f"{dict(counts)}\n")

    print("inconsistent with concrete execution (automated FP detection):")
    for result in validation.inconsistent():
        marker = "known FP" if is_false_positive(result.dependency) else "BUG!"
        print(f"  [{marker}] {result}")

    flagged = {r.dependency.key() for r in validation.inconsistent()}
    assert all(is_false_positive(r.dependency)
               for r in validation.inconsistent()), \
        "an inconsistency outside the known FPs means an analyzer bug"

    consistent_true = sum(
        1 for r in validation.results
        if r.verdict is Verdict.CONSISTENT and not is_false_positive(r.dependency)
    )
    print(f"\n{consistent_true} true dependencies confirmed by execution; "
          f"{len(flagged)} of 5 false positives re-discovered automatically")


if __name__ == "__main__":
    main()
