#!/usr/bin/env python3
"""Reproduce the paper's Figure-1 bug on the simulated ecosystem.

The bug needs two configuration dependencies to be satisfied:

1. the ``sparse_super2`` feature is enabled at mke2fs time, and
2. the size given to resize2fs exceeds the file system size (expansion).

When both hold, the (pre-fix) resize2fs snapshots the last group's free
block count *before* adding the new blocks, leaving the superblock and
group-descriptor counters inconsistent with the block bitmap.  e2fsck
pass 5 detects the damage; e2fsck -y repairs it; the post-fix resize2fs
(``fixed=True``) never corrupts.

Usage::

    python examples/reproduce_figure1_bug.py
"""

from repro import (
    BlockDevice,
    E2fsck,
    E2fsckConfig,
    Mke2fs,
    Resize2fs,
    Resize2fsConfig,
)


def run_scenario(fixed: bool) -> int:
    """Create, expand, and check; returns the number of fsck problems."""
    dev = BlockDevice(num_blocks=4096, block_size=4096)
    Mke2fs.from_args(
        ["-O", "sparse_super2,^resize_inode", "-b", "4096", "2048"]
    ).run(dev)
    Resize2fs(Resize2fsConfig(size="4096"), fixed=fixed).run(dev)
    result = E2fsck(E2fsckConfig(force=True, no_changes=True)).run(dev)
    label = "fixed resize2fs" if fixed else "buggy resize2fs"
    print(f"{label}: e2fsck found {len(result.problems)} problem(s)")
    for problem in result.problems:
        print(f"  pass {problem.pass_no}: {problem.message}")
    if not fixed and result.problems:
        repair = E2fsck(E2fsckConfig(force=True, assume_yes=True)).run(dev)
        print(f"  e2fsck -y exit code {repair.exit_code}; "
              f"all fixed: {all(p.fixed for p in repair.problems)}")
        clean = E2fsck(E2fsckConfig(force=True, no_changes=True)).run(dev)
        print(f"  re-check after repair: {len(clean.problems)} problem(s)")
    return len(result.problems)


def main() -> None:
    print("Triggering the sparse_super2 expansion bug (paper Figure 1):")
    buggy = run_scenario(fixed=False)
    print()
    fixed = run_scenario(fixed=True)
    assert buggy > 0, "the buggy path should corrupt metadata"
    assert fixed == 0, "the fixed path should stay clean"
    print("\nFigure-1 behaviour reproduced.")


if __name__ == "__main__":
    main()
