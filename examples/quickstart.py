#!/usr/bin/env python3
"""Quickstart: run the full dependency extraction and print Table 5.

Usage::

    python examples/quickstart.py
"""

from repro import extract_all
from repro.analysis.jsonio import dependency_to_dict
from repro.reporting.tables import render_table5


def main() -> None:
    report = extract_all()
    print(render_table5(report))
    print()

    # Inspect the cross-component dependencies (the paper's key finding):
    print("Cross-component dependencies extracted via the shared superblock:")
    for dep in report.union:
        if dep.category.value != "CCD":
            continue
        record = dependency_to_dict(dep)
        print(f"  {record['description']}")
        print(f"    bridge field: {record['bridge_field']}; "
              f"evidence: {record['evidence']['file']}:"
              f"{record['evidence']['function']}:{record['evidence']['line']}")
    print()
    print(f"total: {report.total_extracted} unique dependencies, "
          f"{report.total_false_positives} false positives "
          f"({report.overall_fp_rate:.1%})")


if __name__ == "__main__":
    main()
