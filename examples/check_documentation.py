#!/usr/bin/env python3
"""ConDocCk in action: find manual/code inconsistencies (paper §4.2-4.3).

Extracts the dependencies from the corpus, validates them against the
ground-truth labels, and cross-checks the 59 true dependencies against
the manual corpus — reporting the 12 inaccurate documentations the
paper found, including its concrete example (the mke2fs manual not
mentioning that meta_bg and resize_inode cannot be used together).

Usage::

    python examples/check_documentation.py [output.json]
"""

import sys

from repro import ConDocCk, extract_all
from repro.analysis.jsonio import dump_dependencies


def main() -> None:
    report = extract_all()
    true_deps = report.true_dependencies()
    print(f"extracted {report.total_extracted} dependencies; "
          f"{len(true_deps)} validated as true\n")

    issues = ConDocCk().check(true_deps)
    missing = [i for i in issues if i.issue == "missing"]
    incorrect = [i for i in issues if i.issue == "incorrect"]
    print(f"ConDocCk found {len(issues)} inaccurate documentations "
          f"({len(missing)} missing, {len(incorrect)} incorrect):\n")
    for issue in issues:
        print(f"  {issue}")

    # The paper's example, verbatim:
    example = [i for i in issues
               if {str(p) for p in i.dependency.params}
               == {"mke2fs.meta_bg", "mke2fs.resize_inode"}]
    assert example, "the meta_bg/resize_inode example must be among the issues"
    print("\npaper's example reproduced:", example[0])

    if len(sys.argv) > 1:
        dump_dependencies(report.union, sys.argv[1])
        print(f"\nwrote the dependency JSON to {sys.argv[1]}")


if __name__ == "__main__":
    main()
