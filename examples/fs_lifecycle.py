#!/usr/bin/env python3
"""Drive a file system through all four configuration stages (Figure 2).

create (mke2fs) -> mount (-o options) -> online (e4defrag) ->
offline (resize2fs grow + shrink, e2fsck), with consistency checks at
every step.

Usage::

    python examples/fs_lifecycle.py
"""

from repro import (
    BlockDevice,
    E2fsck,
    E2fsckConfig,
    E4defrag,
    E4defragConfig,
    Ext4Mount,
    Mke2fs,
    Resize2fs,
    Resize2fsConfig,
)


def check(dev: BlockDevice, label: str) -> None:
    result = E2fsck(E2fsckConfig(force=True, no_changes=True)).run(dev)
    status = "clean" if result.is_clean else f"{len(result.problems)} problems"
    print(f"  e2fsck after {label}: {status}")
    assert result.is_clean, f"unexpected corruption after {label}"


def main() -> None:
    dev = BlockDevice(num_blocks=16384, block_size=4096)

    # --- create -----------------------------------------------------------
    mkfs = Mke2fs.from_args(["-b", "4096", "-m", "5", "-L", "demo", "8192"])
    image = mkfs.run(dev)
    print(f"create : {mkfs.messages[-1]}")
    print(f"create : features {sorted(mkfs.config.features)}")
    check(dev, "mke2fs")

    # --- mount + use --------------------------------------------------------
    handle = Ext4Mount.mount(dev, "noatime,commit=15,journal_checksum")
    stats = handle.statfs()
    print(f"mount  : {stats['bfree']} of {stats['blocks']} blocks free, "
          f"{stats['ffree']} inodes free")
    files = [handle.create_file(6, fragmented=True) for _ in range(3)]
    files.append(handle.create_file(10))
    print(f"use    : created {len(files)} files")

    # --- online: measure then defragment ------------------------------------
    checker = E4defrag(E4defragConfig(check_only=True))
    before = checker.run(handle)
    print(f"online : fragmentation score before defrag: {before.score:.2f}")
    defrag = E4defrag(E4defragConfig(verbose=True))
    after = defrag.run(handle)
    print(f"online : defragmented {after.defragmented} file(s); "
          f"score now {after.score:.2f}")
    handle.umount()
    check(dev, "umount")

    # --- offline: grow, then shrink back ------------------------------------
    grow = Resize2fs(Resize2fsConfig(size="16384")).run(dev)
    print(f"offline: grow   {grow.old_blocks} -> {grow.new_blocks} blocks")
    check(dev, "grow")

    min_size = Resize2fs(Resize2fsConfig(print_min_size=True)).run(dev)
    print(f"offline: minimum size reported: {min_size.min_blocks} blocks")

    shrink = Resize2fs(Resize2fsConfig(size="8192")).run(dev)
    print(f"offline: shrink {shrink.old_blocks} -> {shrink.new_blocks} blocks "
          f"({len(shrink.relocated_inodes)} inode(s) relocated)")
    check(dev, "shrink")

    # Files survive the round trip.
    handle = Ext4Mount.mount(dev)
    survived = sum(1 for _ in handle.image.iter_used_inodes())
    print(f"verify : {survived} inode(s) still in use after the round trip")
    handle.umount()
    print("lifecycle complete.")


if __name__ == "__main__":
    main()
