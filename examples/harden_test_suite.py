#!/usr/bin/env python3
"""ConBugCk in action: dependency-respecting configuration generation.

Existing FS test suites cover less than half of the configuration
surface (paper Table 2).  ConBugCk generates configuration states that
*satisfy* the extracted dependencies, so tests reach deep code instead
of dying on shallow validation errors.  This example compares
dependency-respecting generation against naive random generation, and
then shows ConHandleCk flipping the approach around: *violating*
dependencies on purpose to probe error handling.

Usage::

    python examples/harden_test_suite.py [count]
"""

import sys

from repro import ConBugCk, ConHandleCk, extract_all
from repro.tools.conbugck import STAGES


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    report = extract_all()
    deps = report.true_dependencies()

    generator = ConBugCk(deps, seed=2022)
    guided_configs = generator.generate(count)
    print(f"generated {count} dependency-respecting configurations, e.g.:")
    sample = guided_configs[0]
    print(f"  features={','.join(sample.features)}")
    print(f"  blocksize={sample.blocksize} inode_size={sample.inode_size} "
          f"mount='-o {sample.mount_options or '(defaults)'}'\n")

    guided = generator.drive(guided_configs)
    naive = generator.drive(generator.generate_naive(count))
    print(f"{'stage':>12s} {'guided':>8s} {'naive':>8s}")
    for stage in STAGES:
        print(f"{stage:>12s} {guided.reached[stage]:>8d} {naive.reached[stage]:>8d}")
    print("\nexample shallow failures of the naive generator:")
    for failure in naive.failures[:5]:
        print(f"  {failure}")

    print("\nConHandleCk (violating the dependencies instead):")
    violations = ConHandleCk().check(deps)
    for outcome, n in violations.by_outcome().items():
        if n:
            print(f"  {outcome.value:>14s}: {n}")
    for bad in violations.bad_handling():
        print(f"  -> bad handling found: {bad.dependency.describe()}")


if __name__ == "__main__":
    main()
