#!/usr/bin/env python3
"""Adjust a live file system with tune2fs and inspect it with dumpe2fs.

Shows the configuration surface *between* the paper's four stages:
features and knobs rewritten after creation, subject to tune2fs's own
dependency rules (structural features are frozen; project still needs
quota; metadata_csum demands an e2fsck afterwards).

Usage::

    python examples/tune_and_inspect.py
"""

from repro import BlockDevice, E2fsck, E2fsckConfig, Ext4Mount, Mke2fs
from repro.ecosystem.dumpe2fs import Dumpe2fs
from repro.ecosystem.tune2fs import Tune2fs, Tune2fsConfig
from repro.errors import UsageError


def main() -> None:
    dev = BlockDevice(num_blocks=4096, block_size=4096)
    Mke2fs.from_args(["-b", "4096", "-L", "original", "2048"]).run(dev)

    handle = Ext4Mount.mount(dev)
    handle.create_file(4, name="notes.txt")
    handle.mkdir("archive")
    handle.umount()

    print("before tuning:")
    report = Dumpe2fs().run(dev)
    print(f"  label={report.volume_name!r} free={report.free_blocks} "
          f"features={len(report.features)}")

    # knobs + an additive feature chain (project needs quota first)
    Tune2fs(Tune2fsConfig.from_args(
        ["-L", "tuned", "-m", "2", "-e", "remount-ro"])).run(dev)
    Tune2fs(Tune2fsConfig.from_args(["-O", "quota"])).run(dev)
    Tune2fs(Tune2fsConfig.from_args(["-O", "project"])).run(dev)

    # dependency rules fire exactly as on the real tool:
    try:
        Tune2fs(Tune2fsConfig.from_args(["-O", "bigalloc"])).run(dev)
    except UsageError as exc:
        print(f"frozen structural feature rejected: {exc}")
    try:
        Tune2fs(Tune2fsConfig.from_args(["-O", "^quota"])).run(dev)
    except UsageError as exc:
        print(f"dependent removal rejected:        {exc}")

    # metadata_csum forces a consistency pass
    result = Tune2fs(Tune2fsConfig.from_args(["-O", "metadata_csum"])).run(dev)
    print(f"metadata_csum enabled; needs fsck: {result.needs_fsck}")
    E2fsck(E2fsckConfig(assume_yes=True)).run(dev)

    print("\nafter tuning:")
    report = Dumpe2fs().run(dev)
    print(f"  label={report.volume_name!r} "
          f"reserved={report.reserved_blocks} blocks (2%); "
          f"features now include "
          f"{sorted(set(report.features) & {'quota', 'project', 'metadata_csum'})}")

    check = E2fsck(E2fsckConfig(force=True, no_changes=True)).run(dev)
    assert check.is_clean
    handle = Ext4Mount.mount(dev)
    names = sorted(handle.readdir())
    assert names == ["archive", "notes.txt"]
    handle.umount()
    print(f"  namespace intact: {names}; filesystem clean")


if __name__ == "__main__":
    main()
